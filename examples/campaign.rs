//! A miniature measurement campaign: the paper's §V at 1/20th scale.
//!
//! Runs Test 1 and Test 2 cells for every service (50 instances each, in
//! parallel), then prints Figure 3 and the per-pair content-divergence
//! breakdown of Figure 8. For the full set of tables and figures use the
//! `repro` binary in `conprobe-bench`.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use conprobe::harness::campaign::{run_campaign, CampaignConfig, CampaignResult};
use conprobe::harness::figures;
use conprobe::harness::proto::TestKind;
use conprobe::services::ServiceKind;

fn main() {
    let tests = 50;
    let mut cells: Vec<(CampaignResult, CampaignResult)> = Vec::new();
    for service in ServiceKind::ALL {
        eprintln!("running {service} ({tests} instances per test kind)…");
        let t1 = run_campaign(&CampaignConfig::paper(service, TestKind::Test1, tests));
        let t2 = run_campaign(&CampaignConfig::paper(service, TestKind::Test2, tests));
        cells.push((t1, t2));
    }
    let pairs: Vec<(&CampaignResult, &CampaignResult)> =
        cells.iter().map(|(a, b)| (a, b)).collect();
    let t1_refs: Vec<&CampaignResult> = cells.iter().map(|(a, _)| a).collect();
    let t2_refs: Vec<&CampaignResult> = cells.iter().map(|(_, b)| b).collect();

    print!("{}", figures::render_table1(&t1_refs));
    print!("{}", figures::render_fig3(&pairs));
    print!("{}", figures::render_fig8(&t2_refs));
    print!("{}", figures::render_totals(&pairs));
}
