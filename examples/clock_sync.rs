//! The paper's Cristian-style clock synchronization, inspected.
//!
//! §IV: the coordinator probes each agent's clock over the WAN, assumes
//! symmetric one-way delays, averages, and claims an uncertainty of half
//! the RTT. Because the simulator knows the *true* clock offsets, we can
//! check how good that estimate actually is under drifting clocks — the
//! paper could not.
//!
//! ```sh
//! cargo run --release --example clock_sync
//! ```

use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::ServiceKind;
use conprobe::sim::ClockConfig;

fn main() {
    let locations = ["Oregon", "Tokyo", "Ireland"];
    println!("{:<28}{:>12}{:>14}{:>16}", "clock regime", "agent", "|error| (ms)", "claimed ±(ms)");
    for (label, clocks) in [
        ("perfect clocks", ClockConfig::perfect()),
        ("±2s offset, ±50ppm drift", ClockConfig::default()),
        (
            "±30s offset, ±500ppm drift",
            ClockConfig { max_initial_offset_nanos: 30_000_000_000, max_drift_ppm: 500.0 },
        ),
    ] {
        let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
        config.agent_clocks = clocks;
        let result = run_one_test(&config, 11);
        for (i, loc) in locations.iter().enumerate() {
            println!(
                "{:<28}{:>12}{:>14.3}{:>16.3}",
                if i == 0 { label } else { "" },
                loc,
                result.clock_error_nanos[i] as f64 / 1e6,
                result.clock_uncertainty_nanos[i] as f64 / 1e6,
            );
        }
    }
    println!(
        "\nThe estimate error stays within the half-RTT uncertainty bound \
         (paper §IV) except for what clock drift accumulates between the \
         sync phase and the end of the test — which is why the paper \
         re-synchronizes before every test."
    );
}
