//! White-box vs black-box: is the divergence your clients perceive real?
//!
//! Runs Test 2 against Google+ and Facebook Feed with the replica probe
//! enabled and contrasts what agents saw (black box) with what the replica
//! states actually were (white box) — implementing the paper's future-work
//! suggestion of extending the methodology with white-box testing.
//!
//! ```sh
//! cargo run --release --example whitebox_probe
//! ```

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::ServiceKind;
use conprobe::sim::SimDuration;

fn main() {
    println!(
        "{:<10}{:>6}{:>16}{:>16}{:>14}{:>14}",
        "service", "seed", "black-box CD", "black-box OD", "true CD", "true OD"
    );
    for service in [ServiceKind::GooglePlus, ServiceKind::FacebookFeed] {
        for seed in 0..5 {
            let mut config = TestConfig::paper(service, TestKind::Test2);
            config.whitebox_period = Some(SimDuration::from_millis(100));
            let r = run_one_test(&config, seed);
            let report = r.whitebox.as_ref().expect("probe enabled");
            println!(
                "{:<10}{:>6}{:>16}{:>16}{:>14}{:>14}",
                service.name(),
                seed,
                r.has(AnomalyKind::ContentDivergence),
                r.has(AnomalyKind::OrderDivergence),
                report.any_true_content_divergence(),
                report.any_true_order_divergence(),
            );
        }
    }
    println!(
        "\nFacebook Feed: the replicas essentially never order-diverge — the \n\
         order divergence agents see is manufactured by the interest-ranked \n\
         read path (the paper's own explanation, §V). Google+: what agents \n\
         see is what the replicas do."
    );
}
