//! Plugging your own service model into the measurement methodology.
//!
//! The paper's methodology is deliberately black-box: anything that answers
//! `write`/`read` can be characterized. This example builds a hypothetical
//! "quorum-ish" service — three replicas, client writes everywhere but reads
//! one replica, no anti-entropy — and runs both tests against it to see
//! which anomalies its design admits.
//!
//! ```sh
//! cargo run --release --example custom_service
//! ```

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::catalog::Topology;
use conprobe::services::{DelayDist, ReadPath, ReplicaParams, ServiceKind};
use conprobe::sim::net::Region;
use conprobe::sim::SimDuration;
use conprobe::store::{AffinityMap, OrderingPolicy};

/// One replica per agent region; asynchronous propagation with a modest
/// delay; reads served locally in arrival order; no repair protocol.
fn my_topology() -> Topology {
    let params = ReplicaParams {
        ordering: OrderingPolicy::Arrival,
        read_path: ReadPath::Snapshot,
        apply_delay: DelayDist::Zero,
        repl_delay: DelayDist::Exp {
            base: SimDuration::from_millis(200),
            mean: SimDuration::from_millis(400),
        },
        anti_entropy: Some(SimDuration::from_secs(3)),
        canonicalize_on_anti_entropy: true,
        canonicalize_on_push: false,
        rate_limit: None,
        write_mode: Default::default(),
    };
    Topology {
        replicas: vec![
            (Region::Oregon, params.clone()),
            (Region::Tokyo, params.clone()),
            (Region::Ireland, params),
        ],
        affinity: AffinityMap::one_per_agent(),
    }
}

fn main() {
    let runs = 8;
    for kind in [TestKind::Test1, TestKind::Test2] {
        // Reuse any ServiceKind as a label; the override topology is what
        // actually gets deployed.
        let mut config = TestConfig::paper(ServiceKind::Blogger, kind);
        config.service_override = Some(my_topology());

        let mut hits = std::collections::BTreeMap::new();
        for seed in 0..runs {
            let result = run_one_test(&config, seed);
            for obs in &result.analysis.observations {
                *hits.entry(obs.kind).or_insert(0u32) += 1;
            }
        }
        println!("== {kind} × {runs} instances against the custom service ==");
        if hits.is_empty() {
            println!("  no anomalies");
        }
        for kind in AnomalyKind::ALL {
            if let Some(n) = hits.get(&kind) {
                println!("  {kind}: {n} observation(s) across all runs");
            }
        }
        println!();
    }
    println!(
        "Arrival-ordered local reads admit order divergence and monotonic-\
         writes violations until anti-entropy re-sequences — the same class \
         of behaviour the paper observed on Google+."
    );
}
