//! Quickstart: run one instance of the paper's Test 1 against the simulated
//! Facebook Group service and print every anomaly the checkers find.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::ServiceKind;

fn main() {
    // The paper's Test 1 configuration for Facebook Group (Table I):
    // 300 ms background reads, staggered write pairs, completion when all
    // agents have seen M6.
    let config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
    let result = run_one_test(&config, 7);

    println!(
        "test {} after {:.1}s: {} writes, reads per agent {:?}",
        if result.completed { "completed" } else { "TIMED OUT" },
        result.duration_secs,
        result.writes_total,
        result.reads_per_agent,
    );

    if result.analysis.is_clean() {
        println!("no anomalies observed");
        return;
    }
    println!("\nanomalies:");
    for kind in AnomalyKind::ALL {
        let count = result.analysis.count(kind);
        if count > 0 {
            println!("  {kind}: {count} observation(s)");
        }
    }
    println!("\nfirst observations:");
    for obs in result.analysis.observations.iter().take(5) {
        println!("  {obs}");
    }
    // The expected outcome for Facebook Group: monotonic-writes violations
    // from the 1-second-timestamp reversed tie-break, and nothing else —
    // exactly the paper's §V finding.
}
