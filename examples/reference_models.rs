//! A consistency-design safari: the same black-box methodology applied to
//! five reference designs, producing five distinct anomaly signatures.
//!
//! | design | expected signature |
//! |---|---|
//! | single synchronous replica (Blogger) | nothing |
//! | weak multi-master (Google+ preset)   | everything, at modest rates |
//! | ranked feed (FB Feed preset)         | everything, extreme rates |
//! | primary-backup, local reads          | only read-your-writes staleness |
//! | majority quorums                     | at most monotonic-reads blips |
//!
//! ```sh
//! cargo run --release --example reference_models
//! ```

use conprobe::core::{AnomalyKind, Verdict};
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::catalog::{topology_primary_backup, topology_quorum, Topology};
use conprobe::services::ServiceKind;

fn profile(label: &str, service: ServiceKind, topo: Option<Topology>) {
    let runs = 6u64;
    let mut counts = std::collections::BTreeMap::new();
    let mut last_verdict = None;
    for seed in 0..runs {
        for kind in [TestKind::Test1, TestKind::Test2] {
            let mut config = TestConfig::paper(service, kind);
            config.service_override = topo.clone();
            let r = run_one_test(&config, seed);
            for obs in &r.analysis.observations {
                *counts.entry(obs.kind).or_insert(0u32) += 1;
            }
            last_verdict = Some(Verdict::from_analysis(&r.analysis));
        }
    }
    println!("== {label} ==");
    if counts.is_empty() {
        println!("  anomaly-free across {runs} runs of both tests");
    }
    for kind in AnomalyKind::ALL {
        if let Some(n) = counts.get(&kind) {
            println!("  {kind:<22} {n:>5} observation(s)");
        }
    }
    if let Some(v) = last_verdict {
        println!("  last run: {}", v.strongest_level());
    }
    println!();
}

fn main() {
    profile("single synchronous replica (Blogger)", ServiceKind::Blogger, None);
    profile("weak multi-master (Google+)", ServiceKind::GooglePlus, None);
    profile("interest-ranked feed (FB Feed)", ServiceKind::FacebookFeed, None);
    profile(
        "primary-backup with local reads",
        ServiceKind::Blogger,
        Some(topology_primary_backup(400)),
    );
    profile(
        "majority quorums (sync writes + quorum reads)",
        ServiceKind::Blogger,
        Some(topology_quorum(true)),
    );
}
