//! The paper's proposed mitigation, demonstrated: wrap each agent in a
//! client-side [`SessionGuard`] and watch the session-guarantee anomalies
//! disappear without any extra round trips.
//!
//! §V: *"most of the session guarantees can be easily enforced at the
//! application level by simply identifying requests with a session id and a
//! sequence number within a session, and using a combination of caching and
//! replaying previous values that were read and written, and delaying or
//! omitting the delivery of messages."*
//!
//! ```sh
//! cargo run --release --example session_guarantees
//! ```

use conprobe::core::AnomalyKind;
use conprobe::harness::proto::TestKind;
use conprobe::harness::runner::{run_one_test, TestConfig};
use conprobe::services::ServiceKind;

fn prevalence(service: ServiceKind, guarded: bool, runs: u64) -> Vec<(AnomalyKind, usize)> {
    let mut config = TestConfig::paper(service, TestKind::Test1);
    config.use_guard = guarded;
    let mut counts = vec![0usize; AnomalyKind::SESSION.len()];
    for seed in 0..runs {
        let result = run_one_test(&config, seed);
        for (i, kind) in AnomalyKind::SESSION.iter().enumerate() {
            if result.analysis.has(*kind) {
                counts[i] += 1;
            }
        }
    }
    AnomalyKind::SESSION.iter().copied().zip(counts).collect()
}

fn main() {
    let runs = 10;
    for service in [ServiceKind::FacebookFeed, ServiceKind::FacebookGroup] {
        println!("== {service} (Test 1 × {runs} instances) ==");
        let raw = prevalence(service, false, runs);
        let guarded = prevalence(service, true, runs);
        println!("{:<24}{:>12}{:>12}", "anomaly", "raw", "guarded");
        for ((kind, r), (_, g)) in raw.iter().zip(&guarded) {
            println!("{:<24}{:>9}/{runs}{:>9}/{runs}", kind.to_string(), r, g);
        }
        println!();
    }
    println!(
        "The guard trades staleness for session consistency — it never \
         blocks a request, matching the paper's claim that these anomalies \
         \"can be masked with client-side techniques that do not require \
         blocking user requests\"."
    );
}
