//! Performance measurement for the hot paths (`conprobe-bench`).
//!
//! The paper's campaigns ran ~1,000 test instances per (service, test)
//! cell; tracking whether we can afford that requires numbers, not vibes.
//! This module times the three hot paths the perf overhaul targets —
//! replica snapshot reads, checker/analysis throughput on synthetic
//! traces, and whole campaign cells (tests/sec and simulated events/sec) —
//! with *deterministic* workloads and iteration counts, so the only
//! nondeterministic input is the wall clock.
//!
//! The `conprobe-bench` binary writes the measurements to
//! `BENCH_repro.json` at the repo root, side by side with the pre-change
//! baseline (the constants below, recorded on the same workload before the
//! snapshot cache and `TraceIndex` landed), so subsequent PRs can track the
//! speedup trajectory in-repo.

use conprobe_core::testutil::TestRng;
use conprobe_core::{
    analyze, AgentId, AnomalyKind, CheckerConfig, TestTrace, TestTraceBuilder, Timestamp,
};
use conprobe_harness::campaign::{run_campaign, CampaignConfig, CampaignResult};
use conprobe_harness::proto::TestKind;
use conprobe_harness::report::StudyReport;
use conprobe_harness::runner::run_one_test;
use conprobe_json::ToJson;
use conprobe_services::ServiceKind;
use conprobe_sim::SimDuration;
use conprobe_store::{AuthorId, OrderingPolicy, Post, PostId, ReplicaCore};
use std::time::Instant;

/// Pre-change baseline, measured with `conprobe-bench --mode full` at the
/// commit immediately before the snapshot cache and `TraceIndex`
/// optimizations (same workloads, same machine class as CI).
pub mod baseline {
    /// Checker throughput: trace operations analyzed per second.
    pub const CHECKER_OPS_PER_SEC: f64 = 14_169.0;
    /// Campaign cell throughput: test instances per second.
    pub const CAMPAIGN_TESTS_PER_SEC: f64 = 17.49;
    /// Campaign cell throughput: simulator events per second.
    pub const CAMPAIGN_EVENTS_PER_SEC: f64 = 35_708.0;
    /// Replica store: policy-ordered snapshot reads per second.
    pub const SNAPSHOT_READS_PER_SEC: f64 = 23_048.0;
    /// Visibility records per second, measured on the same workload with
    /// the pre-hoist `visibility()` (per-agent read lists re-derived for
    /// every (write, agent) pair — see the ignored
    /// `measure_prehoist_visibility_baseline` test).
    pub const VISIBILITY_RECORDS_PER_SEC: f64 = 525_450.0;
}

/// Iteration counts for one bench run. All counts are fixed per mode, so
/// two runs of the same mode execute identical work.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// `analyze()` passes over the synthetic trace pool.
    pub checker_iters: usize,
    /// Snapshot reads against the replica micro-benchmark.
    pub snapshot_reads: usize,
    /// Test instances in the campaign cell.
    pub campaign_tests: u32,
    /// `visibility()` passes over the synthetic trace pool.
    pub visibility_iters: usize,
    /// Wall-clock milliseconds of each measured wire-throughput point.
    pub wire_load_millis: u64,
    /// Wall-clock milliseconds of warm-up (connections ramped, caches
    /// hot, allocator steady) before each wire point starts measuring.
    pub wire_warmup_millis: u64,
    /// The `(connections, pipeline depth)` scaling curve the wire stage
    /// sweeps. The first point is always the old pre-event-loop shape —
    /// few connections, no pipelining — so the report can show the old
    /// and new operating points side by side.
    pub wire_points: &'static [(usize, usize)],
}

impl BenchScale {
    /// The committed-numbers scale (`--mode full`).
    pub fn full() -> Self {
        BenchScale {
            checker_iters: 60,
            snapshot_reads: 40_000,
            campaign_tests: 6,
            visibility_iters: 200,
            wire_load_millis: 3_000,
            wire_warmup_millis: 500,
            wire_points: &[(8, 1), (64, 8), (256, 16), (512, 32), (256, 64)],
        }
    }

    /// The CI smoke scale (`--mode smoke`): same workloads, small counts.
    pub fn smoke() -> Self {
        BenchScale {
            checker_iters: 10,
            snapshot_reads: 4_000,
            campaign_tests: 2,
            visibility_iters: 30,
            wire_load_millis: 500,
            wire_warmup_millis: 150,
            wire_points: &[(8, 1), (128, 16)],
        }
    }
}

/// One measured metric set; field order mirrors the JSON output.
#[derive(Debug, Clone, Copy)]
pub struct BenchNumbers {
    /// Trace operations analyzed per second across the full checker stack.
    pub checker_ops_per_sec: f64,
    /// Campaign test instances per second.
    pub campaign_tests_per_sec: f64,
    /// Simulator events per second across the campaign cell.
    pub campaign_events_per_sec: f64,
    /// Policy-ordered snapshot reads per second.
    pub snapshot_reads_per_sec: f64,
    /// Visibility-latency records computed per second (the per-agent
    /// read-list hoist's target workload).
    pub visibility_records_per_sec: f64,
}

/// A deterministic synthetic trace exercising every checker.
///
/// Three agents write interleaved posts and read with staleness (randomly
/// dropped elements) and order perturbations (random adjacent swaps), so
/// the session checkers, the divergence checkers and both window sweeps
/// all have real work. The generator is seeded [`TestRng`]; the same seed
/// always yields the same trace.
pub fn synthetic_trace(seed: u64, reads_per_agent: usize) -> TestTrace<PostId> {
    let mut rng = TestRng::new(seed);
    let agents = 3u32;
    let writes_per_agent = 8u32;
    let mut b = TestTraceBuilder::new();
    let mut writes: Vec<(i64, PostId)> = Vec::new();
    for a in 0..agents {
        for s in 1..=writes_per_agent {
            let invoke = ((s as i64 - 1) * 1200 + a as i64 * 137) * 1_000_000;
            let response = invoke + 40_000_000;
            let id = PostId::new(AuthorId(a), s);
            b.write(AgentId(a), Timestamp::from_nanos(invoke), Timestamp::from_nanos(response), id);
            writes.push((response, id));
        }
    }
    writes.sort_unstable();
    let horizon = writes_per_agent as i64 * 1200 * 1_000_000;
    for a in 0..agents {
        for r in 0..reads_per_agent {
            let invoke = r as i64 * horizon / reads_per_agent as i64 + a as i64 * 97_000 + 1;
            let response = invoke + 30_000_000;
            let mut seq: Vec<PostId> =
                writes.iter().filter(|(w, _)| *w <= invoke).map(|(_, id)| *id).collect();
            if !seq.is_empty() && rng.chance(0.25) {
                let i = rng.range_usize(0, seq.len());
                seq.remove(i); // staleness: one visible post goes missing
            }
            if seq.len() >= 2 && rng.chance(0.5) {
                let i = rng.range_usize(0, seq.len() - 1);
                seq.swap(i, i + 1); // order perturbation
            }
            b.read(AgentId(a), Timestamp::from_nanos(invoke), Timestamp::from_nanos(response), seq);
        }
    }
    b.build()
}

/// Times the full checker stack (all six checkers + both window sweeps)
/// over a pool of synthetic traces. Returns ops/sec and an observation
/// checksum (keeps the work observable; also a cheap sanity anchor).
pub fn bench_checkers(scale: BenchScale) -> (f64, usize) {
    let traces: Vec<TestTrace<PostId>> = (0..8).map(|i| synthetic_trace(0xC0DE + i, 120)).collect();
    let config = CheckerConfig::default();
    // Warm-up pass so allocator state doesn't skew the first iteration.
    let mut sink = traces.iter().map(|t| analyze(t, &config).observations.len()).sum::<usize>();
    let mut ops = 0usize;
    let start = Instant::now();
    for it in 0..scale.checker_iters {
        let trace = &traces[it % traces.len()];
        let analysis = analyze(trace, &config);
        sink += analysis.observations.len()
            + analysis.content_windows.len()
            + analysis.order_windows.len();
        ops += trace.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    (ops as f64 / elapsed, sink)
}

/// Times policy-ordered snapshot reads against a replica holding
/// `posts` stored posts, with one mutation every 100 reads (the realistic
/// read-dominated regime the cache targets).
pub fn bench_snapshot_reads(scale: BenchScale) -> f64 {
    let posts = 200u32;
    let mut core = ReplicaCore::new(OrderingPolicy::facebook_group());
    for s in 1..=posts {
        let post = Post::new(
            PostId::new(AuthorId(s % 3), s),
            "synthetic-post-body",
            conprobe_sim::LocalTime::from_nanos(0),
        );
        core.apply_new(post, conprobe_sim::SimTime::from_millis(s as u64 * 37));
    }
    let mut sink = 0usize;
    let mut next_seq = posts + 1;
    let start = Instant::now();
    for i in 0..scale.snapshot_reads {
        if i % 100 == 99 {
            let post = Post::new(
                PostId::new(AuthorId(next_seq % 3), next_seq),
                "synthetic-post-body",
                conprobe_sim::LocalTime::from_nanos(0),
            );
            core.apply_new(post, conprobe_sim::SimTime::from_millis(next_seq as u64 * 37));
            next_seq += 1;
        }
        if i % 2 == 0 {
            sink += core.snapshot().len();
        } else {
            sink += core.snapshot_posts().len();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(sink > 0);
    scale.snapshot_reads as f64 / elapsed
}

/// Times `visibility()` over the synthetic trace pool. Returns visibility
/// records per second — the workload the per-agent read-list hoist
/// targets (it was O(writes × agents × reads) with a fresh list per
/// pair).
pub fn bench_visibility(scale: BenchScale) -> f64 {
    let traces: Vec<TestTrace<PostId>> = (0..8).map(|i| synthetic_trace(0xC0DE + i, 120)).collect();
    let mut records = 0usize;
    let start = Instant::now();
    for it in 0..scale.visibility_iters {
        let trace = &traces[it % traces.len()];
        records += conprobe_core::visibility::visibility(trace).len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(records > 0);
    records as f64 / elapsed
}

/// Measures the observability layer's cost on the campaign cell: one run
/// with no sink, one with a full sink (metrics + a filtering event log).
/// Returns `(tests/sec off, tests/sec on, metrics JSON)` — the JSON is the
/// instrumented run's registry dump, which CI uploads as `metrics.json`.
pub fn bench_metrics_overhead(scale: BenchScale) -> (f64, f64, String) {
    let run = |sink: Option<conprobe_sim::ObsSink>| {
        let mut config = bench_campaign_config(scale.campaign_tests);
        config.test.obs = sink;
        let start = Instant::now();
        let result = run_campaign(&config);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(result.results.len(), scale.campaign_tests as usize);
        scale.campaign_tests as f64 / elapsed
    };
    let off = run(None);
    // A bounded Warn-level log: the shape `--metrics` runs use, so the
    // overhead number reflects real instrumented operation.
    let sink = conprobe_sim::ObsSink::with_log(
        conprobe_obs::EventLog::new(4096).with_min_severity(conprobe_obs::Severity::Warn),
    );
    let on = run(Some(sink.clone()));
    (off, on, sink.metrics.to_json().to_pretty())
}

/// Measures the durable journal's cost on the campaign cell: one run with
/// no journal, one appending every result (checksummed frame + fsync per
/// record) to a scratch journal. Returns `(tests/sec off, tests/sec on)`
/// — the price of crash-safety, which BENCH_repro.json tracks so a
/// regression in the fsync'd append path is visible in-repo.
pub fn bench_journal_overhead(scale: BenchScale) -> (f64, f64) {
    let run = |journal: Option<&conprobe_harness::Journal>| {
        let config = bench_campaign_config(scale.campaign_tests);
        let start = Instant::now();
        let result = conprobe_harness::campaign::run_campaign_journaled(
            &config,
            None,
            "bench/gplus/test2",
            journal,
            None,
        );
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(result.results.len(), scale.campaign_tests as usize);
        assert!(result.crashed.is_empty());
        scale.campaign_tests as f64 / elapsed
    };
    let off = run(None);
    let path =
        std::env::temp_dir().join(format!("conprobe-bench-journal-{}.jsonl", std::process::id()));
    let journal = conprobe_harness::Journal::create(&path).expect("scratch journal");
    let on = run(Some(&journal));
    // The journaled run must have produced a cleanly recoverable file.
    drop(journal);
    let recovery = conprobe_harness::Journal::recover(&path).expect("bench journal recovers");
    assert_eq!(recovery.records.len(), scale.campaign_tests as usize);
    assert!(recovery.tail.is_none());
    std::fs::remove_file(&path).ok();
    (off, on)
}

/// The campaign cell the bench times: Google+ Test 2 with a read-heavy
/// schedule (the regime where snapshot reads and trace analysis dominate —
/// exactly the load full-scale 1,000-instance cells would sustain).
pub fn bench_campaign_config(tests: u32) -> CampaignConfig {
    let mut config =
        CampaignConfig::paper(ServiceKind::GooglePlus, TestKind::Test2, tests).with_seed(0xBE5C);
    config.threads = 4;
    config.test.read_period = SimDuration::from_millis(100);
    config.test.fast_reads = 280;
    config.test.reads_target = 300;
    config
}

/// Times the campaign cell; returns (tests/sec, sim-events/sec, result).
pub fn bench_campaign(scale: BenchScale) -> (f64, f64, CampaignResult) {
    let config = bench_campaign_config(scale.campaign_tests);
    let start = Instant::now();
    let result = run_campaign(&config);
    let elapsed = start.elapsed().as_secs_f64();
    let events = result.total_sim_events();
    (scale.campaign_tests as f64 / elapsed, events as f64 / elapsed, result)
}

/// One measured point on the wire-throughput scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct WirePoint {
    /// Concurrent connections the loop ran with.
    pub connections: usize,
    /// In-flight pipelined requests per connection.
    pub pipeline: usize,
    /// Completed closed-loop operations per second (post-warm-up).
    pub ops_per_sec: f64,
    /// Median per-op latency (histogram upper bucket bound), nanos.
    pub p50_nanos: u64,
    /// 99th-percentile per-op latency, nanos.
    pub p99_nanos: u64,
    /// 99.9th-percentile per-op latency, nanos.
    pub p999_nanos: u64,
    /// Transport errors observed (0 on a healthy loopback).
    pub errors: u64,
}

/// What the wire-throughput stage measured (real TCP loopback: the
/// `cpw1` server, client, and codec on the hot path): the full
/// connections × pipeline-depth scaling curve, plus the two operating
/// points the report headlines.
#[derive(Debug, Clone)]
pub struct WireBench {
    /// The old pre-event-loop shape — few connections, depth 1 — kept
    /// as a side-by-side baseline for the pipelining speedup.
    pub depth1: WirePoint,
    /// The best point of the curve by ops/sec.
    pub best: WirePoint,
    /// Every measured `(connections, pipeline)` point, in sweep order.
    pub curve: Vec<WirePoint>,
}

/// Times the whole wire subsystem end to end: an in-process loopback
/// [`WireServer`](conprobe_wire::WireServer) hosting Blogger, hammered by
/// the closed-loop generator at each `(connections, pipeline)` point of
/// the scale's curve. This is a *real-socket* number — frame
/// encode/decode, checksums, TCP round trips, the shard ring and the
/// live cluster's locking are all on the measured path. Each point gets
/// a fresh server (identical seeded state) and a warm-up window before
/// measurement starts; reads cycle over 16 keys so every shard's path
/// stays exercised and payload sizes stay stationary.
pub fn bench_wire_throughput(scale: BenchScale) -> WireBench {
    use conprobe_wire::{run_load, LoadConfig, ServeConfig, WireServer};
    let mut curve = Vec::new();
    for &(connections, pipeline) in scale.wire_points {
        let server = WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 0xB17E))
            .expect("bind loopback wire server");
        let addr = server.addrs()[0].1;
        let metrics = conprobe_obs::MetricsRegistry::new();
        let config = LoadConfig {
            connections,
            pipeline,
            keys: 16,
            duration: std::time::Duration::from_millis(scale.wire_load_millis),
            warmup: std::time::Duration::from_millis(scale.wire_warmup_millis),
            ..LoadConfig::loopback(addr)
        };
        let report = run_load(&config, &metrics).expect("wire load loop");
        server.request_stop();
        server.join();
        assert!(report.ops > 0, "wire bench made no progress at {connections}x{pipeline}");
        assert_eq!(
            report.ordering_errors, 0,
            "pipelined responses arrived out of order at {connections}x{pipeline}"
        );
        assert_eq!(
            report.decode_errors, 0,
            "frame decoding failed under pipelining at {connections}x{pipeline}"
        );
        curve.push(WirePoint {
            connections,
            pipeline,
            ops_per_sec: report.ops_per_sec,
            p50_nanos: report.p50_nanos,
            p99_nanos: report.p99_nanos,
            p999_nanos: report.p999_nanos,
            errors: report.errors,
        });
    }
    let depth1 = curve[0];
    let best =
        *curve.iter().max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec)).expect("curve point");
    WireBench { depth1, best, curve }
}

/// What the quorum stage measured: the strong control arm's operation
/// throughput next to a weak catalog backend on the identical campaign
/// schedule — the price of `R + W > N` in this simulator, in numbers.
#[derive(Debug, Clone, Copy)]
pub struct QuorumBench {
    /// Quorum-committed writes per wall-clock second across the cell.
    pub quorum_writes_per_sec: f64,
    /// Majority reads per wall-clock second across the cell.
    pub quorum_reads_per_sec: f64,
    /// The weak baseline's (Google+) writes per second, same schedule.
    pub weak_writes_per_sec: f64,
    /// The weak baseline's reads per second, same schedule.
    pub weak_reads_per_sec: f64,
}

/// Times the quorum control arm against the weak baseline: two campaign
/// cells with byte-identical schedules (Test 2, the read-heavy regime),
/// differing only in backend. Every quorum read is a majority gather and
/// every write a majority commit, so the gap between the two rows is
/// pure replication-protocol cost.
pub fn bench_quorum(scale: BenchScale) -> QuorumBench {
    fn cell(service: ServiceKind, tests: u32) -> (f64, f64) {
        let mut config = CampaignConfig::paper(service, TestKind::Test2, tests).with_seed(0x0C0A);
        config.threads = 4;
        config.test.read_period = SimDuration::from_millis(100);
        config.test.fast_reads = 280;
        config.test.reads_target = 300;
        let start = Instant::now();
        let result = run_campaign(&config);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let writes: usize = result.results.iter().map(|r| r.trace.write_count()).sum();
        let reads: usize = result.results.iter().map(|r| r.trace.read_count()).sum();
        assert!(reads > 0, "{service} bench cell produced no reads");
        (writes as f64 / elapsed, reads as f64 / elapsed)
    }
    let (quorum_writes_per_sec, quorum_reads_per_sec) =
        cell(ServiceKind::Quorum, scale.campaign_tests);
    let (weak_writes_per_sec, weak_reads_per_sec) =
        cell(ServiceKind::GooglePlus, scale.campaign_tests);
    QuorumBench {
        quorum_writes_per_sec,
        quorum_reads_per_sec,
        weak_writes_per_sec,
        weak_reads_per_sec,
    }
}

/// What the pbft stage measured: the ordered-log consensus arm's write
/// commit latency (sim-time invoke→response over three protocol phases)
/// next to the quorum arm's two-phase majority commit on the identical
/// campaign schedule, plus wall-clock operation throughput for both.
#[derive(Debug, Clone, Copy)]
pub struct PbftBench {
    /// Mean pbft write commit latency in simulated nanoseconds
    /// (pre-prepare → prepare certificate → commit certificate → apply).
    pub pbft_commit_nanos_mean: f64,
    /// p99 pbft write commit latency in simulated nanoseconds.
    pub pbft_commit_nanos_p99: i64,
    /// Mean quorum write commit latency in simulated nanoseconds.
    pub quorum_commit_nanos_mean: f64,
    /// p99 quorum write commit latency in simulated nanoseconds.
    pub quorum_commit_nanos_p99: i64,
    /// Pbft operations per wall-clock second across the cell.
    pub pbft_ops_per_sec: f64,
    /// Quorum operations per wall-clock second, same schedule.
    pub quorum_ops_per_sec: f64,
}

/// Times the pbft ordered-log arm head-to-head with the quorum arm: two
/// campaign cells with byte-identical schedules, differing only in
/// backend. The latency gap is the extra consensus round — a quorum
/// write needs one majority round trip, a pbft write needs pre-prepare,
/// a prepare certificate, and a commit certificate before the origin
/// answers — and the wall-clock gap is the simulator cost of carrying
/// that message complexity.
pub fn bench_pbft(scale: BenchScale) -> PbftBench {
    struct Cell {
        commit_mean: f64,
        commit_p99: i64,
        ops_per_sec: f64,
    }
    fn cell(service: ServiceKind, tests: u32) -> Cell {
        let mut config = CampaignConfig::paper(service, TestKind::Test2, tests).with_seed(0x0CB1);
        config.threads = 4;
        config.test.read_period = SimDuration::from_millis(100);
        config.test.fast_reads = 280;
        config.test.reads_target = 300;
        let start = Instant::now();
        let result = run_campaign(&config);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let mut commit_nanos: Vec<i64> = result
            .results
            .iter()
            .flat_map(|r| r.trace.writes())
            .map(|(op, _)| op.response.as_nanos() - op.invoke.as_nanos())
            .collect();
        assert!(!commit_nanos.is_empty(), "{service} bench cell produced no writes");
        commit_nanos.sort_unstable();
        let commit_mean = commit_nanos.iter().sum::<i64>() as f64 / commit_nanos.len() as f64;
        let commit_p99 = commit_nanos[(commit_nanos.len() - 1) * 99 / 100];
        let ops: usize = result.results.iter().map(|r| r.trace.len()).sum();
        Cell { commit_mean, commit_p99, ops_per_sec: ops as f64 / elapsed }
    }
    let pbft = cell(ServiceKind::Pbft, scale.campaign_tests);
    let quorum = cell(ServiceKind::Quorum, scale.campaign_tests);
    PbftBench {
        pbft_commit_nanos_mean: pbft.commit_mean,
        pbft_commit_nanos_p99: pbft.commit_p99,
        quorum_commit_nanos_mean: quorum.commit_mean,
        quorum_commit_nanos_p99: quorum.commit_p99,
        pbft_ops_per_sec: pbft.ops_per_sec,
        quorum_ops_per_sec: quorum.ops_per_sec,
    }
}

/// What the streaming-checker stage measured: the incremental engine
/// ([`StreamingAnalyzer`](conprobe_core::StreamingAnalyzer)) replaying
/// the bench trace pool one event at a time, next to the whole-trace
/// `analyze()` entry point on the same pool, plus the memory-bounded
/// contract's figures.
#[derive(Debug, Clone, Copy)]
pub struct StreamBench {
    /// Events pushed per second through `push_event` + `finish`.
    pub stream_ops_per_sec: f64,
    /// `analyze()` ops/sec on the identical pool (same-tree reference;
    /// the two share the engine, so the ratio is dispatch overhead).
    pub batch_ops_per_sec: f64,
    /// Peak retained working-state bytes across the pool's replays.
    pub peak_retained_bytes: usize,
    /// Compact-JSON bytes of the largest trace replayed — the figure
    /// retained state must stay well under for the contract to mean
    /// anything.
    pub trace_bytes: usize,
}

/// Times the incremental checker engine event by event and verifies,
/// on every pool trace, that the replay's observations equal the batch
/// pass's — a perf stage that doubles as an equivalence smoke check.
pub fn bench_streaming(scale: BenchScale) -> StreamBench {
    use conprobe_core::StreamingAnalyzer;
    let traces: Vec<TestTrace<PostId>> = (0..8).map(|i| synthetic_trace(0xC0DE + i, 120)).collect();
    let config = CheckerConfig::default();
    let trace_bytes =
        traces.iter().map(|t| t.to_json().to_compact().len()).max().unwrap_or_default();

    // Warm-up doubling as the equivalence anchor.
    let mut peak_retained = 0usize;
    for t in &traces {
        let mut analyzer = StreamingAnalyzer::new(&config);
        for op in t.ops() {
            analyzer.push_event(op);
        }
        peak_retained = peak_retained.max(analyzer.retained_bytes());
        assert_eq!(
            analyzer.finish().observations,
            analyze(t, &config).observations,
            "streaming replay must equal the batch pass"
        );
    }

    let mut ops = 0usize;
    let mut sink = 0usize;
    let start = Instant::now();
    for it in 0..scale.checker_iters {
        let trace = &traces[it % traces.len()];
        let mut analyzer = StreamingAnalyzer::new(&config);
        for op in trace.ops() {
            analyzer.push_event(op);
        }
        ops += trace.len();
        sink += analyzer.finish().observations.len();
    }
    let stream_ops_per_sec = ops as f64 / start.elapsed().as_secs_f64();

    let mut ops = 0usize;
    let start = Instant::now();
    for it in 0..scale.checker_iters {
        let trace = &traces[it % traces.len()];
        sink += analyze(trace, &config).observations.len();
        ops += trace.len();
    }
    let batch_ops_per_sec = ops as f64 / start.elapsed().as_secs_f64();
    assert!(sink > 0, "streaming bench must observe anomalies");

    StreamBench {
        stream_ops_per_sec,
        batch_ops_per_sec,
        peak_retained_bytes: peak_retained,
        trace_bytes,
    }
}

/// Runs the whole suite at `scale`.
pub fn run_suite(scale: BenchScale) -> BenchNumbers {
    let (checker_ops_per_sec, _) = bench_checkers(scale);
    let snapshot_reads_per_sec = bench_snapshot_reads(scale);
    let visibility_records_per_sec = bench_visibility(scale);
    let (campaign_tests_per_sec, campaign_events_per_sec, result) = bench_campaign(scale);
    assert_eq!(result.results.len(), scale.campaign_tests as usize);
    BenchNumbers {
        checker_ops_per_sec,
        campaign_tests_per_sec,
        campaign_events_per_sec,
        snapshot_reads_per_sec,
        visibility_records_per_sec,
    }
}

/// Serializes a bench run (with the embedded baseline and speedup ratios)
/// as the pretty-printed `BENCH_repro.json` document. `journal_overhead`
/// is the [`bench_journal_overhead`] pair `(tests/sec off, tests/sec on)`
/// when that stage ran.
pub fn report_json(
    mode: &str,
    current: BenchNumbers,
    journal_overhead: Option<(f64, f64)>,
    wire: Option<&WireBench>,
    quorum: Option<&QuorumBench>,
    pbft: Option<&PbftBench>,
    streaming: Option<&StreamBench>,
) -> String {
    use conprobe_json::JsonValue;
    let numbers = |n: &BenchNumbers| {
        JsonValue::Object(vec![
            ("checker_ops_per_sec".into(), JsonValue::Float(round2(n.checker_ops_per_sec))),
            ("campaign_tests_per_sec".into(), JsonValue::Float(round2(n.campaign_tests_per_sec))),
            ("campaign_events_per_sec".into(), JsonValue::Float(round2(n.campaign_events_per_sec))),
            ("snapshot_reads_per_sec".into(), JsonValue::Float(round2(n.snapshot_reads_per_sec))),
            (
                "visibility_records_per_sec".into(),
                JsonValue::Float(round2(n.visibility_records_per_sec)),
            ),
        ])
    };
    let base = BenchNumbers {
        checker_ops_per_sec: baseline::CHECKER_OPS_PER_SEC,
        campaign_tests_per_sec: baseline::CAMPAIGN_TESTS_PER_SEC,
        campaign_events_per_sec: baseline::CAMPAIGN_EVENTS_PER_SEC,
        snapshot_reads_per_sec: baseline::SNAPSHOT_READS_PER_SEC,
        visibility_records_per_sec: baseline::VISIBILITY_RECORDS_PER_SEC,
    };
    let ratio = |cur: f64, base: f64| {
        if base > 0.0 {
            JsonValue::Float(round2(cur / base))
        } else {
            JsonValue::Null
        }
    };
    let doc = JsonValue::Object(vec![
        ("schema".into(), JsonValue::Str("conprobe-bench/1".into())),
        ("mode".into(), JsonValue::Str(mode.into())),
        (
            "baseline".into(),
            JsonValue::Object(vec![
                (
                    "recorded".into(),
                    JsonValue::Str(
                        "pre-optimization tree (before snapshot cache + TraceIndex), \
                         --mode full"
                            .into(),
                    ),
                ),
                ("numbers".into(), numbers(&base)),
            ]),
        ),
        ("current".into(), numbers(&current)),
        (
            "speedup".into(),
            JsonValue::Object(vec![
                ("checker".into(), ratio(current.checker_ops_per_sec, base.checker_ops_per_sec)),
                (
                    "campaign_tests".into(),
                    ratio(current.campaign_tests_per_sec, base.campaign_tests_per_sec),
                ),
                (
                    "campaign_events".into(),
                    ratio(current.campaign_events_per_sec, base.campaign_events_per_sec),
                ),
                (
                    "snapshot_reads".into(),
                    ratio(current.snapshot_reads_per_sec, base.snapshot_reads_per_sec),
                ),
                (
                    "visibility".into(),
                    ratio(current.visibility_records_per_sec, base.visibility_records_per_sec),
                ),
            ]),
        ),
    ]);
    let JsonValue::Object(mut members) = doc else { unreachable!() };
    if let Some((off, on)) = journal_overhead {
        members.push((
            "journal_overhead".into(),
            JsonValue::Object(vec![
                ("campaign_tests_per_sec_off".into(), JsonValue::Float(round2(off))),
                ("campaign_tests_per_sec_on".into(), JsonValue::Float(round2(on))),
                (
                    "overhead_pct".into(),
                    JsonValue::Float(round2((off / on.max(1e-9) - 1.0) * 100.0)),
                ),
            ]),
        ));
    }
    if let Some(w) = wire {
        let point = |p: &WirePoint| {
            JsonValue::Object(vec![
                ("connections".into(), JsonValue::Int(p.connections as i64)),
                ("pipeline".into(), JsonValue::Int(p.pipeline as i64)),
                ("ops_per_sec".into(), JsonValue::Float(round2(p.ops_per_sec))),
                ("p50_nanos".into(), JsonValue::Int(p.p50_nanos as i64)),
                ("p99_nanos".into(), JsonValue::Int(p.p99_nanos as i64)),
                ("p999_nanos".into(), JsonValue::Int(p.p999_nanos as i64)),
                ("errors".into(), JsonValue::Int(p.errors as i64)),
            ])
        };
        members.push((
            "wire_throughput".into(),
            JsonValue::Object(vec![
                // Headline keys describe the best operating point; the
                // depth-1 block is the old pre-event-loop shape measured
                // on the same tree, and `curve` is the full sweep.
                ("ops_per_sec".into(), JsonValue::Float(round2(w.best.ops_per_sec))),
                ("p50_nanos".into(), JsonValue::Int(w.best.p50_nanos as i64)),
                ("p99_nanos".into(), JsonValue::Int(w.best.p99_nanos as i64)),
                ("p999_nanos".into(), JsonValue::Int(w.best.p999_nanos as i64)),
                ("connections".into(), JsonValue::Int(w.best.connections as i64)),
                ("pipeline".into(), JsonValue::Int(w.best.pipeline as i64)),
                ("errors".into(), JsonValue::Int(w.best.errors as i64)),
                ("depth1".into(), point(&w.depth1)),
                (
                    "pipelining_speedup".into(),
                    JsonValue::Float(round2(w.best.ops_per_sec / w.depth1.ops_per_sec.max(1e-9))),
                ),
                ("curve".into(), JsonValue::Array(w.curve.iter().map(point).collect())),
            ]),
        ));
    }
    if let Some(q) = quorum {
        members.push((
            "quorum".into(),
            JsonValue::Object(vec![
                ("writes_per_sec".into(), JsonValue::Float(round2(q.quorum_writes_per_sec))),
                ("reads_per_sec".into(), JsonValue::Float(round2(q.quorum_reads_per_sec))),
                ("weak_writes_per_sec".into(), JsonValue::Float(round2(q.weak_writes_per_sec))),
                ("weak_reads_per_sec".into(), JsonValue::Float(round2(q.weak_reads_per_sec))),
                (
                    "read_slowdown".into(),
                    JsonValue::Float(round2(
                        q.weak_reads_per_sec / q.quorum_reads_per_sec.max(1e-9),
                    )),
                ),
            ]),
        ));
    }
    if let Some(p) = pbft {
        members.push((
            "pbft".into(),
            JsonValue::Object(vec![
                ("commit_nanos_mean".into(), JsonValue::Float(round2(p.pbft_commit_nanos_mean))),
                ("commit_nanos_p99".into(), JsonValue::Int(p.pbft_commit_nanos_p99)),
                (
                    "quorum_commit_nanos_mean".into(),
                    JsonValue::Float(round2(p.quorum_commit_nanos_mean)),
                ),
                ("quorum_commit_nanos_p99".into(), JsonValue::Int(p.quorum_commit_nanos_p99)),
                ("ops_per_sec".into(), JsonValue::Float(round2(p.pbft_ops_per_sec))),
                ("quorum_ops_per_sec".into(), JsonValue::Float(round2(p.quorum_ops_per_sec))),
                (
                    "commit_latency_ratio".into(),
                    JsonValue::Float(round2(
                        p.pbft_commit_nanos_mean / p.quorum_commit_nanos_mean.max(1e-9),
                    )),
                ),
            ]),
        ));
    }
    if let Some(s) = streaming {
        members.push((
            "streaming".into(),
            JsonValue::Object(vec![
                ("stream_ops_per_sec".into(), JsonValue::Float(round2(s.stream_ops_per_sec))),
                ("batch_ops_per_sec".into(), JsonValue::Float(round2(s.batch_ops_per_sec))),
                ("peak_retained_bytes".into(), JsonValue::Int(s.peak_retained_bytes as i64)),
                ("trace_bytes".into(), JsonValue::Int(s.trace_bytes as i64)),
                (
                    "retention_ratio".into(),
                    JsonValue::Float(round2(
                        s.peak_retained_bytes as f64 / (s.trace_bytes as f64).max(1.0),
                    )),
                ),
            ]),
        ));
    }
    JsonValue::Object(members).to_pretty()
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// FNV-1a over a byte string — the fingerprint hash for the golden-seed
/// determinism tests (stable across platforms and toolchains, unlike
/// `std`'s `RandomState` hashes). Delegates to the workspace-wide
/// implementation in [`conprobe_json::frame`], which the `cpj1` record
/// format (campaign journal, quorum state transfer) also uses.
pub fn fnv64(bytes: &[u8]) -> u64 {
    conprobe_json::frame::fnv64(bytes)
}

/// A golden fingerprint of one test instance: the FNV-1a hash of the
/// compact trace JSON plus the per-kind anomaly counts and window totals.
/// Byte-identical traces and analyses produce identical fingerprints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenFingerprint {
    /// FNV-1a of the compact JSON serialization of the trace.
    pub trace_hash: u64,
    /// `(AnomalyKind::short(), observation count)` for all six kinds.
    pub anomaly_counts: Vec<(&'static str, usize)>,
    /// Content-divergence windows across all pairs.
    pub content_windows: usize,
    /// Order-divergence windows across all pairs.
    pub order_windows: usize,
}

impl GoldenFingerprint {
    /// One line per fingerprint, for `conprobe-bench --golden` output.
    pub fn render(&self) -> String {
        let counts: Vec<String> =
            self.anomaly_counts.iter().map(|(k, n)| format!("{k}={n}")).collect();
        format!(
            "trace_hash=0x{:016x} {} cw={} ow={}",
            self.trace_hash,
            counts.join(" "),
            self.content_windows,
            self.order_windows
        )
    }
}

/// Runs `(service, kind, seed)` once and fingerprints the outcome.
pub fn golden_fingerprint(service: ServiceKind, kind: TestKind, seed: u64) -> GoldenFingerprint {
    let config = conprobe_harness::runner::TestConfig::paper(service, kind);
    let result = run_one_test(&config, seed);
    let trace_hash = fnv64(result.trace.to_json().to_compact().as_bytes());
    let anomaly_counts =
        AnomalyKind::ALL.iter().map(|k| (k.short(), result.analysis.count(*k))).collect();
    GoldenFingerprint {
        trace_hash,
        anomaly_counts,
        content_windows: result.analysis.content_windows.iter().map(|w| w.windows.len()).sum(),
        order_windows: result.analysis.order_windows.iter().map(|w| w.windows.len()).sum(),
    }
}

/// Like [`golden_fingerprint`], but with the full observability layer
/// switched on (metrics registry + a Debug-level event log). The
/// determinism guarantee says this must equal the uninstrumented
/// fingerprint for every golden case — observability may count events but
/// never reorder, drop, or add them.
pub fn golden_fingerprint_observed(
    service: ServiceKind,
    kind: TestKind,
    seed: u64,
) -> GoldenFingerprint {
    let mut config = conprobe_harness::runner::TestConfig::paper(service, kind);
    config.obs = Some(conprobe_sim::ObsSink::with_log(
        conprobe_obs::EventLog::new(8192).with_min_severity(conprobe_obs::Severity::Debug),
    ));
    let result = run_one_test(&config, seed);
    let trace_hash = fnv64(result.trace.to_json().to_compact().as_bytes());
    let anomaly_counts =
        AnomalyKind::ALL.iter().map(|k| (k.short(), result.analysis.count(*k))).collect();
    GoldenFingerprint {
        trace_hash,
        anomaly_counts,
        content_windows: result.analysis.content_windows.iter().map(|w| w.windows.len()).sum(),
        order_windows: result.analysis.order_windows.iter().map(|w| w.windows.len()).sum(),
    }
}

/// The fixed golden cases: one per service, covering both tests.
pub const GOLDEN_CASES: [(ServiceKind, TestKind, u64); 4] = [
    (ServiceKind::Blogger, TestKind::Test1, 1),
    (ServiceKind::GooglePlus, TestKind::Test2, 2),
    (ServiceKind::FacebookGroup, TestKind::Test1, 7),
    (ServiceKind::FacebookFeed, TestKind::Test2, 3),
];

/// FNV-1a hash of a small `study.json` (Blogger, both tests, 2 instances,
/// seed 42) — the report-level half of the golden determinism check.
pub fn study_fingerprint() -> u64 {
    let t1 = run_campaign(
        &CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test1, 2).with_seed(42),
    );
    let t2 = run_campaign(
        &CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, 2).with_seed(42),
    );
    let report = StudyReport::new(42, &[("Blogger", &t1, &t2)]);
    fnv64(report.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_is_deterministic_and_busy() {
        let a = synthetic_trace(0xC0DE, 40);
        let b = synthetic_trace(0xC0DE, 40);
        assert_eq!(a, b);
        assert_eq!(a.write_count(), 24);
        assert_eq!(a.read_count(), 120);
        // The perturbations must actually trigger checkers, or the bench
        // times an empty fast path.
        let analysis = analyze(&a, &CheckerConfig::default());
        assert!(!analysis.observations.is_empty(), "synthetic trace must exercise the checkers");
    }

    #[test]
    #[ignore = "baseline measurement helper"]
    fn measure_prehoist_visibility_baseline() {
        // The pre-hoist algorithm, verbatim shape: reads re-derived per
        // (write, agent) pair.
        use conprobe_core::visibility::{Visibility, VisibilityRecord};
        fn visibility_prehoist(trace: &TestTrace<PostId>) -> Vec<VisibilityRecord<PostId>> {
            let mut out = Vec::new();
            let agents = trace.agents();
            for (wop, id) in trace.writes() {
                for &reader in &agents {
                    let reads = trace.reads_by(reader);
                    if reads.is_empty() {
                        continue;
                    }
                    let first_seen = reads
                        .iter()
                        .filter(|r| r.read_seq().expect("read").contains(id))
                        .map(|r| r.response)
                        .min();
                    let visibility = match first_seen {
                        Some(at) => Visibility::After(at.delta_nanos(wop.response).max(0)),
                        None => Visibility::Never,
                    };
                    out.push(VisibilityRecord {
                        event: *id,
                        writer: wop.agent,
                        reader,
                        written_at: wop.response,
                        visibility,
                    });
                }
            }
            out
        }
        let scale = BenchScale::full();
        let traces: Vec<TestTrace<PostId>> =
            (0..8).map(|i| synthetic_trace(0xC0DE + i, 120)).collect();
        let measure = || {
            let mut records = 0usize;
            let start = Instant::now();
            for it in 0..scale.visibility_iters {
                records += visibility_prehoist(&traces[it % traces.len()]).len();
            }
            records as f64 / start.elapsed().as_secs_f64()
        };
        measure(); // warm-up
        let prehoist = measure();
        bench_visibility(scale); // warm-up
        let hoisted = bench_visibility(scale);
        println!("prehoist={prehoist:.0} hoisted={hoisted:.0} records/sec");
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn report_json_is_valid_and_carries_all_metrics() {
        let numbers = BenchNumbers {
            checker_ops_per_sec: 1000.0,
            campaign_tests_per_sec: 2.0,
            campaign_events_per_sec: 50_000.0,
            snapshot_reads_per_sec: 9000.0,
            visibility_records_per_sec: 4000.0,
        };
        let depth1 = WirePoint {
            connections: 8,
            pipeline: 1,
            ops_per_sec: 80_000.0,
            p50_nanos: 1_000_000,
            p99_nanos: 2_000_000,
            p999_nanos: 3_000_000,
            errors: 0,
        };
        let best = WirePoint {
            connections: 256,
            pipeline: 16,
            ops_per_sec: 800_000.0,
            p50_nanos: 4_000_000,
            p99_nanos: 9_000_000,
            p999_nanos: 12_000_000,
            errors: 0,
        };
        let wire = WireBench { depth1, best, curve: vec![depth1, best] };
        let quorum = QuorumBench {
            quorum_writes_per_sec: 10.0,
            quorum_reads_per_sec: 500.0,
            weak_writes_per_sec: 12.0,
            weak_reads_per_sec: 1500.0,
        };
        let pbft = PbftBench {
            pbft_commit_nanos_mean: 900_000.0,
            pbft_commit_nanos_p99: 1_500_000,
            quorum_commit_nanos_mean: 300_000.0,
            quorum_commit_nanos_p99: 500_000,
            pbft_ops_per_sec: 4_000.0,
            quorum_ops_per_sec: 6_000.0,
        };
        let streaming = StreamBench {
            stream_ops_per_sec: 20_000.0,
            batch_ops_per_sec: 19_000.0,
            peak_retained_bytes: 5_000,
            trace_bytes: 50_000,
        };
        let doc = conprobe_json::parse(&report_json(
            "smoke",
            numbers,
            Some((2.0, 1.9)),
            Some(&wire),
            Some(&quorum),
            Some(&pbft),
            Some(&streaming),
        ))
        .expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("conprobe-bench/1"));
        let current = doc.get("current").expect("current block");
        assert_eq!(current.get("checker_ops_per_sec").and_then(|v| v.as_f64()), Some(1000.0));
        assert!(doc.get("speedup").is_some());
        assert!(doc.get("baseline").and_then(|b| b.get("numbers")).is_some());
        let jo = doc.get("journal_overhead").expect("journal overhead block");
        assert_eq!(jo.get("campaign_tests_per_sec_off").and_then(|v| v.as_f64()), Some(2.0));
        assert!(jo.get("overhead_pct").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let wt = doc.get("wire_throughput").expect("wire throughput block");
        assert_eq!(wt.get("ops_per_sec").and_then(|v| v.as_f64()), Some(800_000.0));
        assert_eq!(wt.get("p99_nanos").and_then(|v| v.as_f64()), Some(9_000_000.0));
        assert_eq!(wt.get("pipeline").and_then(|v| v.as_f64()), Some(16.0));
        assert_eq!(wt.get("pipelining_speedup").and_then(|v| v.as_f64()), Some(10.0));
        let d1 = wt.get("depth1").expect("depth1 baseline point");
        assert_eq!(d1.get("ops_per_sec").and_then(|v| v.as_f64()), Some(80_000.0));
        assert_eq!(d1.get("pipeline").and_then(|v| v.as_f64()), Some(1.0));
        match wt.get("curve") {
            Some(conprobe_json::JsonValue::Array(points)) => assert_eq!(points.len(), 2),
            other => panic!("curve must be an array of points, got {other:?}"),
        }
        let q = doc.get("quorum").expect("quorum block");
        assert_eq!(q.get("reads_per_sec").and_then(|v| v.as_f64()), Some(500.0));
        assert_eq!(q.get("read_slowdown").and_then(|v| v.as_f64()), Some(3.0));
        let pb = doc.get("pbft").expect("pbft block");
        assert_eq!(pb.get("commit_nanos_mean").and_then(|v| v.as_f64()), Some(900_000.0));
        assert_eq!(pb.get("commit_nanos_p99").and_then(|v| v.as_f64()), Some(1_500_000.0));
        assert_eq!(pb.get("quorum_commit_nanos_p99").and_then(|v| v.as_f64()), Some(500_000.0));
        assert_eq!(pb.get("commit_latency_ratio").and_then(|v| v.as_f64()), Some(3.0));
        let st = doc.get("streaming").expect("streaming block");
        assert_eq!(st.get("stream_ops_per_sec").and_then(|v| v.as_f64()), Some(20_000.0));
        assert_eq!(st.get("peak_retained_bytes").and_then(|v| v.as_f64()), Some(5_000.0));
        assert_eq!(st.get("retention_ratio").and_then(|v| v.as_f64()), Some(0.1));
        // Without the stages, the blocks are absent (schema stays stable).
        let bare =
            conprobe_json::parse(&report_json("smoke", numbers, None, None, None, None, None))
                .unwrap();
        assert!(bare.get("journal_overhead").is_none());
        assert!(bare.get("wire_throughput").is_none());
        assert!(bare.get("quorum").is_none());
        assert!(bare.get("pbft").is_none());
        assert!(bare.get("streaming").is_none());
    }

    #[test]
    fn streaming_bench_stage_measures_and_bounds_memory() {
        let bench = bench_streaming(BenchScale::smoke());
        assert!(bench.stream_ops_per_sec > 0.0);
        assert!(bench.batch_ops_per_sec > 0.0);
        assert!(bench.peak_retained_bytes > 0);
        // The memory-bounded contract, on the bench pool itself:
        // retained working state stays strictly under the raw trace
        // size even with compact `PostId` keys, where interning buys
        // the least (the wide-key win is pinned in the core crate's
        // streaming-equivalence suite).
        assert!(
            bench.peak_retained_bytes < bench.trace_bytes,
            "retained {} bytes vs trace {} bytes",
            bench.peak_retained_bytes,
            bench.trace_bytes
        );
    }
}
