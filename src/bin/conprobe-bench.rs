//! `conprobe-bench` — the perf measurement binary.
//!
//! ```text
//! conprobe-bench [--mode full|smoke] [--out PATH] [--metrics-out PATH]
//!                [--golden] [--with-metrics]
//! ```
//!
//! Times the hot paths (checker stack, replica snapshot reads, visibility
//! records, a campaign cell) on deterministic workloads and writes
//! `BENCH_repro.json` with the measurements, the embedded pre-change
//! baseline and the speedup ratios. A metrics-overhead stage runs the
//! campaign cell with the observability layer off and on, and dumps the
//! instrumented run's registry to `--metrics-out` (default
//! `metrics.json`); a journal-overhead stage does the same with the
//! crash-safe campaign journal (fsync'd append per finished test) off
//! and on; a wire-throughput stage hammers an in-process loopback `cpw1`
//! server with the closed-loop load generator and records real-socket
//! ops/sec and latency percentiles; a quorum stage times the
//! majority-quorum control arm against the weak baseline on an identical
//! campaign schedule; a pbft stage times the ordered-log consensus arm's
//! write commit latency and throughput head-to-head with the quorum arm;
//! a streaming stage replays the trace pool through
//! the incremental checker engine event by event, recording its
//! throughput next to `analyze()` and the retained-memory bound the
//! streaming contract promises. `--mode smoke` runs the same
//! workloads at small
//! iteration counts for CI; `--golden` skips timing entirely and prints
//! the golden-seed fingerprints used by `tests/determinism_golden.rs`
//! (add `--with-metrics` to print the instrumented fingerprints instead —
//! CI diffs the two outputs to prove observability changes nothing).

use conprobe::bench;
use std::process::ExitCode;

struct Args {
    mode: String,
    out: String,
    metrics_out: String,
    golden: bool,
    with_metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: "full".into(),
        out: "BENCH_repro.json".into(),
        metrics_out: "metrics.json".into(),
        golden: false,
        with_metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => {
                args.mode = it.next().ok_or("--mode needs full|smoke")?;
                if args.mode != "full" && args.mode != "smoke" {
                    return Err(format!("--mode must be full or smoke, got {}", args.mode));
                }
            }
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--metrics-out" => args.metrics_out = it.next().ok_or("--metrics-out needs a path")?,
            "--golden" => args.golden = true,
            "--with-metrics" => args.with_metrics = true,
            "--help" | "-h" => {
                return Err("usage: conprobe-bench [--mode full|smoke] [--out PATH] \
                     [--metrics-out PATH] [--golden] [--with-metrics]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.golden {
        for (service, kind, seed) in bench::GOLDEN_CASES {
            let fp = if args.with_metrics {
                bench::golden_fingerprint_observed(service, kind, seed)
            } else {
                bench::golden_fingerprint(service, kind, seed)
            };
            println!("{service} {kind} seed={seed}: {}", fp.render());
        }
        println!("study_hash=0x{:016x}", bench::study_fingerprint());
        return ExitCode::SUCCESS;
    }

    let scale = match args.mode.as_str() {
        "smoke" => bench::BenchScale::smoke(),
        _ => bench::BenchScale::full(),
    };
    eprintln!(
        "conprobe-bench --mode {}: {} checker iters, {} snapshot reads, {} campaign tests",
        args.mode, scale.checker_iters, scale.snapshot_reads, scale.campaign_tests
    );

    let (checker_ops, checksum) = bench::bench_checkers(scale);
    eprintln!("checker stack: {checker_ops:.0} ops/sec (checksum {checksum})");
    let snapshot_reads = bench::bench_snapshot_reads(scale);
    eprintln!("snapshot reads: {snapshot_reads:.0} reads/sec");
    let visibility_records = bench::bench_visibility(scale);
    eprintln!("visibility: {visibility_records:.0} records/sec");
    let (campaign_tests, campaign_events, result) = bench::bench_campaign(scale);
    eprintln!(
        "campaign cell: {campaign_tests:.2} tests/sec, {campaign_events:.0} events/sec \
         ({}/{} completed)",
        result.results.iter().filter(|r| r.completed).count(),
        result.results.len()
    );
    let (obs_off, obs_on, metrics_json) = bench::bench_metrics_overhead(scale);
    eprintln!(
        "metrics overhead: {obs_off:.2} tests/sec off, {obs_on:.2} tests/sec on \
         ({:.1}% overhead)",
        (obs_off / obs_on.max(1e-9) - 1.0) * 100.0
    );
    let (journal_off, journal_on) = bench::bench_journal_overhead(scale);
    eprintln!(
        "journal overhead: {journal_off:.2} tests/sec off, {journal_on:.2} tests/sec on \
         ({:.1}% overhead)",
        (journal_off / journal_on.max(1e-9) - 1.0) * 100.0
    );
    let wire = bench::bench_wire_throughput(scale);
    for p in &wire.curve {
        eprintln!(
            "wire point {} conn x {} deep: {:.0} ops/sec \
             (p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, {} error(s))",
            p.connections,
            p.pipeline,
            p.ops_per_sec,
            p.p50_nanos as f64 / 1e6,
            p.p99_nanos as f64 / 1e6,
            p.p999_nanos as f64 / 1e6,
            p.errors
        );
    }
    eprintln!(
        "wire throughput: {:.0} ops/sec best ({} conn x {} deep), \
         {:.2}x over the depth-1 shape ({:.0} ops/sec)",
        wire.best.ops_per_sec,
        wire.best.connections,
        wire.best.pipeline,
        wire.best.ops_per_sec / wire.depth1.ops_per_sec.max(1e-9),
        wire.depth1.ops_per_sec
    );
    let quorum = bench::bench_quorum(scale);
    eprintln!(
        "quorum cell: {:.0} writes/sec, {:.0} reads/sec \
         (weak baseline {:.0}/{:.0}, read slowdown {:.2}x)",
        quorum.quorum_writes_per_sec,
        quorum.quorum_reads_per_sec,
        quorum.weak_writes_per_sec,
        quorum.weak_reads_per_sec,
        quorum.weak_reads_per_sec / quorum.quorum_reads_per_sec.max(1e-9)
    );
    let pbft = bench::bench_pbft(scale);
    eprintln!(
        "pbft cell: commit {:.2} ms mean / {:.2} ms p99 vs quorum {:.2} ms mean / {:.2} ms p99 \
         ({:.2}x); {:.0} ops/sec vs quorum {:.0} ops/sec",
        pbft.pbft_commit_nanos_mean / 1e6,
        pbft.pbft_commit_nanos_p99 as f64 / 1e6,
        pbft.quorum_commit_nanos_mean / 1e6,
        pbft.quorum_commit_nanos_p99 as f64 / 1e6,
        pbft.pbft_commit_nanos_mean / pbft.quorum_commit_nanos_mean.max(1e-9),
        pbft.pbft_ops_per_sec,
        pbft.quorum_ops_per_sec
    );
    let streaming = bench::bench_streaming(scale);
    eprintln!(
        "streaming checkers: {:.0} events/sec (batch {:.0} ops/sec); \
         retained {} bytes vs {} trace bytes ({:.1}%)",
        streaming.stream_ops_per_sec,
        streaming.batch_ops_per_sec,
        streaming.peak_retained_bytes,
        streaming.trace_bytes,
        streaming.peak_retained_bytes as f64 / (streaming.trace_bytes as f64).max(1.0) * 100.0
    );
    if let Err(e) = conprobe::fsio::write_atomic(&args.metrics_out, &metrics_json) {
        eprintln!("cannot write {}: {e}", args.metrics_out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.metrics_out);

    let numbers = bench::BenchNumbers {
        checker_ops_per_sec: checker_ops,
        campaign_tests_per_sec: campaign_tests,
        campaign_events_per_sec: campaign_events,
        snapshot_reads_per_sec: snapshot_reads,
        visibility_records_per_sec: visibility_records,
    };
    let json = bench::report_json(
        &args.mode,
        numbers,
        Some((journal_off, journal_on)),
        Some(&wire),
        Some(&quorum),
        Some(&pbft),
        Some(&streaming),
    );
    if let Err(e) = conprobe::fsio::write_atomic(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);
    ExitCode::SUCCESS
}
