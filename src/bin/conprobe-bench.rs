//! `conprobe-bench` — the perf measurement binary.
//!
//! ```text
//! conprobe-bench [--mode full|smoke] [--out PATH] [--golden]
//! ```
//!
//! Times the hot paths (checker stack, replica snapshot reads, a campaign
//! cell) on deterministic workloads and writes `BENCH_repro.json` with the
//! measurements, the embedded pre-change baseline and the speedup ratios.
//! `--mode smoke` runs the same workloads at small iteration counts for
//! CI; `--golden` skips timing entirely and prints the golden-seed
//! fingerprints used by `tests/determinism_golden.rs`.

use conprobe::bench;
use std::process::ExitCode;

struct Args {
    mode: String,
    out: String,
    golden: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { mode: "full".into(), out: "BENCH_repro.json".into(), golden: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => {
                args.mode = it.next().ok_or("--mode needs full|smoke")?;
                if args.mode != "full" && args.mode != "smoke" {
                    return Err(format!("--mode must be full or smoke, got {}", args.mode));
                }
            }
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--golden" => args.golden = true,
            "--help" | "-h" => {
                return Err(
                    "usage: conprobe-bench [--mode full|smoke] [--out PATH] [--golden]".to_string()
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.golden {
        for (service, kind, seed) in bench::GOLDEN_CASES {
            let fp = bench::golden_fingerprint(service, kind, seed);
            println!("{service} {kind} seed={seed}: {}", fp.render());
        }
        println!("study_hash=0x{:016x}", bench::study_fingerprint());
        return ExitCode::SUCCESS;
    }

    let scale = match args.mode.as_str() {
        "smoke" => bench::BenchScale::smoke(),
        _ => bench::BenchScale::full(),
    };
    eprintln!(
        "conprobe-bench --mode {}: {} checker iters, {} snapshot reads, {} campaign tests",
        args.mode, scale.checker_iters, scale.snapshot_reads, scale.campaign_tests
    );

    let (checker_ops, checksum) = bench::bench_checkers(scale);
    eprintln!("checker stack: {checker_ops:.0} ops/sec (checksum {checksum})");
    let snapshot_reads = bench::bench_snapshot_reads(scale);
    eprintln!("snapshot reads: {snapshot_reads:.0} reads/sec");
    let (campaign_tests, campaign_events, result) = bench::bench_campaign(scale);
    eprintln!(
        "campaign cell: {campaign_tests:.2} tests/sec, {campaign_events:.0} events/sec \
         ({}/{} completed)",
        result.results.iter().filter(|r| r.completed).count(),
        result.results.len()
    );

    let numbers = bench::BenchNumbers {
        checker_ops_per_sec: checker_ops,
        campaign_tests_per_sec: campaign_tests,
        campaign_events_per_sec: campaign_events,
        snapshot_reads_per_sec: snapshot_reads,
    };
    let json = bench::report_json(&args.mode, numbers);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);
    ExitCode::SUCCESS
}
