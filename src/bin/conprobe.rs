//! The `conprobe` CLI: run tests, analyze traces, summarize campaigns.
//!
//! ```sh
//! cargo run --release --bin conprobe -- run --service gplus --test 1 --timeline
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match conprobe::cli::parse(&args).and_then(conprobe::cli::execute) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", conprobe::cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
