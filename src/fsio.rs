//! Crash-safe file output.
//!
//! Every file conprobe produces (trace JSON, metrics dumps, bench
//! reports) is written through [`write_atomic`]: the bytes land in a
//! temporary sibling first and only an atomic rename publishes them, so a
//! crash mid-write can never leave a half-written JSON file where a
//! report used to be — the same discipline the campaign journal applies
//! to its records.

use std::io::Write;
use std::path::Path;

/// Writes `contents` to `path` atomically: write + fsync a temporary
/// sibling, then rename it over `path`. On any error the temporary file
/// is removed, leaving `path` untouched (either its old content or
/// absent — never a torn write).
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("{} has no file name", path.display())))?;
    let tmp =
        path.with_file_name(format!(".{}.tmp-{}", file_name.to_string_lossy(), std::process::id()));
    let attempt = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.sync_data()?;
        std::fs::rename(&tmp, path)
    })();
    if attempt.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    attempt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join("conprobe-fsio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("out-{}.json", std::process::id()));
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // No temp droppings.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(strays.is_empty(), "{strays:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_cleans_up_the_temp_file_and_preserves_the_target() {
        let dir = std::env::temp_dir().join("conprobe-fsio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join(format!("kept-{}.json", std::process::id()));
        write_atomic(&target, "precious").unwrap();
        // Renaming a file over a *directory* fails after the temp file is
        // already written — the error path must clean it up.
        let as_dir = dir.join(format!("blocked-{}", std::process::id()));
        std::fs::create_dir_all(&as_dir).unwrap();
        assert!(write_atomic(&as_dir, "doomed").is_err());
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(strays.is_empty(), "temp must be removed on error: {strays:?}");
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "precious");
        std::fs::remove_file(&target).ok();
        std::fs::remove_dir(&as_dir).ok();
    }

    #[test]
    fn rejects_pathless_targets() {
        assert!(write_atomic("/", "x").is_err());
    }

    #[test]
    fn file_as_parent_surfaces_the_io_error_without_droppings() {
        let dir = std::env::temp_dir().join("conprobe-fsio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join(format!("plain-{}.txt", std::process::id()));
        std::fs::write(&file, b"i am a file").unwrap();
        // The temp sibling lives under the same (bogus) parent, so the
        // very first create fails with ENOTDIR — a typed error, no panic.
        let err = write_atomic(file.join("child.json"), "doomed")
            .expect_err("a file cannot be a parent directory");
        assert!(err.raw_os_error().is_some(), "expected an OS-level error, got {err}");
        assert_eq!(std::fs::read_to_string(&file).unwrap(), "i am a file");
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn missing_parent_surfaces_the_io_error_without_droppings() {
        let ghost = std::env::temp_dir()
            .join(format!("conprobe-fsio-ghost-{}", std::process::id()))
            .join("report.json");
        let err = write_atomic(&ghost, "doomed").expect_err("parent does not exist");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        assert!(!ghost.exists());
    }
}
