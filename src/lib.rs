//! # conprobe — characterizing the consistency of online services
//!
//! Umbrella crate re-exporting the whole `conprobe` workspace: a faithful
//! reproduction of *"Characterizing the Consistency of Online Services
//! (Practical Experience Report)"* (Freitas, Leitão, Preguiça, Rodrigues —
//! DSN 2016) against simulated stand-ins for the paper's four services.
//!
//! Start with [`harness::campaign`] to run a measurement campaign, or see
//! `examples/quickstart.rs` for the shortest end-to-end path.

pub mod bench;
pub mod cli;
pub mod fsio;

pub use conprobe_core as core;
pub use conprobe_harness as harness;
pub use conprobe_json as json;
pub use conprobe_services as services;
pub use conprobe_session as session;
pub use conprobe_sim as sim;
pub use conprobe_store as store;
pub use conprobe_wire as wire;
