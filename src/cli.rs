//! The `conprobe` command-line interface (logic layer).
//!
//! All argument parsing and command execution lives here and returns
//! strings/results so it can be unit-tested; `src/bin/conprobe.rs` is the
//! thin I/O shell.

use conprobe_core::checkers::WfrMode;
use conprobe_core::{
    analyze, timeline, AnomalyKind, CheckerConfig, StreamingAnalyzer, TestTrace, Verdict,
};
use conprobe_harness::journal::{self, Journal, Recovery};
use conprobe_harness::proto::{test1_trigger_pairs, TestKind};
use conprobe_harness::runner::{checker_config_for, run_one_test, TestConfig, TestResult};
use conprobe_harness::stats;
use conprobe_json::{FromJson, ToJson};
use conprobe_obs::{EventLog, MetricsRegistry, Severity};
use conprobe_services::live::StaleWindow;
use conprobe_services::ServiceKind;
use conprobe_sim::net::Region;
use conprobe_sim::{
    BrownoutMode, FaultEvent, FaultPlan, LinkScope, ObsSink, SimDuration, SimRng, SimTime,
};
use conprobe_store::PostId;
use conprobe_wire::{
    drive_service_actions, run_dispatch, run_load, run_probe, run_probe_with_live, run_worker,
    ChaosConfig, ChaosLedger, ChaosProxy, ChaosTarget, DispatchConfig, InjectProfile, LiveEvent,
    LoadConfig, ProbeConfig, ReconnectPolicy, ServeConfig, WireServer, WorkerConfig,
};
use std::fmt::Write as _;
use std::time::Duration;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one test instance and report.
    Run {
        /// Service under test.
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Seed.
        seed: u64,
        /// Wrap agents in a session guard.
        guard: bool,
        /// Enable the white-box replica probe.
        whitebox: bool,
        /// Print the ASCII timeline.
        show_timeline: bool,
        /// Dump the trace as JSON to this path.
        json_out: Option<String>,
        /// Dump the metrics registry as JSON to this path.
        metrics_out: Option<String>,
    },
    /// Analyze a previously exported trace JSON.
    Analyze {
        /// Path to the trace JSON.
        path: String,
        /// Interpret as a Test 1 trace (enables the trigger-pair WFR mode).
        test1: bool,
    },
    /// Run a small campaign cell and summarize.
    Campaign {
        /// Service under test.
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Number of instances.
        tests: u32,
        /// Seed.
        seed: u64,
        /// Dump the metrics registry as JSON to this path.
        metrics_out: Option<String>,
        /// Journal every finished instance to this path (fresh journal).
        journal_out: Option<String>,
        /// Resume from (and keep appending to) this journal.
        resume: Option<String>,
    },
    /// Sweep fault-plan intensity levels against one service and report
    /// how the measurement degrades.
    Chaos {
        /// Service under test.
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Seed (both for the world and the fault plan).
        seed: u64,
        /// Highest intensity level to run (sweeps 0..=levels).
        levels: u32,
        /// Run each level against a real loopback TCP arm — server,
        /// chaos interposer, fault-driven replica crash/rejoin, live
        /// probe — instead of the simulator.
        wire: bool,
        /// Replay a measured incident timeline (outage-trace JSON)
        /// instead of the synthetic escalation.
        outage_trace: Option<String>,
        /// Dump the metrics registry as JSON to this path.
        metrics_out: Option<String>,
        /// Journal every finished level to this path (fresh journal).
        journal_out: Option<String>,
        /// Resume from (and keep appending to) this journal.
        resume: Option<String>,
    },
    /// Replay one test with the structured event log on, printing the
    /// sim-time-stamped events to stderr and a summary to stdout.
    Trace {
        /// Service under test.
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Seed.
        seed: u64,
        /// Minimum severity to record.
        level: Severity,
        /// Only record events whose target starts with this prefix.
        target: Option<String>,
        /// Event-log ring capacity (older events are evicted).
        cap: usize,
    },
    /// Run the full mini-study (every service × both tests) and print a
    /// prevalence table; `--metrics` dumps the combined registry.
    Repro {
        /// Instances per (service, test) cell.
        tests: u32,
        /// Seed (combined with each cell's own master seed).
        seed: u64,
        /// Dump the metrics registry as JSON to this path.
        metrics_out: Option<String>,
        /// Journal every finished instance to this path (fresh journal).
        journal_out: Option<String>,
        /// Resume from (and keep appending to) this journal.
        resume: Option<String>,
    },
    /// Inspect a campaign journal: record counts, per-cell completion,
    /// corrupt-tail diagnostics.
    JournalInspect {
        /// Path to the journal file.
        path: String,
    },
    /// Host a catalog service on real TCP listeners (`cpw1` protocol)
    /// until drained by a stop file, a `stop` frame, or `--max-secs`.
    Serve {
        /// Service to host.
        service: ServiceKind,
        /// Seed for replication-delay and latency-shaping streams.
        seed: u64,
        /// Base TCP port (region `i` binds `base+i`); 0 = ephemeral.
        base_port: u16,
        /// Multiplier on paper-WAN artificial latency (0 disables).
        latency_scale: f64,
        /// Probability of dropping a response (lossy-WAN emulation).
        drop_prob: f64,
        /// Seeded staleness window: `(replica index, lag millis)`.
        stale: Option<(usize, u64)>,
        /// Graceful-drain trigger file.
        stop_file: Option<String>,
        /// Write `region=addr` lines here once the listeners are bound.
        ready_file: Option<String>,
        /// Safety cap: drain after this many seconds.
        max_secs: Option<u64>,
        /// Dump the server's final metrics registry as JSON to this path.
        metrics_out: Option<String>,
        /// Keyspace shards in the hosted cluster.
        shards: usize,
        /// Event-loop worker threads multiplexing the connections.
        event_loops: usize,
        /// Bounded accept backlog: shed with a `busy` frame above this
        /// many live connections (0 = unbounded).
        max_conns: usize,
        /// Slow-client eviction budget in milliseconds (0 = disabled).
        stall_budget_ms: u64,
        /// Drive the wire-timescale fault plan's crash/recover/brownout
        /// timeline against the hosted replicas (0 = no faults).
        fault_level: u32,
        /// Seed for the fault plan (defaults to the serve seed).
        fault_seed: Option<u64>,
        /// Drive a measured incident timeline (outage-trace JSON)
        /// instead of the synthetic escalation.
        outage_trace: Option<String>,
    },
    /// Interpose deterministic chaos between live probes and a serve's
    /// listeners: per-region proxies execute a fault-plan timeline plus
    /// seeded byte-level injections against the real TCP streams.
    Chaosd {
        /// The upstream serve's ready-file (`region=host:port` lines).
        server_file: String,
        /// Seed for every injection stream.
        seed: u64,
        /// Wire-timescale fault-plan intensity (0 = transparent relay).
        fault_level: u32,
        /// Seed for the fault plan (defaults to `seed`).
        fault_seed: Option<u64>,
        /// Replay a measured incident timeline (outage-trace JSON)
        /// instead of the synthetic escalation.
        outage_trace: Option<String>,
        /// Per-frame probability of a seeded single-bit corruption.
        corrupt: f64,
        /// Per-frame probability of a hard connection reset.
        reset: f64,
        /// Per-frame probability of slow-loris trickle delivery.
        trickle: f64,
        /// Base TCP port for the proxy listeners (0 = ephemeral).
        base_port: u16,
        /// Write proxy `region=addr` lines here once bound (a drop-in
        /// serve ready-file; the upstream's `shards=` line rides along).
        ready_file: Option<String>,
        /// Graceful-drain trigger file.
        stop_file: Option<String>,
        /// Safety cap: drain after this many seconds.
        max_secs: Option<u64>,
    },
    /// Run live probe agents against remote `cpw1` endpoints and feed
    /// the traces through the standard analysis/journal pipeline.
    Probe {
        /// Service the servers host (verified on connect).
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Master seed (per-instance seeds derive like a campaign's).
        seed: u64,
        /// Number of test instances to run.
        tests: u32,
        /// `region=host:port` endpoints, one agent each.
        endpoints: Vec<String>,
        /// Read endpoints from a `serve --ready-file` instead.
        server_file: Option<String>,
        /// Background read period in milliseconds.
        read_ms: u64,
        /// Reads per agent before a Test 2 instance completes.
        reads_target: u32,
        /// Dump the probe metrics registry as JSON to this path.
        metrics_out: Option<String>,
        /// Journal every finished instance to this path (fresh journal).
        journal_out: Option<String>,
        /// Resume from (and keep appending to) this journal.
        resume: Option<String>,
        /// Keyspace key the probe addresses (keyed sharded frames);
        /// `None` speaks the legacy un-keyed protocol.
        key: Option<u32>,
        /// Stream a running anomaly readout to stderr while agents run.
        live: bool,
    },
    /// Closed-loop load generator against one `cpw1` endpoint.
    Load {
        /// `host:port` to load.
        addr: Option<String>,
        /// Read the first endpoint from a `serve --ready-file` instead.
        server_file: Option<String>,
        /// Concurrent connections (multiplexed, not threads).
        connections: usize,
        /// In-flight pipelined requests per connection.
        pipeline: usize,
        /// Sweeper threads the connections are spread over.
        threads: usize,
        /// Keyspace keys the reads cycle through round-robin.
        keys: u32,
        /// Wall-clock duration of the measurement loop in seconds.
        secs: u64,
        /// Warm-up seconds before measurement begins.
        warmup_secs: u64,
        /// Optional total ops/sec pacing target (default: flat out).
        target_ops: Option<u64>,
        /// Dump the load metrics registry as JSON to this path.
        metrics_out: Option<String>,
    },
    /// Coordinate a campaign cell farmed out to `worker` processes over
    /// TCP, journaling every pushed result and merging byte-identically.
    Dispatch {
        /// Service under test.
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Number of instances.
        tests: u32,
        /// Seed.
        seed: u64,
        /// Address to listen on (`host:port`; port 0 = ephemeral).
        addr: Option<String>,
        /// Seconds a granted unit may stay unfinished before re-issue.
        lease_secs: u64,
        /// Write a `dispatch=addr` line here once the listener is bound.
        ready_file: Option<String>,
        /// Journal every pushed record to this path (fresh journal).
        journal_out: Option<String>,
        /// Resume from (and keep appending to) this journal.
        resume: Option<String>,
    },
    /// Pull leased work units from a `dispatch` coordinator, run them
    /// with the ordinary panic-isolated runner, and push results back.
    Worker {
        /// Service under test (must match the coordinator's).
        service: ServiceKind,
        /// Test design (must match the coordinator's).
        kind: TestKind,
        /// Number of instances (must match the coordinator's).
        tests: u32,
        /// Seed (must match the coordinator's).
        seed: u64,
        /// The coordinator's `host:port`.
        addr: Option<String>,
        /// Read the coordinator address from a `dispatch --ready-file`.
        server_file: Option<String>,
        /// Worker id for progress labels.
        worker_id: u32,
    },
    /// List the available service models.
    Services,
    /// Print usage.
    Help,
}

/// Errors produced by parsing or execution.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
conprobe — black-box consistency characterization (DSN'16 reproduction)

USAGE:
  conprobe run --service <svc> [--test 1|2] [--seed N] [--guard]
               [--whitebox] [--timeline] [--json FILE] [--metrics FILE]
  conprobe analyze <trace.json> [--test1]
  conprobe campaign --service <svc> [--test 1|2] [--tests N] [--seed N]
               [--metrics FILE] [--journal FILE | --resume FILE]
  conprobe chaos --service <svc> [--test 1|2] [--seed N] [--levels N]
               [--wire] [--outage-trace FILE]
               [--metrics FILE] [--journal FILE | --resume FILE]
  conprobe trace --service <svc> [--test 1|2] [--seed N]
               [--level debug|info|warn|error] [--target PREFIX] [--cap N]
  conprobe repro [--tests N] [--seed N] [--metrics FILE]
               [--journal FILE | --resume FILE]
  conprobe journal inspect <journal.jsonl>
  conprobe serve --service <svc> [--seed N] [--port BASE]
               [--latency-scale F] [--drop P]
               [--stale-replica I] [--stale-lag-ms N]
               [--shards N] [--event-loops N]
               [--max-conns N] [--stall-budget-ms N]
               [--fault-level N] [--fault-seed N] [--outage-trace FILE]
               [--stop-file FILE] [--ready-file FILE] [--max-secs N]
               [--metrics FILE]
  conprobe chaosd --server-file FILE [--seed N] [--port BASE]
               [--fault-level N] [--fault-seed N] [--outage-trace FILE]
               [--corrupt P] [--reset P] [--trickle P]
               [--ready-file FILE] [--stop-file FILE] [--max-secs N]
  conprobe probe --service <svc> [--test 1|2] [--seed N] [--tests N]
               (--endpoint region=host:port ... | --server-file FILE)
               [--read-ms N] [--reads N] [--key K] [--live]
               [--metrics FILE] [--journal FILE | --resume FILE]
  conprobe load (--addr host:port | --server-file FILE)
               [--connections N] [--pipeline N] [--threads N] [--keys N]
               [--secs N] [--warmup-secs N] [--target-ops N]
               [--metrics FILE]
  conprobe dispatch --service <svc> [--test 1|2] [--tests N] [--seed N]
               (--journal FILE | --resume FILE) [--addr host:port]
               [--lease-secs N] [--ready-file FILE]
  conprobe worker --service <svc> [--test 1|2] [--tests N] [--seed N]
               (--addr host:port | --server-file FILE) [--worker-id N]
  conprobe services
  conprobe help

  <svc>: blogger | gplus | fbfeed | fbgroup | quorum | pbft
  region: oregon | tokyo | ireland | virginia (or OR|JP|IR|VA)

  `serve` hosts a catalog service on one 127.0.0.1 listener per agent
  region, speaking the length-prefixed, checksummed `cpw1` protocol; the
  deterministic replica cores run on wall-clock time, with optional
  artificial WAN latency (--latency-scale, from the paper latency
  matrix), response loss (--drop), and a seeded staleness window
  (--stale-replica/--stale-lag-ms). It drains gracefully — finishing
  whole frames — when --stop-file appears, a client sends `stop`, or
  --max-secs elapses. The hosted cluster shards its keyspace over
  --shards consistent-hash shards served by --event-loops non-blocking
  event-loop workers; the ready file records the shard count. `probe`
  runs the paper's agents for real: skewed local clocks, Cristian sync
  over the wire, the Test 1/2 cadence, and the unmodified checkers on
  the merged trace; --journal/--resume work exactly as in `campaign`;
  --key K pins the probe to one keyspace key (keyed sharded frames)
  and labels the journal cell with the key and owning shard; --live
  merges the agents' operation streams through the incremental checkers
  as they happen, printing a running anomaly readout to stderr (stdout
  and the final batch analysis are unaffected). `load`
  measures sustained closed-loop throughput with latency histograms,
  multiplexing --connections pipelined connections (--pipeline
  in-flight requests each) over --threads sweeper threads, cycling
  reads over --keys keys; measurement starts after --warmup-secs.

  `chaosd` interposes deterministic chaos between live probes and a
  serve's listeners: per-region proxy listeners relay whole cpw1
  frames while a fault plan — the synthetic wire-timescale escalation
  (--fault-level) or a measured incident timeline (--outage-trace
  JSON) — blackholes, delays and drops them per link, and seeded
  per-frame injections flip single bits (--corrupt, rejected by the
  checksummed decoder), reset connections (--reset) or trickle bytes
  (--trickle). Its --ready-file is a drop-in serve ready-file, so
  probes point at the proxies unchanged. `serve` accepts the same
  fault flags and drives the plan's crash/recover/brownout timeline
  against its own replicas: a killed quorum replica rejoins through
  the fenced cpj1 state-transfer protocol, weak-arm replicas rejoin
  cold. Overloaded servers shed new connections past --max-conns with
  a typed `busy` frame (clients back off and retry after the hinted
  wait) and evict clients whose responses stall past
  --stall-budget-ms. `chaos --wire` runs the whole live arm per level
  in one process — server, interposer, fault driver, probe — and
  prints the same anomaly report as the simulated sweep, so sim-vs-
  wire and weak-vs-quorum arms compare directly; with --outage-trace
  both sweep modes replay the trace's timeline instead.

  --metrics dumps the run's metrics registry (counters, gauges,
  histograms across the sim/services/harness/campaign layers) as JSON.
  `trace` prints the structured event log to stderr, one line per event,
  stamped with simulated time. Observability never perturbs the
  simulation: the same seed yields the same trace with it on or off.

  --journal appends one checksummed, fsync'd record per finished test to
  FILE as the campaign runs; --resume recovers FILE (tolerating a
  truncated tail from a crash), re-runs only the missing instances, and
  keeps journaling to the same file. A resumed campaign produces
  byte-identical output to an uninterrupted one with the same seed.

  `dispatch` runs a campaign cell distributed: it leases each instance
  to connecting `worker` processes (started with the identical
  --service/--test/--tests/--seed), journals every pushed result, and —
  once all units land — merges the journal through the ordinary resume
  path, so stdout is byte-identical to `campaign` with the same flags.
  A worker that disconnects or exceeds --lease-secs has its units
  re-issued; duplicate pushes are deduplicated; a worker whose derived
  seeds disagree with a grant refuses it as a configuration mismatch.
";

fn parse_service(s: &str) -> Result<ServiceKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "blogger" => Ok(ServiceKind::Blogger),
        "gplus" | "google+" | "googleplus" => Ok(ServiceKind::GooglePlus),
        "fbfeed" | "feed" => Ok(ServiceKind::FacebookFeed),
        "fbgroup" | "group" => Ok(ServiceKind::FacebookGroup),
        "quorum" => Ok(ServiceKind::Quorum),
        "pbft" => Ok(ServiceKind::Pbft),
        other => Err(CliError(format!("unknown service '{other}'"))),
    }
}

fn parse_region(s: &str) -> Result<Region, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "oregon" | "or" => Ok(Region::Oregon),
        "tokyo" | "jp" => Ok(Region::Tokyo),
        "ireland" | "ir" => Ok(Region::Ireland),
        "virginia" | "va" => Ok(Region::Virginia),
        other => Err(CliError(format!("unknown region '{other}'"))),
    }
}

/// The token `serve --ready-file` writes and `--endpoint` accepts.
fn region_token(r: Region) -> &'static str {
    match r {
        Region::Oregon => "oregon",
        Region::Tokyo => "tokyo",
        Region::Ireland => "ireland",
        Region::Virginia => "virginia",
        Region::Datacenter(_) => "datacenter",
    }
}

/// Parses one `region=host:port` endpoint spec.
fn parse_endpoint(s: &str) -> Result<(Region, std::net::SocketAddr), CliError> {
    let (region, addr) = s
        .split_once('=')
        .ok_or_else(|| CliError(format!("endpoint '{s}' is not region=host:port")))?;
    Ok((parse_region(region)?, addr.parse().map_err(|e| CliError(format!("endpoint '{s}': {e}")))?))
}

fn parse_test(s: &str) -> Result<TestKind, CliError> {
    match s {
        "1" | "test1" => Ok(TestKind::Test1),
        "2" | "test2" => Ok(TestKind::Test2),
        other => Err(CliError(format!("unknown test '{other}' (use 1 or 2)"))),
    }
}

fn parse_level(s: &str) -> Result<Severity, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "debug" => Ok(Severity::Debug),
        "info" => Ok(Severity::Info),
        "warn" => Ok(Severity::Warn),
        "error" => Ok(Severity::Error),
        other => Err(CliError(format!("unknown level '{other}' (use debug|info|warn|error)"))),
    }
}

/// Parses a raw argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut service = None;
    let mut kind = TestKind::Test1;
    let mut seed = 42u64;
    let mut tests: Option<u32> = None;
    let mut levels = 3u32;
    let mut guard = false;
    let mut whitebox = false;
    let mut show_timeline = false;
    let mut json_out = None;
    let mut metrics_out = None;
    let mut journal_out = None;
    let mut resume = None;
    let mut level = Severity::Info;
    let mut target = None;
    let mut cap = 10_000usize;
    let mut positional: Vec<String> = Vec::new();
    let mut test1 = false;
    let mut base_port = 0u16;
    let mut latency_scale = 0.0f64;
    let mut drop_prob = 0.0f64;
    let mut stale_replica: Option<usize> = None;
    let mut stale_lag_ms = 3_000u64;
    let mut stop_file = None;
    let mut ready_file = None;
    let mut max_secs: Option<u64> = None;
    let mut endpoints: Vec<String> = Vec::new();
    let mut server_file = None;
    let mut addr = None;
    let mut read_ms = 30u64;
    let mut reads_target = 30u32;
    let mut connections = 8usize;
    let mut pipeline = 1usize;
    let mut threads = 1usize;
    let mut keys = 1u32;
    let mut secs = 5u64;
    let mut warmup_secs = 0u64;
    let mut target_ops: Option<u64> = None;
    let mut shards = 16usize;
    let mut event_loops = 1usize;
    let mut key: Option<u32> = None;
    let mut lease_secs = 30u64;
    let mut worker_id = 0u32;
    let mut live = false;
    let mut wire = false;
    let mut outage_trace: Option<String> = None;
    let mut fault_level = 0u32;
    let mut fault_seed: Option<u64> = None;
    let mut max_conns = 0usize;
    let mut stall_budget_ms = 0u64;
    let mut corrupt = 0.0f64;
    let mut reset = 0.0f64;
    let mut trickle = 0.0f64;
    fn val<'a>(it: &mut impl Iterator<Item = &'a str>, flag: &str) -> Result<&'a str, CliError> {
        it.next().ok_or_else(|| CliError(format!("{flag} needs a value")))
    }
    fn num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        s.parse().map_err(|e| CliError(format!("{flag}: {e}")))
    }
    while let Some(a) = it.next() {
        match a {
            "--port" => base_port = num(val(&mut it, a)?, a)?,
            "--latency-scale" => latency_scale = num(val(&mut it, a)?, a)?,
            "--drop" => drop_prob = num(val(&mut it, a)?, a)?,
            "--stale-replica" => stale_replica = Some(num(val(&mut it, a)?, a)?),
            "--stale-lag-ms" => stale_lag_ms = num(val(&mut it, a)?, a)?,
            "--stop-file" => stop_file = Some(val(&mut it, a)?.to_string()),
            "--ready-file" => ready_file = Some(val(&mut it, a)?.to_string()),
            "--max-secs" => max_secs = Some(num(val(&mut it, a)?, a)?),
            "--endpoint" => endpoints.push(val(&mut it, a)?.to_string()),
            "--server-file" => server_file = Some(val(&mut it, a)?.to_string()),
            "--addr" => addr = Some(val(&mut it, a)?.to_string()),
            "--read-ms" => read_ms = num(val(&mut it, a)?, a)?,
            "--reads" => reads_target = num(val(&mut it, a)?, a)?,
            "--connections" => connections = num(val(&mut it, a)?, a)?,
            "--pipeline" => pipeline = num(val(&mut it, a)?, a)?,
            "--threads" => threads = num(val(&mut it, a)?, a)?,
            "--keys" => keys = num(val(&mut it, a)?, a)?,
            "--secs" => secs = num(val(&mut it, a)?, a)?,
            "--warmup-secs" => warmup_secs = num(val(&mut it, a)?, a)?,
            "--target-ops" => target_ops = Some(num(val(&mut it, a)?, a)?),
            "--shards" => shards = num(val(&mut it, a)?, a)?,
            "--event-loops" => event_loops = num(val(&mut it, a)?, a)?,
            "--key" => key = Some(num(val(&mut it, a)?, a)?),
            "--lease-secs" => lease_secs = num(val(&mut it, a)?, a)?,
            "--worker-id" => worker_id = num(val(&mut it, a)?, a)?,
            "--live" => live = true,
            "--wire" => wire = true,
            "--outage-trace" => outage_trace = Some(val(&mut it, a)?.to_string()),
            "--fault-level" => fault_level = num(val(&mut it, a)?, a)?,
            "--fault-seed" => fault_seed = Some(num(val(&mut it, a)?, a)?),
            "--max-conns" => max_conns = num(val(&mut it, a)?, a)?,
            "--stall-budget-ms" => stall_budget_ms = num(val(&mut it, a)?, a)?,
            "--corrupt" => corrupt = num(val(&mut it, a)?, a)?,
            "--reset" => reset = num(val(&mut it, a)?, a)?,
            "--trickle" => trickle = num(val(&mut it, a)?, a)?,
            "--service" => {
                service = Some(parse_service(
                    it.next().ok_or(CliError("--service needs a value".into()))?,
                )?)
            }
            "--test" => {
                kind = parse_test(it.next().ok_or(CliError("--test needs a value".into()))?)?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or(CliError("--seed needs a value".into()))?
                    .parse()
                    .map_err(|e| CliError(format!("--seed: {e}")))?
            }
            "--tests" => {
                tests = Some(
                    it.next()
                        .ok_or(CliError("--tests needs a value".into()))?
                        .parse()
                        .map_err(|e| CliError(format!("--tests: {e}")))?,
                )
            }
            "--levels" => {
                levels = it
                    .next()
                    .ok_or(CliError("--levels needs a value".into()))?
                    .parse()
                    .map_err(|e| CliError(format!("--levels: {e}")))?
            }
            "--guard" => guard = true,
            "--whitebox" => whitebox = true,
            "--timeline" => show_timeline = true,
            "--test1" => test1 = true,
            "--json" => {
                json_out =
                    Some(it.next().ok_or(CliError("--json needs a path".into()))?.to_string())
            }
            "--metrics" => {
                metrics_out =
                    Some(it.next().ok_or(CliError("--metrics needs a path".into()))?.to_string())
            }
            "--journal" => {
                journal_out =
                    Some(it.next().ok_or(CliError("--journal needs a path".into()))?.to_string())
            }
            "--resume" => {
                resume =
                    Some(it.next().ok_or(CliError("--resume needs a path".into()))?.to_string())
            }
            "--level" => {
                level = parse_level(it.next().ok_or(CliError("--level needs a value".into()))?)?
            }
            "--target" => {
                target =
                    Some(it.next().ok_or(CliError("--target needs a prefix".into()))?.to_string())
            }
            "--cap" => {
                cap = it
                    .next()
                    .ok_or(CliError("--cap needs a value".into()))?
                    .parse()
                    .map_err(|e| CliError(format!("--cap: {e}")))?
            }
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown flag '{other}'")))
            }
            other => positional.push(other.to_string()),
        }
    }
    if journal_out.is_some() && resume.is_some() {
        return Err(CliError(
            "--journal starts a fresh journal and --resume continues one; pass exactly one".into(),
        ));
    }
    match cmd {
        "run" => Ok(Command::Run {
            service: service.ok_or(CliError("run requires --service".into()))?,
            kind,
            seed,
            guard,
            whitebox,
            show_timeline,
            json_out,
            metrics_out,
        }),
        "analyze" => Ok(Command::Analyze {
            path: positional
                .first()
                .cloned()
                .ok_or(CliError("analyze requires a trace path".into()))?,
            test1,
        }),
        "campaign" => Ok(Command::Campaign {
            service: service.ok_or(CliError("campaign requires --service".into()))?,
            kind,
            tests: tests.unwrap_or(20),
            seed,
            metrics_out,
            journal_out,
            resume,
        }),
        "chaos" => Ok(Command::Chaos {
            service: service.ok_or(CliError("chaos requires --service".into()))?,
            kind,
            seed,
            levels,
            wire,
            outage_trace,
            metrics_out,
            journal_out,
            resume,
        }),
        "trace" => Ok(Command::Trace {
            service: service.ok_or(CliError("trace requires --service".into()))?,
            kind,
            seed,
            level,
            target,
            cap,
        }),
        "repro" => Ok(Command::Repro {
            tests: tests.unwrap_or(20),
            seed,
            metrics_out,
            journal_out,
            resume,
        }),
        "journal" => match positional.first().map(String::as_str) {
            Some("inspect") => Ok(Command::JournalInspect {
                path: positional
                    .get(1)
                    .cloned()
                    .ok_or(CliError("journal inspect requires a journal path".into()))?,
            }),
            _ => Err(CliError("usage: conprobe journal inspect <journal.jsonl>".into())),
        },
        "serve" => Ok(Command::Serve {
            service: service.ok_or(CliError("serve requires --service".into()))?,
            seed,
            base_port,
            latency_scale,
            drop_prob,
            stale: stale_replica.map(|r| (r, stale_lag_ms)),
            stop_file,
            ready_file,
            max_secs,
            metrics_out,
            shards,
            event_loops,
            max_conns,
            stall_budget_ms,
            fault_level,
            fault_seed,
            outage_trace,
        }),
        "chaosd" => Ok(Command::Chaosd {
            server_file: server_file
                .ok_or(CliError("chaosd requires --server-file (a serve ready-file)".into()))?,
            seed,
            fault_level,
            fault_seed,
            outage_trace,
            corrupt,
            reset,
            trickle,
            base_port,
            ready_file,
            stop_file,
            max_secs,
        }),
        "probe" => {
            if endpoints.is_empty() && server_file.is_none() {
                return Err(CliError(
                    "probe requires --endpoint region=host:port (repeatable) or --server-file"
                        .into(),
                ));
            }
            Ok(Command::Probe {
                service: service.ok_or(CliError("probe requires --service".into()))?,
                kind,
                seed,
                tests: tests.unwrap_or(1),
                endpoints,
                server_file,
                read_ms,
                reads_target,
                metrics_out,
                journal_out,
                resume,
                key,
                live,
            })
        }
        "load" => {
            if addr.is_none() && server_file.is_none() {
                return Err(CliError("load requires --addr host:port or --server-file".into()));
            }
            Ok(Command::Load {
                addr,
                server_file,
                connections,
                pipeline,
                threads,
                keys,
                secs,
                warmup_secs,
                target_ops,
                metrics_out,
            })
        }
        "dispatch" => {
            if journal_out.is_none() && resume.is_none() {
                return Err(CliError(
                    "dispatch requires --journal FILE or --resume FILE (the journal is the \
                     medium workers' results merge through)"
                        .into(),
                ));
            }
            Ok(Command::Dispatch {
                service: service.ok_or(CliError("dispatch requires --service".into()))?,
                kind,
                tests: tests.unwrap_or(20),
                seed,
                addr,
                lease_secs,
                ready_file,
                journal_out,
                resume,
            })
        }
        "worker" => {
            if addr.is_none() && server_file.is_none() {
                return Err(CliError("worker requires --addr host:port or --server-file".into()));
            }
            Ok(Command::Worker {
                service: service.ok_or(CliError("worker requires --service".into()))?,
                kind,
                tests: tests.unwrap_or(20),
                seed,
                addr,
                server_file,
                worker_id,
            })
        }
        "services" => Ok(Command::Services),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError(format!("unknown command '{other}'"))),
    }
}

/// The fault plan for one intensity level of the chaos sweep.
///
/// Level 0 is fault-free; each level above it adds one fault class on top
/// of the previous ones and turns the shared knobs up. All windows start
/// ≥ 4 s into the run so clock sync and the synchronized start happen on
/// a healthy network — the faults hit the measured phase (which opens
/// ~2.5 s in), not the harness bootstrap.
///
/// * level ≥ 1 — a global loss burst (`5·level` %, capped at 50 %).
/// * level ≥ 2 — a latency spike on every link touching Tokyo.
/// * level ≥ 3 — a Tokyo↔Ireland link flap plus one crash/restart cycle
///   of replica 1 (skipped — and accounted — on single-replica
///   topologies).
/// * level ≥ 4 — a throttle-storm brownout of replica 0's front door.
pub fn chaos_plan(level: u32, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    if level >= 1 {
        plan.push(FaultEvent::LossBurst {
            scope: LinkScope::All,
            at: SimTime::from_secs(4),
            duration: SimDuration::from_secs(10),
            loss: f64::from(level.min(10)) * 0.05,
        });
    }
    if level >= 2 {
        plan.push(FaultEvent::DegradedLink {
            scope: LinkScope::Touching(Region::Tokyo),
            at: SimTime::from_secs(5),
            duration: SimDuration::from_secs(8),
            extra_base: SimDuration::from_millis(40).saturating_mul(u64::from(level)),
            extra_jitter: SimDuration::from_millis(20),
        });
    }
    if level >= 3 {
        plan.push(FaultEvent::LinkFlap {
            scope: LinkScope::Between(Region::Tokyo, Region::Ireland),
            at: SimTime::from_secs(6),
            down_for: SimDuration::from_secs(2),
            up_for: SimDuration::from_secs(2),
            flaps: level - 2,
        });
        plan.push(FaultEvent::CrashCycle {
            target: 1,
            at: SimTime::from_secs(7),
            down_for: SimDuration::from_secs(4),
            up_for: SimDuration::ZERO,
            cycles: 1,
        });
    }
    if level >= 4 {
        plan.push(FaultEvent::Brownout {
            target: 0,
            at: SimTime::from_secs(8),
            duration: SimDuration::from_secs(5),
            mode: BrownoutMode::ThrottleStorm,
        });
    }
    plan
}

/// The live-path counterpart of [`chaos_plan`] (`chaos --wire`,
/// `chaosd`, `serve --fault-level`): the same fault classes compressed
/// onto a wall-clock timescale one loopback probe instance actually
/// spans. The plan clock starts when the interposer (or server) comes
/// up, so every window sits a few hundred milliseconds in — past the
/// probe's connect/clock-sync phase and inside its measured phase.
///
/// * level ≥ 1 — a latency spike on every link (base grows with level).
/// * level ≥ 2 — a short global loss burst (frames blackholed; the
///   probes' reconnect budget rides it out).
/// * level ≥ 3 — a Tokyo link flap plus one crash/restart cycle of
///   replica 1 (the fenced `cpj1` rejoin path, against live sockets).
/// * level ≥ 4 — a throttle-storm brownout of replica 0.
pub fn wire_chaos_plan(level: u32, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    if level >= 1 {
        plan.push(FaultEvent::DegradedLink {
            scope: LinkScope::All,
            at: SimTime::from_millis(250),
            duration: SimDuration::from_millis(900),
            extra_base: SimDuration::from_millis(4).saturating_mul(u64::from(level)),
            extra_jitter: SimDuration::from_millis(2),
        });
    }
    if level >= 2 {
        plan.push(FaultEvent::LossBurst {
            scope: LinkScope::All,
            at: SimTime::from_millis(400),
            duration: SimDuration::from_millis(250),
            loss: f64::from(level.min(10)) * 0.02,
        });
    }
    if level >= 3 {
        plan.push(FaultEvent::LinkFlap {
            scope: LinkScope::Touching(Region::Tokyo),
            at: SimTime::from_millis(700),
            down_for: SimDuration::from_millis(150),
            up_for: SimDuration::from_millis(150),
            flaps: 1,
        });
        plan.push(FaultEvent::CrashCycle {
            target: 1,
            at: SimTime::from_millis(500),
            down_for: SimDuration::from_millis(300),
            up_for: SimDuration::ZERO,
            cycles: 1,
        });
    }
    if level >= 4 {
        plan.push(FaultEvent::Brownout {
            target: 0,
            at: SimTime::from_millis(900),
            duration: SimDuration::from_millis(400),
            mode: BrownoutMode::ThrottleStorm,
        });
    }
    plan
}

/// Interposer byte-level injections for one wire sweep level: off at
/// level 0 (pure plan replay), then gently escalating per-frame
/// probabilities — a probe instance moves hundreds of frames, so even a
/// few permil forces several corrupted/reset/trickled frames while
/// staying well inside the clients' reconnect budget.
fn wire_inject_profile(level: u32) -> InjectProfile {
    InjectProfile {
        corrupt_prob: f64::from(level) * 0.002,
        reset_prob: f64::from(level) * 0.001,
        trickle_prob: f64::from(level) * 0.004,
        ..InjectProfile::default()
    }
}

/// The fault plan a live command executes: a measured incident timeline
/// when `--outage-trace` is given, the synthetic wire-timescale
/// escalation otherwise.
fn load_fault_plan(
    outage_trace: &Option<String>,
    level: u32,
    seed: u64,
) -> Result<FaultPlan, CliError> {
    match outage_trace {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError(format!("read {path}: {e}")))?;
            FaultPlan::from_outage_trace(&text)
                .map_err(|e| CliError(format!("outage trace {path}: {e}")))
        }
        None => Ok(wire_chaos_plan(level, seed)),
    }
}

/// The simulated chaos sweep (the pre-`--wire` behaviour): one
/// deterministic in-sim test per intensity level, each under
/// [`chaos_plan`] — or, with `--outage-trace`, a single replay of the
/// trace's compiled timeline.
#[allow(clippy::too_many_arguments)]
fn run_sim_chaos_sweep(
    out: &mut String,
    service: ServiceKind,
    kind: TestKind,
    seed: u64,
    levels: u32,
    outage_trace: &Option<String>,
    metrics_out: &Option<String>,
    journal_out: &Option<String>,
    resume: &Option<String>,
) -> Result<(), CliError> {
    let _ = writeln!(out, "{service} {kind} chaos sweep (seed {seed}):");
    // A replayed trace is one fixed timeline, not an escalation — the
    // sweep collapses to a single level.
    let levels = match outage_trace {
        Some(path) => {
            if levels > 0 {
                eprintln!("outage-trace replay of {path}: a single level, --levels ignored");
            }
            0
        }
        None => levels,
    };
    // Chaos always captures service-lifecycle events (crashes,
    // recoveries, state transfers, brownouts) and narrates them on
    // stderr: stdout must stay byte-identical between a fresh
    // sweep and a journal-resumed one, and spliced levels re-run
    // nothing so they have no events to narrate.
    let sink = Some(ObsSink::with_log(
        EventLog::new(4096).with_min_severity(Severity::Info).with_target_prefix("services"),
    ));
    let (journal_file, recovery) = open_journal(journal_out, resume)?;
    let cell = format!("chaos/{}", journal::cell_id(service, kind));
    let recovered = recovery.as_ref().map(|r| r.completed_for(&cell)).unwrap_or_default();
    for level in 0..=levels {
        let mut config = TestConfig::paper(service, kind);
        config.fault_plan = match outage_trace {
            Some(_) => load_fault_plan(outage_trace, level, seed)?,
            None => chaos_plan(level, seed),
        };
        config.obs = sink.clone();
        // The sweep's journal keys each level as an instance; a
        // recovered level is spliced only when its seed matches.
        let spliced = recovered
            .get(&level)
            .filter(|(rseed, _)| *rseed == seed)
            .and_then(|(_, payload)| journal::result_from_json(&config, payload).ok());
        let r = match spliced {
            Some(r) => {
                eprintln!("  level {level} spliced from the journal");
                r
            }
            None => {
                let r = run_one_test(&config, seed);
                if let Some(sink) = &sink {
                    for e in sink.log.drain() {
                        eprintln!("  level {level}: {}", e.render());
                    }
                }
                if let Some(j) = &journal_file {
                    if let Err(e) = j.append_completed(&cell, level, seed, &r) {
                        eprintln!("journal: append failed for {cell} level {level}: {e}");
                    }
                }
                r
            }
        };
        let ledger = &r.fault_ledger;
        let rpc: u64 = ledger.agent_rpc.iter().map(|s| s.retransmits).sum();
        let anomalies: usize = AnomalyKind::ALL.iter().map(|k| r.analysis.count(*k)).sum();
        let _ = writeln!(
            out,
            "  level {level}: {} in {:>5.1}s; {anomalies} anomaly observation(s); \
             net {}/{}/{} blocked/dropped/delayed; {} service action(s) \
             ({} skipped); {rpc} retransmit(s)",
            if r.salvaged {
                "SALVAGED"
            } else if r.completed {
                "completed"
            } else {
                "TIMED OUT"
            },
            r.duration_secs,
            ledger.net.blocked,
            ledger.net.dropped,
            ledger.net.delayed,
            ledger.actions.len(),
            ledger.skipped_actions,
        );
    }
    if let (Some(sink), Some(path)) = (&sink, metrics_out) {
        write_metrics(sink, path, out)?;
    }
    Ok(())
}

/// The live half of the chaos sweep (`chaos --wire`): for each level a
/// real loopback [`WireServer`] hosts the service, a [`ChaosProxy`]
/// interposes on every agent↔replica link executing the level's plan
/// plus seeded byte-level injections, a fault driver crashes/rejoins
/// replicas on the same timeline, and the ordinary live probe runs
/// through the proxies. Both sweep halves share the fault vocabulary
/// and the unmodified `analyze()`, so sim-vs-wire and weak-vs-quorum
/// arms compare level by level.
#[allow(clippy::too_many_arguments)]
fn run_wire_chaos_sweep(
    out: &mut String,
    service: ServiceKind,
    kind: TestKind,
    seed: u64,
    levels: u32,
    outage_trace: &Option<String>,
    journal_out: &Option<String>,
    resume: &Option<String>,
) -> Result<(), CliError> {
    let _ = writeln!(out, "{service} {kind} wire chaos sweep (seed {seed}):");
    let (journal_file, recovery) = open_journal(journal_out, resume)?;
    let cell = journal::wire_chaos_cell_id(service, kind);
    let recovered = recovery.as_ref().map(|r| r.completed_for(&cell)).unwrap_or_default();
    let root = SimRng::new(seed);
    for level in 0..=levels {
        // With an outage trace the network/service timeline is the
        // measured incident at every level; `--levels` still scales the
        // interposer's byte-level injections on top of it.
        let plan = match outage_trace {
            Some(_) => load_fault_plan(outage_trace, level, seed)?,
            None => wire_chaos_plan(level, seed),
        };
        let inst_seed = root.split_indexed("wire-chaos", u64::from(level)).seed();
        // The analysis config a spliced level is re-checked under; the
        // live arm serves one listener per agent region.
        let mut analysis_config = TestConfig::paper(service, kind);
        analysis_config.agent_regions = Region::AGENTS.to_vec();
        let spliced = recovered
            .get(&level)
            .filter(|(rseed, _)| *rseed == inst_seed)
            .and_then(|(_, payload)| journal::result_from_json(&analysis_config, payload).ok());
        let r = match spliced {
            Some(r) => {
                eprintln!("  level {level} spliced from the journal");
                r
            }
            None => {
                let (r, ledger) = run_wire_chaos_level(
                    service,
                    kind,
                    seed,
                    level,
                    inst_seed,
                    &plan,
                    wire_inject_profile(level),
                )?;
                // Interposer tallies are wall-timing-dependent, so they
                // narrate on stderr; stdout stays resume-stable.
                eprintln!(
                    "  level {level}: interposer forwarded {}, blocked {}, dropped {}, \
                     delayed {}, corrupted {}, reset {}, trickled {}",
                    ledger.forwarded,
                    ledger.blocked,
                    ledger.dropped,
                    ledger.delayed,
                    ledger.corrupted,
                    ledger.resets,
                    ledger.trickled,
                );
                if let Some(j) = &journal_file {
                    if let Err(e) = j.append_completed(&cell, level, inst_seed, &r) {
                        eprintln!("journal: append failed for {cell} level {level}: {e}");
                    }
                }
                r
            }
        };
        let anomalies: usize = AnomalyKind::ALL.iter().map(|k| r.analysis.count(*k)).sum();
        let _ = writeln!(
            out,
            "  level {level}: {}; {} write(s); {anomalies} anomaly observation(s)",
            if r.salvaged {
                "SALVAGED"
            } else if r.completed {
                "completed"
            } else {
                "INCOMPLETE"
            },
            r.writes_total,
        );
    }
    Ok(())
}

/// One wire sweep level: a loopback server, the chaos interposer in
/// front of every listener, the fault driver replaying the plan's
/// service actions against the live replicas, and a probe instance
/// pointed at the proxies.
fn run_wire_chaos_level(
    service: ServiceKind,
    kind: TestKind,
    seed: u64,
    level: u32,
    inst_seed: u64,
    plan: &FaultPlan,
    inject: InjectProfile,
) -> Result<(TestResult, ChaosLedger), CliError> {
    let server = WireServer::start(&ServeConfig::loopback(service, seed))
        .map_err(|e| CliError(format!("wire chaos serve: {e}")))?;
    let targets: Vec<ChaosTarget> = server
        .addrs()
        .iter()
        .map(|&(region, addr)| ChaosTarget { region, replica_region: region, addr })
        .collect();
    let chaos_config = ChaosConfig {
        seed: seed ^ (u64::from(level) << 32),
        plan: plan.clone(),
        inject,
        base_port: 0,
    };
    let proxy = ChaosProxy::start(&chaos_config, &targets)
        .map_err(|e| CliError(format!("wire chaos interposer: {e}")))?;
    let mut pc = ProbeConfig::loopback(service, kind, proxy.addrs().to_vec(), inst_seed);
    // A blackholed response stalls a read until the socket times out; a
    // short timeout turns each stall into a quick reconnect-and-resend
    // instead of a multi-second hang.
    pc.timeout = Duration::from_millis(1000);
    let probe_res = std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            drive_service_actions(&server, plan, |line| eprintln!("  level {level}: {line}"))
        });
        let res = run_probe(&pc);
        server.request_stop();
        let _ = driver.join();
        res
    });
    proxy.request_stop();
    let ledger = proxy.join();
    let _ = server.join();
    let r = probe_res.map_err(|e| CliError(format!("wire chaos probe: {e}")))?;
    Ok((r, ledger))
}

fn report_analysis(
    out: &mut String,
    analysis: &conprobe_core::TestAnalysis<PostId>,
    trace: &TestTrace<PostId>,
    show_timeline: bool,
) {
    let _ =
        writeln!(out, "operations: {} writes, {} reads", trace.write_count(), trace.read_count());
    for kind in AnomalyKind::ALL {
        let n = analysis.count(kind);
        if n > 0 {
            let _ = writeln!(out, "  {kind}: {n} observation(s)");
        }
    }
    if analysis.is_clean() {
        let _ = writeln!(out, "  no anomalies");
    }
    let _ = writeln!(out, "{}", Verdict::from_analysis(analysis));
    if show_timeline {
        let _ = writeln!(out, "\n{}", timeline::render(trace, &analysis.observations, 72));
    }
}

/// A metrics-only sink for `--metrics` runs (no event log: the registry
/// is the product, and counters/gauges/histograms are cheap everywhere).
fn metrics_sink() -> ObsSink {
    ObsSink::default()
}

/// Writes the sink's registry dump to `path` and notes it in `out`.
fn write_metrics(sink: &ObsSink, path: &str, out: &mut String) -> Result<(), CliError> {
    let json = sink.metrics.to_json().to_pretty();
    crate::fsio::write_atomic(path, json).map_err(|e| CliError(format!("write {path}: {e}")))?;
    let _ = writeln!(out, "metrics written to {path}");
    Ok(())
}

/// Opens the journal implied by `--journal` (fresh) or `--resume`
/// (recover + continue). Recovery diagnostics go to stderr so stdout
/// stays byte-comparable between resumed and uninterrupted runs.
fn open_journal(
    journal_out: &Option<String>,
    resume: &Option<String>,
) -> Result<(Option<Journal>, Option<Recovery>), CliError> {
    match (journal_out, resume) {
        (None, None) => Ok((None, None)),
        (Some(path), None) => {
            let j = Journal::create(path).map_err(|e| CliError(format!("journal {path}: {e}")))?;
            Ok((Some(j), None))
        }
        (_, Some(path)) => {
            let (j, r) =
                Journal::resume(path).map_err(|e| CliError(format!("resume {path}: {e}")))?;
            if let Some(tail) = &r.tail {
                eprintln!("journal {path}: {tail}");
            }
            if r.duplicates > 0 {
                eprintln!("journal {path}: {} superseded duplicate record(s)", r.duplicates);
            }
            eprintln!("journal {path}: recovered {} record(s); continuing", r.records.len());
            Ok((Some(j), Some(r)))
        }
    }
}

/// Test hook shared with CI's kill-and-resume drill:
/// `CONPROBE_INJECT_PANIC=i,j,…` makes the campaign workers for those
/// instance indices panic (each is quarantined, not fatal).
fn injected_panics() -> Vec<u32> {
    std::env::var("CONPROBE_INJECT_PANIC")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_default()
}

/// Appends quarantine lines for crashed instances (stdout — a campaign
/// with quarantined tests must say so in its report).
fn report_crashed(out: &mut String, crashed: &[conprobe_harness::campaign::CrashedInstance]) {
    for c in crashed {
        let _ = writeln!(
            out,
            "  QUARANTINED instance {} (seed {:#x}): worker panicked: {}",
            c.index, c.seed, c.panic
        );
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Services => {
            for s in ServiceKind::CATALOG {
                let topo = conprobe_services::catalog::topology(s);
                let _ = writeln!(
                    out,
                    "{:<10} — {} replica(s): {}",
                    s.name(),
                    topo.replicas.len(),
                    topo.replicas.iter().map(|(r, _)| r.to_string()).collect::<Vec<_>>().join(", ")
                );
            }
        }
        Command::Run {
            service,
            kind,
            seed,
            guard,
            whitebox,
            show_timeline,
            json_out,
            metrics_out,
        } => {
            let mut config = TestConfig::paper(service, kind);
            config.use_guard = guard;
            if whitebox {
                config.whitebox_period = Some(SimDuration::from_millis(100));
            }
            let sink = metrics_out.as_ref().map(|_| metrics_sink());
            config.obs = sink.clone();
            let r = run_one_test(&config, seed);
            let _ = writeln!(
                out,
                "{service} {kind} (seed {seed}): {} in {:.1}s",
                if r.completed { "completed" } else { "TIMED OUT" },
                r.duration_secs
            );
            report_analysis(&mut out, &r.analysis, &r.trace, show_timeline);
            if let Some(report) = &r.whitebox {
                let _ = writeln!(
                    out,
                    "white-box: {} samples over {} replicas; true content divergence: {}, \
                     true order divergence: {}",
                    report.samples,
                    report.replicas,
                    report.any_true_content_divergence(),
                    report.any_true_order_divergence()
                );
            }
            if let Some(path) = json_out {
                let json = ToJson::to_json(&r.trace).to_pretty();
                crate::fsio::write_atomic(&path, json)
                    .map_err(|e| CliError(format!("write {path}: {e}")))?;
                let _ = writeln!(out, "trace written to {path}");
            }
            if let (Some(sink), Some(path)) = (&sink, &metrics_out) {
                write_metrics(sink, path, &mut out)?;
            }
        }
        Command::Analyze { path, test1 } => {
            let json = std::fs::read_to_string(&path)
                .map_err(|e| CliError(format!("read {path}: {e}")))?;
            let doc =
                conprobe_json::parse(&json).map_err(|e| CliError(format!("parse {path}: {e}")))?;
            let trace: TestTrace<PostId> =
                FromJson::from_json(&doc).map_err(|e| CliError(format!("parse {path}: {e}")))?;
            let config = if test1 {
                CheckerConfig {
                    wfr_mode: WfrMode::TriggerPairs(test1_trigger_pairs(3)),
                    compute_windows: true,
                }
            } else {
                CheckerConfig::default()
            };
            let analysis = analyze(&trace, &config);
            let _ = writeln!(out, "analyzed {path}:");
            report_analysis(&mut out, &analysis, &trace, true);
        }
        Command::Chaos {
            service,
            kind,
            seed,
            levels,
            wire,
            outage_trace,
            metrics_out,
            journal_out,
            resume,
        } => {
            if wire {
                if metrics_out.is_some() {
                    return Err(CliError(
                        "chaos --wire has no metrics registry to dump; drop --metrics".into(),
                    ));
                }
                run_wire_chaos_sweep(
                    &mut out,
                    service,
                    kind,
                    seed,
                    levels,
                    &outage_trace,
                    &journal_out,
                    &resume,
                )?;
            } else {
                run_sim_chaos_sweep(
                    &mut out,
                    service,
                    kind,
                    seed,
                    levels,
                    &outage_trace,
                    &metrics_out,
                    &journal_out,
                    &resume,
                )?;
            }
        }
        Command::Campaign { service, kind, tests, seed, metrics_out, journal_out, resume } => {
            let mut config =
                conprobe_harness::CampaignConfig::paper(service, kind, tests).with_seed(seed);
            let sink = metrics_out.as_ref().map(|_| metrics_sink());
            config.test.obs = sink.clone();
            config.inject_panic = injected_panics();
            let (journal_file, recovery) = open_journal(&journal_out, &resume)?;
            // Progress to stderr (stdout carries the report): completed
            // count and instantaneous throughput, overwritten in place.
            let started = std::time::Instant::now();
            let progress = move |done: usize, total: usize| {
                let rate = done as f64 / started.elapsed().as_secs_f64().max(1e-9);
                eprint!("\r  {done}/{total} tests ({rate:.1} tests/sec)");
                if done == total {
                    eprintln!();
                }
            };
            let cell = journal::cell_id(service, kind);
            let result = conprobe_harness::campaign::run_campaign_journaled(
                &config,
                Some(&progress),
                &cell,
                journal_file.as_ref(),
                recovery.as_ref(),
            );
            if result.resumed > 0 {
                eprintln!("  {} instance(s) spliced from the journal", result.resumed);
            }
            let _ = writeln!(
                out,
                "{service} {kind} × {tests}: {}/{} completed, {} reads, {} writes",
                result.completed(),
                tests,
                result.total_reads(),
                result.total_writes()
            );
            report_crashed(&mut out, &result.crashed);
            for kind in AnomalyKind::ALL {
                let p = stats::prevalence(&result.results, kind);
                if p > 0.0 {
                    let _ = writeln!(out, "  {kind:<22} {p:>5.1}% of tests");
                }
            }
            if let (Some(sink), Some(path)) = (&sink, &metrics_out) {
                write_metrics(sink, path, &mut out)?;
            }
        }
        Command::Trace { service, kind, seed, level, target, cap } => {
            let mut log = EventLog::new(cap).with_min_severity(level);
            if let Some(prefix) = &target {
                log = log.with_target_prefix(prefix.clone());
            }
            let sink = ObsSink::with_log(log);
            let mut config = TestConfig::paper(service, kind);
            config.obs = Some(sink.clone());
            let r = run_one_test(&config, seed);
            let events = sink.log.drain();
            for e in &events {
                eprintln!("{}", e.render());
            }
            let _ = writeln!(
                out,
                "{service} {kind} (seed {seed}): {} in {:.1}s; {} event(s) at {level} or \
                 above{} ({} evicted)",
                if r.completed { "completed" } else { "TIMED OUT" },
                r.duration_secs,
                events.len(),
                target.map(|t| format!(" under '{t}'")).unwrap_or_default(),
                sink.log.evicted(),
            );
            report_analysis(&mut out, &r.analysis, &r.trace, false);
        }
        Command::Repro { tests, seed, metrics_out, journal_out, resume } => {
            let sink = metrics_out.as_ref().map(|_| metrics_sink());
            let (journal_file, recovery) = open_journal(&journal_out, &resume)?;
            let inject = injected_panics();
            let _ = writeln!(out, "mini-study: {tests} instance(s) per cell (seed {seed})");
            let _ = writeln!(
                out,
                "  {:<10} {:<6} {:>10} {:>8} {:>8}",
                "service", "test", "completed", "reads", "writes"
            );
            let mut all: Vec<(ServiceKind, Vec<conprobe_harness::runner::TestResult>)> = Vec::new();
            for service in ServiceKind::ALL {
                let mut rows = Vec::new();
                for kind in [TestKind::Test1, TestKind::Test2] {
                    let mut config = conprobe_harness::CampaignConfig::paper(service, kind, tests);
                    config.seed ^= seed;
                    config.test.obs = sink.clone();
                    config.inject_panic = inject.clone();
                    let cell = journal::cell_id(service, kind);
                    let result = conprobe_harness::campaign::run_campaign_journaled(
                        &config,
                        None,
                        &cell,
                        journal_file.as_ref(),
                        recovery.as_ref(),
                    );
                    if result.resumed > 0 {
                        eprintln!(
                            "  {cell}: {} instance(s) spliced from the journal",
                            result.resumed
                        );
                    }
                    let _ = writeln!(
                        out,
                        "  {:<10} {:<6} {:>6}/{:<3} {:>8} {:>8}",
                        service.name(),
                        kind.to_string(),
                        result.completed(),
                        tests,
                        result.total_reads(),
                        result.total_writes()
                    );
                    report_crashed(&mut out, &result.crashed);
                    rows.extend(result.results);
                }
                all.push((service, rows));
            }
            let _ = writeln!(out, "anomaly prevalence (% of tests, both test kinds pooled):");
            for (service, rows) in &all {
                let mut cells = Vec::new();
                for kind in AnomalyKind::ALL {
                    let p = stats::prevalence(rows, kind);
                    if p > 0.0 {
                        cells.push(format!("{}={p:.1}%", kind.short()));
                    }
                }
                let _ = writeln!(
                    out,
                    "  {:<10} {}",
                    service.name(),
                    if cells.is_empty() { "clean".to_string() } else { cells.join(" ") }
                );
            }
            if let (Some(sink), Some(path)) = (&sink, &metrics_out) {
                write_metrics(sink, path, &mut out)?;
            }
        }
        Command::JournalInspect { path } => {
            let recovery = Journal::recover(&path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let _ = writeln!(
                out,
                "{path}: {} record(s), {} superseded duplicate(s)",
                recovery.total_records, recovery.duplicates
            );
            match &recovery.tail {
                Some(t) => {
                    let _ = writeln!(out, "  tail: {t}");
                }
                None => {
                    let _ = writeln!(out, "  tail: clean");
                }
            }
            for cell in journal::summarize(&recovery) {
                let _ = writeln!(
                    out,
                    "  {:<20} {} completed, {} crashed (max instance {})",
                    cell.cell, cell.completed, cell.crashed, cell.max_instance
                );
            }
            for (key, panic) in recovery.crashed() {
                let _ = writeln!(
                    out,
                    "  crashed: {} instance {} (seed {:#x}): {panic}",
                    key.cell, key.instance, key.seed
                );
            }
        }
        Command::Serve {
            service,
            seed,
            base_port,
            latency_scale,
            drop_prob,
            stale,
            stop_file,
            ready_file,
            max_secs,
            metrics_out,
            shards,
            event_loops,
            max_conns,
            stall_budget_ms,
            fault_level,
            fault_seed,
            outage_trace,
        } => {
            let plan = load_fault_plan(&outage_trace, fault_level, fault_seed.unwrap_or(seed))?;
            if !plan.network_effects().is_empty() {
                eprintln!(
                    "note: the plan's {} network effect(s) need the chaosd interposer; \
                     serve executes service actions only",
                    plan.network_effects().len()
                );
            }
            let config = ServeConfig {
                kind: service,
                seed,
                stale_window: stale.map(|(replica, lag_ms)| StaleWindow {
                    replica,
                    lag_nanos: lag_ms * 1_000_000,
                }),
                latency_scale,
                drop_prob,
                base_port,
                stop_file: stop_file.map(Into::into),
                shards,
                event_loops,
                max_connections: max_conns,
                stall_budget: Duration::from_millis(stall_budget_ms),
            };
            let server = WireServer::start(&config).map_err(|e| CliError(format!("serve: {e}")))?;
            let mut lines = String::new();
            for (region, addr) in server.addrs() {
                let _ = writeln!(lines, "{}={addr}", region_token(*region));
            }
            // Probes read the shard count back to label keyed cells;
            // `resolve_endpoints` skips this line.
            let _ = writeln!(lines, "shards={}", server.shard_count());
            eprint!("serving {service} (seed {seed}) on:\n{lines}");
            if let Some(path) = &ready_file {
                crate::fsio::write_atomic(path, &lines)
                    .map_err(|e| CliError(format!("write {path}: {e}")))?;
                eprintln!("endpoints written to {path}");
            }
            let started = std::time::Instant::now();
            std::thread::scope(|scope| {
                // The fault driver replays the plan's crash/recover/
                // brownout timeline against the live replicas while the
                // main thread watches for the drain triggers; a drain
                // makes the driver bail out at its next 20 ms slice.
                if !plan.service_actions().is_empty() {
                    scope.spawn(|| {
                        let n = drive_service_actions(&server, &plan, |line| {
                            eprintln!("fault: {line}")
                        });
                        eprintln!("fault plan drained: {n} service action(s) executed");
                    });
                }
                while !server.stopping() {
                    if let Some(cap) = max_secs {
                        if started.elapsed() >= Duration::from_secs(cap) {
                            server.request_stop();
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            });
            let metrics_json = server.join();
            let _ =
                writeln!(out, "{service} drained after {:.1}s", started.elapsed().as_secs_f64());
            if let Some(path) = &metrics_out {
                crate::fsio::write_atomic(path, &metrics_json)
                    .map_err(|e| CliError(format!("write {path}: {e}")))?;
                let _ = writeln!(out, "metrics written to {path}");
            }
        }
        Command::Chaosd {
            server_file,
            seed,
            fault_level,
            fault_seed,
            outage_trace,
            corrupt,
            reset,
            trickle,
            base_port,
            ready_file,
            stop_file,
            max_secs,
        } => {
            let upstream = resolve_endpoints(&[], &Some(server_file.clone()))?;
            let shards = resolve_shard_count(&Some(server_file.clone()))?;
            let plan = load_fault_plan(&outage_trace, fault_level, fault_seed.unwrap_or(seed))?;
            if !plan.service_actions().is_empty() {
                eprintln!(
                    "note: the plan's {} service action(s) need `serve --fault-level`; \
                     chaosd injects network effects only",
                    plan.service_actions().len()
                );
            }
            let targets: Vec<ChaosTarget> = upstream
                .iter()
                .map(|&(region, addr)| ChaosTarget { region, replica_region: region, addr })
                .collect();
            let config = ChaosConfig {
                seed,
                plan,
                inject: InjectProfile {
                    corrupt_prob: corrupt,
                    reset_prob: reset,
                    trickle_prob: trickle,
                    ..InjectProfile::default()
                },
                base_port,
            };
            let proxy = ChaosProxy::start(&config, &targets)
                .map_err(|e| CliError(format!("chaosd: {e}")))?;
            let mut lines = String::new();
            for (region, addr) in proxy.addrs() {
                let _ = writeln!(lines, "{}={addr}", region_token(*region));
            }
            if let Some(n) = shards {
                // Pass the upstream shard count through so probes pointed
                // at the interposer still label keyed cells correctly.
                let _ = writeln!(lines, "shards={n}");
            }
            eprint!("chaos interposer (seed {seed}) on:\n{lines}");
            if let Some(path) = &ready_file {
                crate::fsio::write_atomic(path, &lines)
                    .map_err(|e| CliError(format!("write {path}: {e}")))?;
                eprintln!("endpoints written to {path}");
            }
            let started = std::time::Instant::now();
            loop {
                if let Some(cap) = max_secs {
                    if started.elapsed() >= Duration::from_secs(cap) {
                        break;
                    }
                }
                if let Some(f) = &stop_file {
                    if std::path::Path::new(f).exists() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            proxy.request_stop();
            let ledger = proxy.join();
            let _ = writeln!(
                out,
                "chaosd drained after {:.1}s: {} forwarded, {} blocked, {} dropped, \
                 {} delayed, {} corrupted, {} reset, {} trickled",
                started.elapsed().as_secs_f64(),
                ledger.forwarded,
                ledger.blocked,
                ledger.dropped,
                ledger.delayed,
                ledger.corrupted,
                ledger.resets,
                ledger.trickled
            );
        }
        Command::Probe {
            service,
            kind,
            seed,
            tests,
            endpoints,
            server_file,
            read_ms,
            reads_target,
            metrics_out,
            journal_out,
            resume,
            key,
            live,
        } => {
            let endpoints = resolve_endpoints(&endpoints, &server_file)?;
            let _ = writeln!(
                out,
                "{service} {kind} live probe × {tests} (seed {seed}): {} agent(s)",
                endpoints.len()
            );
            let metrics = metrics_out.as_ref().map(|_| MetricsRegistry::new());
            let (journal_file, recovery) = open_journal(&journal_out, &resume)?;
            // A keyed probe addresses one logical object; the cell label
            // records which key and which shard owns it (from the serve
            // ready-file's `shards=` line, defaulting to the serve
            // default) so journals from different placements never mix.
            let cell = match key {
                Some(k) => {
                    let shards = resolve_shard_count(&server_file)?.unwrap_or(16);
                    let shard = conprobe_services::ShardRing::new(shards).shard_for_key(k);
                    format!("wire/{}/k{k}@s{shard}", journal::cell_id(service, kind))
                }
                None => format!("wire/{}", journal::cell_id(service, kind)),
            };
            let recovered = recovery.as_ref().map(|r| r.completed_for(&cell)).unwrap_or_default();
            let root = SimRng::new(seed);
            let mut analysis_config = TestConfig::paper(service, kind);
            analysis_config.agent_regions = endpoints.iter().map(|(r, _)| *r).collect();
            let mut results = Vec::new();
            for i in 0..tests {
                let inst_seed = root.split_indexed("test", u64::from(i)).seed();
                // Splice a journaled instance only when its seed matches
                // the freshly derived one — same rule as `campaign`.
                let spliced = recovered.get(&i).filter(|(rseed, _)| *rseed == inst_seed).and_then(
                    |(_, payload)| journal::result_from_json(&analysis_config, payload).ok(),
                );
                let r = match spliced {
                    Some(r) => {
                        eprintln!("  instance {i} spliced from the journal");
                        r
                    }
                    None => {
                        let mut pc =
                            ProbeConfig::loopback(service, kind, endpoints.clone(), inst_seed);
                        pc.read_period = Duration::from_millis(read_ms);
                        pc.slow_period = Duration::from_millis(read_ms * 2);
                        pc.reads_target = reads_target;
                        pc.fast_reads = reads_target / 2;
                        pc.key = key;
                        let r = if live {
                            // The tap feeds a streaming analyzer on a
                            // monitor thread; its readout goes to stderr
                            // (stdout must stay byte-identical to a
                            // tap-less run).
                            let (tx, rx) = std::sync::mpsc::channel();
                            let agents = endpoints.len();
                            let cc = checker_config_for(&analysis_config);
                            let monitor = std::thread::spawn(move || live_monitor(rx, agents, cc));
                            let res = run_probe_with_live(&pc, Some(tx));
                            match monitor.join() {
                                Ok(analysis) => {
                                    let total: usize =
                                        AnomalyKind::ALL.iter().map(|k| analysis.count(*k)).sum();
                                    eprintln!(
                                        "  instance {i}: live analysis finished: {total} \
                                         anomaly observation(s)"
                                    );
                                }
                                Err(_) => eprintln!("  instance {i}: live monitor panicked"),
                            }
                            res.map_err(|e| CliError(format!("probe: {e}")))?
                        } else {
                            run_probe(&pc).map_err(|e| CliError(format!("probe: {e}")))?
                        };
                        if let Some(j) = &journal_file {
                            if let Err(e) = j.append_completed(&cell, i, inst_seed, &r) {
                                eprintln!("journal: append failed for {cell} instance {i}: {e}");
                            }
                        }
                        r
                    }
                };
                // Timing-dependent figures go to stderr; stdout stays
                // grep/diff-stable for scripted runs.
                let max_err = r.clock_error_nanos.iter().max().copied().unwrap_or(0);
                eprintln!(
                    "  instance {i}: {:.1}s, max clock error {:.2} ms",
                    r.duration_secs,
                    max_err as f64 / 1e6
                );
                for h in r.agent_health.iter().filter(|h| h.quarantined) {
                    eprintln!(
                        "  instance {i}: agent {} QUARANTINED ({}); partial trace salvaged",
                        h.agent_index,
                        if h.log_collected { "some records kept" } else { "no records" },
                    );
                }
                let anomalies: usize = AnomalyKind::ALL.iter().map(|k| r.analysis.count(*k)).sum();
                let _ = writeln!(
                    out,
                    "  instance {i}: {}; {} writes; {anomalies} anomaly observation(s)",
                    if r.completed { "completed" } else { "INCOMPLETE" },
                    r.writes_total,
                );
                if let Some(m) = &metrics {
                    m.counter("wire.probe.instances").inc();
                    m.counter("wire.probe.writes").add(u64::from(r.writes_total));
                    m.counter("wire.probe.reads")
                        .add(r.reads_per_agent.iter().map(|&n| u64::from(n)).sum());
                    let bounds = conprobe_obs::latency_bounds_nanos();
                    let h = m.histogram("wire.probe.clock_error_nanos", &bounds);
                    for e in &r.clock_error_nanos {
                        h.record(e.unsigned_abs());
                    }
                }
                results.push(r);
            }
            // The deterministic section: anomaly counts across instances,
            // every kind always listed (CI diffs this block verbatim).
            let _ = writeln!(out, "anomaly table:");
            for kind in AnomalyKind::ALL {
                let observations: usize = results.iter().map(|r| r.analysis.count(kind)).sum();
                let instances = results.iter().filter(|r| r.analysis.has(kind)).count();
                let name = kind.to_string();
                let _ = writeln!(
                    out,
                    "  {name:<22} {instances}/{} instance(s), {observations} observation(s)",
                    results.len()
                );
            }
            if let (Some(m), Some(path)) = (&metrics, &metrics_out) {
                let json = m.to_json().to_pretty();
                crate::fsio::write_atomic(path, json)
                    .map_err(|e| CliError(format!("write {path}: {e}")))?;
                let _ = writeln!(out, "metrics written to {path}");
            }
        }
        Command::Dispatch {
            service,
            kind,
            tests,
            seed,
            addr,
            lease_secs,
            ready_file,
            journal_out,
            resume,
        } => {
            let mut config =
                conprobe_harness::CampaignConfig::paper(service, kind, tests).with_seed(seed);
            config.inject_panic = injected_panics();
            let (journal_file, recovery) = open_journal(&journal_out, &resume)?;
            let journal_file =
                journal_file.ok_or(CliError("dispatch requires a journal".into()))?;
            let cell = journal::cell_id(service, kind);
            let listen: std::net::SocketAddr = match &addr {
                Some(a) => a.parse().map_err(|e| CliError(format!("--addr '{a}': {e}")))?,
                None => std::net::SocketAddr::from(([127, 0, 0, 1], 0)),
            };
            let dcfg = DispatchConfig {
                config,
                cell: cell.clone(),
                addr: listen,
                lease_timeout: Duration::from_secs(lease_secs),
            };
            // Same stderr gauge as `campaign` (stdout carries the report,
            // and must stay byte-comparable to a single-process run).
            let started = std::time::Instant::now();
            let progress = move |done: usize, total: usize| {
                let rate = done as f64 / started.elapsed().as_secs_f64().max(1e-9);
                eprint!("\r  {done}/{total} tests ({rate:.1} tests/sec)");
                if done == total {
                    eprintln!();
                }
            };
            let mut on_ready = |bound: std::net::SocketAddr| {
                eprintln!("dispatching {cell} × {tests} on {bound}");
                if let Some(path) = &ready_file {
                    match crate::fsio::write_atomic(path, format!("dispatch={bound}\n")) {
                        Ok(()) => eprintln!("address written to {path}"),
                        Err(e) => eprintln!("write {path}: {e}"),
                    }
                }
            };
            let (result, stats) = run_dispatch(
                &dcfg,
                journal_file,
                recovery.as_ref(),
                &mut on_ready,
                Some(&progress),
            )
            .map_err(|e| CliError(format!("dispatch: {e}")))?;
            if result.resumed > 0 {
                eprintln!("  {} instance(s) spliced from the journal", result.resumed);
            }
            eprintln!(
                "  {} worker connection(s), {} lease(s) re-issued",
                stats.connections, stats.reissued
            );
            let _ = writeln!(
                out,
                "{service} {kind} × {tests}: {}/{} completed, {} reads, {} writes",
                result.completed(),
                tests,
                result.total_reads(),
                result.total_writes()
            );
            report_crashed(&mut out, &result.crashed);
            for kind in AnomalyKind::ALL {
                let p = stats::prevalence(&result.results, kind);
                if p > 0.0 {
                    let _ = writeln!(out, "  {kind:<22} {p:>5.1}% of tests");
                }
            }
        }
        Command::Worker { service, kind, tests, seed, addr, server_file, worker_id } => {
            let mut config =
                conprobe_harness::CampaignConfig::paper(service, kind, tests).with_seed(seed);
            config.inject_panic = injected_panics();
            let target = resolve_dispatch_addr(&addr, &server_file)?;
            let wcfg = WorkerConfig {
                addr: target,
                config,
                cell: journal::cell_id(service, kind),
                worker_id,
                // More patient than the probe default: a worker may dial
                // before its coordinator binds, and campaigns outlive the
                // occasional dropped connection.
                reconnect: ReconnectPolicy {
                    attempts: 10,
                    base_delay: Duration::from_millis(50),
                    max_delay: Duration::from_secs(2),
                    seed: seed ^ u64::from(worker_id),
                },
            };
            let report =
                run_worker(&wcfg).map_err(|e| CliError(format!("worker {worker_id}: {e}")))?;
            let _ = writeln!(
                out,
                "worker {worker_id}: {} completed, {} crashed, {} reconnect(s)",
                report.completed, report.crashed, report.reconnects
            );
        }
        Command::Load {
            addr,
            server_file,
            connections,
            pipeline,
            threads,
            keys,
            secs,
            warmup_secs,
            target_ops,
            metrics_out,
        } => {
            let target = match addr {
                Some(a) => a.parse().map_err(|e| CliError(format!("--addr '{a}': {e}")))?,
                None => resolve_endpoints(&[], &server_file)?
                    .first()
                    .map(|(_, a)| *a)
                    .ok_or(CliError("server file lists no endpoints".into()))?,
            };
            let config = LoadConfig {
                connections,
                pipeline,
                threads,
                keys,
                duration: Duration::from_secs(secs),
                warmup: Duration::from_secs(warmup_secs),
                target_ops_per_sec: target_ops,
                ..LoadConfig::loopback(target)
            };
            let metrics = MetricsRegistry::new();
            let report = run_load(&config, &metrics).map_err(|e| CliError(format!("load: {e}")))?;
            // A saturated percentile fell in the histogram's open-ended
            // overflow bucket: the printed bound is a floor, not a
            // measurement, and is marked as such.
            let sat = |saturated: bool| if saturated { "+ (saturated)" } else { "" };
            let _ = writeln!(
                out,
                "load {target}: {} ops in {:.1}s over {connections} connection(s) \
                 x {pipeline} in-flight ({:.0} ops/sec); \
                 p50 {:.2} ms{}, p99 {:.2} ms{}, p999 {:.2} ms{}; \
                 {} error(s) ({} ordering, {} decode; \
                 {} connection(s) affected, worst {})",
                report.ops,
                report.elapsed_secs,
                report.ops_per_sec,
                report.p50_nanos as f64 / 1e6,
                sat(report.p50_saturated),
                report.p99_nanos as f64 / 1e6,
                sat(report.p99_saturated),
                report.p999_nanos as f64 / 1e6,
                sat(report.p999_saturated),
                report.errors,
                report.ordering_errors,
                report.decode_errors,
                report.conns_with_errors,
                report.max_conn_errors
            );
            if let Some(path) = &metrics_out {
                let json = metrics.to_json().to_pretty();
                crate::fsio::write_atomic(path, json)
                    .map_err(|e| CliError(format!("write {path}: {e}")))?;
                let _ = writeln!(out, "metrics written to {path}");
            }
        }
    }
    Ok(out)
}

/// Resolves probe/load endpoints from `--endpoint` specs or a
/// `serve --ready-file` (lines of `region=host:port`, plus one
/// `shards=N` metadata line that is skipped here).
fn resolve_endpoints(
    specs: &[String],
    server_file: &Option<String>,
) -> Result<Vec<(Region, std::net::SocketAddr)>, CliError> {
    if !specs.is_empty() {
        return specs.iter().map(|s| parse_endpoint(s)).collect();
    }
    let path = server_file.as_ref().ok_or(CliError("no endpoints given".into()))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError(format!("read {path}: {e}")))?;
    let endpoints: Vec<_> = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim().starts_with("shards="))
        .map(parse_endpoint)
        .collect::<Result<_, _>>()?;
    if endpoints.is_empty() {
        return Err(CliError(format!("{path} lists no endpoints")));
    }
    Ok(endpoints)
}

/// Drains a probe's live tap (`probe --live`): a k-way merge of the
/// per-agent event streams on `(invoke, response)` — each agent's own
/// stream already arrives invoke-ordered — reconstructs the trace order
/// `TestTrace::new` sorts into, and feeds a [`StreamingAnalyzer`] for a
/// running stderr readout. An event is released only once every
/// still-active agent has one queued (or is done), so no later-arriving
/// earlier event can violate the analyzer's watermark. Returns the
/// finished analysis: same events, same order as the batch pass, so the
/// two agree exactly.
fn live_monitor(
    rx: std::sync::mpsc::Receiver<LiveEvent>,
    agents: usize,
    config: CheckerConfig<PostId>,
) -> conprobe_core::TestAnalysis<PostId> {
    let mut analyzer = StreamingAnalyzer::new(&config);
    let mut queues: Vec<std::collections::VecDeque<conprobe_core::trace::OpRecord<PostId>>> =
        (0..agents).map(|_| std::collections::VecDeque::new()).collect();
    let mut done = vec![false; agents];
    let mut last = [0usize; 6];
    for event in rx {
        match event {
            LiveEvent::Op(op) => {
                let a = op.agent.0 as usize;
                if a < agents {
                    queues[a].push_back(op);
                }
            }
            LiveEvent::Done(a) => {
                if (a as usize) < agents {
                    done[a as usize] = true;
                }
            }
        }
        while !queues.iter().zip(&done).any(|(q, d)| q.is_empty() && !d) {
            // Ties across agents resolve lowest-agent-first in both this
            // `min_by_key` and the batch path's stable sort.
            let Some(next) = queues
                .iter()
                .enumerate()
                .filter_map(|(i, q)| q.front().map(|f| (i, (f.invoke, f.response))))
                .min_by_key(|&(_, key)| key)
                .map(|(i, _)| i)
            else {
                break;
            };
            let op = queues[next].pop_front().expect("front checked above");
            analyzer.push_event(&op);
            let counts = analyzer.live_counts();
            if counts != last {
                last = counts;
                eprintln!(
                    "  live: {} op(s) in; ryw {} mw {} mr {} wfr {} cd {} od {}",
                    analyzer.events_pushed(),
                    counts[0],
                    counts[1],
                    counts[2],
                    counts[3],
                    counts[4],
                    counts[5],
                );
            }
        }
    }
    analyzer.finish()
}

/// Resolves the dispatch coordinator's address from `--addr` or a
/// `dispatch --ready-file` (a single `dispatch=host:port` line).
fn resolve_dispatch_addr(
    addr: &Option<String>,
    server_file: &Option<String>,
) -> Result<std::net::SocketAddr, CliError> {
    if let Some(a) = addr {
        return a.parse().map_err(|e| CliError(format!("--addr '{a}': {e}")));
    }
    let path = server_file.as_ref().ok_or(CliError("no coordinator address given".into()))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError(format!("read {path}: {e}")))?;
    for line in text.lines() {
        if let Some(a) = line.trim().strip_prefix("dispatch=") {
            return a.parse().map_err(|e| CliError(format!("{path}: dispatch address '{a}': {e}")));
        }
    }
    Err(CliError(format!("{path} has no dispatch= line")))
}

/// Reads the `shards=N` line a `serve --ready-file` records, if the
/// file (and line) exists. `Ok(None)` when probing `--endpoint` specs
/// directly or against an older ready-file without the line.
fn resolve_shard_count(server_file: &Option<String>) -> Result<Option<usize>, CliError> {
    let Some(path) = server_file else { return Ok(None) };
    let text = std::fs::read_to_string(path).map_err(|e| CliError(format!("read {path}: {e}")))?;
    for line in text.lines() {
        if let Some(n) = line.trim().strip_prefix("shards=") {
            return n
                .parse()
                .map(Some)
                .map_err(|e| CliError(format!("{path}: bad shards line: {e}")));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse(&args("run --service gplus --test 2 --seed 7 --guard --timeline")).unwrap();
        match cmd {
            Command::Run {
                service,
                kind,
                seed,
                guard,
                show_timeline,
                whitebox,
                json_out,
                metrics_out,
            } => {
                assert_eq!(service, ServiceKind::GooglePlus);
                assert_eq!(kind, TestKind::Test2);
                assert_eq!(seed, 7);
                assert!(guard && show_timeline && !whitebox);
                assert!(json_out.is_none());
                assert!(metrics_out.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_trace_with_filters() {
        let cmd = parse(&args(
            "trace --service blogger --test 1 --seed 5 --level warn --target sim --cap 64",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                service: ServiceKind::Blogger,
                kind: TestKind::Test1,
                seed: 5,
                level: Severity::Warn,
                target: Some("sim".into()),
                cap: 64,
            }
        );
        assert!(parse(&args("trace")).is_err(), "trace requires --service");
        assert!(parse(&args("trace --service blogger --level loud")).is_err());
    }

    #[test]
    fn trace_replays_a_test_and_counts_events() {
        let out = execute(
            parse(&args("trace --service blogger --test 1 --seed 1 --level debug --cap 100000"))
                .unwrap(),
        )
        .unwrap();
        assert!(out.contains("completed"), "{out}");
        assert!(out.contains("event(s) at DEBUG or above"), "{out}");
        // A full run delivers thousands of messages; zero events would
        // mean the log never reached the world.
        assert!(!out.contains(" 0 event(s)"), "{out}");
    }

    #[test]
    fn run_with_metrics_dumps_the_registry() {
        let dir = std::env::temp_dir().join("conprobe-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run-metrics.json").to_string_lossy().to_string();
        let out = execute(
            parse(&args(&format!("run --service gplus --test 2 --seed 2 --metrics {path}")))
                .unwrap(),
        )
        .unwrap();
        assert!(out.contains("metrics written to"), "{out}");
        let doc = conprobe_json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let counters = doc.get("counters").expect("counters block");
        assert!(counters.get("sim.delivered").is_some(), "sim layer counted");
    }

    #[test]
    fn repro_emits_metrics_covering_all_layers() {
        let dir = std::env::temp_dir().join("conprobe-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repro-metrics.json").to_string_lossy().to_string();
        let out =
            execute(parse(&args(&format!("repro --tests 1 --seed 9 --metrics {path}"))).unwrap())
                .unwrap();
        assert!(out.contains("mini-study"), "{out}");
        assert!(out.contains("Blogger"), "{out}");
        assert!(out.contains("anomaly prevalence"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        let doc = conprobe_json::parse(&json).unwrap();
        // The acceptance bar: one registry dump spanning all four layers.
        let counters = doc.get("counters").expect("counters block");
        assert!(counters.get("sim.delivered").is_some(), "sim layer: {json}");
        assert!(counters.get("harness.tests.completed").is_some(), "harness layer: {json}");
        assert!(counters.get("campaign.tests.completed").is_some(), "campaign layer: {json}");
        let gauges = doc.get("gauges").expect("gauges block");
        assert!(gauges.get("campaign.tests_per_sec").is_some(), "campaign gauges: {json}");
        let has_replica = matches!(counters, conprobe_json::JsonValue::Object(kv)
            if kv.iter().any(|(k, _)| k.starts_with("services.replica.")));
        assert!(has_replica, "services layer: {json}");
        let has_hist = matches!(doc.get("histograms"), Some(conprobe_json::JsonValue::Object(kv))
            if kv.iter().any(|(k, _)| k.contains("propagation_lag_nanos")));
        assert!(has_hist, "propagation-lag histogram: {json}");
    }

    #[test]
    fn parses_service_aliases() {
        for (alias, kind) in [
            ("blogger", ServiceKind::Blogger),
            ("GPLUS", ServiceKind::GooglePlus),
            ("feed", ServiceKind::FacebookFeed),
            ("fbgroup", ServiceKind::FacebookGroup),
        ] {
            assert_eq!(parse_service(alias).unwrap(), kind);
        }
        assert!(parse_service("myspace").is_err());
    }

    #[test]
    fn rejects_missing_and_unknown_args() {
        assert!(parse(&args("run")).is_err(), "run requires --service");
        assert!(parse(&args("run --service blogger --frobnicate")).is_err());
        assert!(parse(&args("bogus")).is_err());
        assert!(parse(&args("analyze")).is_err(), "analyze requires a path");
        assert!(matches!(parse(&args("help")).unwrap(), Command::Help));
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn services_listing_names_all_models() {
        let out = execute(Command::Services).unwrap();
        for name in ["Blogger", "Google+", "FB Feed", "FB Group"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn run_and_analyze_round_trip() {
        let dir = std::env::temp_dir().join("conprobe-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json").to_string_lossy().to_string();
        let out = execute(
            parse(&args(&format!("run --service fbgroup --test 1 --seed 3 --json {path}")))
                .unwrap(),
        )
        .unwrap();
        assert!(out.contains("completed"), "{out}");
        assert!(out.contains("monotonic writes"), "{out}");
        assert!(out.contains("strongest compatible level"), "{out}");

        let out = execute(parse(&args(&format!("analyze {path} --test1"))).unwrap()).unwrap();
        assert!(out.contains("analyzed"), "{out}");
        assert!(out.contains("monotonic writes"), "{out}");
        assert!(out.contains("anomalous read"), "timeline shown: {out}");
    }

    #[test]
    fn run_with_whitebox_reports_ground_truth() {
        let out =
            execute(parse(&args("run --service fbfeed --test 2 --seed 2 --whitebox")).unwrap())
                .unwrap();
        assert!(out.contains("white-box:"), "{out}");
        assert!(out.contains("true order divergence: false"), "{out}");
    }

    #[test]
    fn chaos_sweep_reports_interference_per_level() {
        let cmd = parse(&args("chaos --service blogger --test 1 --seed 3 --levels 1")).unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                service: ServiceKind::Blogger,
                kind: TestKind::Test1,
                seed: 3,
                levels: 1,
                metrics_out: None,
                journal_out: None,
                resume: None,
                wire: false,
                outage_trace: None,
            }
        );
        let out = execute(cmd).unwrap();
        assert!(out.contains("chaos sweep"), "{out}");
        assert!(out.contains("level 0"), "{out}");
        assert!(out.contains("level 1"), "{out}");
        // Level 0 runs fault-free…
        assert!(out.contains("net 0/0/0"), "{out}");
        // …and the plan builder escalates monotonically.
        assert!(chaos_plan(0, 1).is_empty());
        assert!(chaos_plan(1, 1).events().len() < chaos_plan(4, 1).events().len());
    }

    #[test]
    fn parses_wire_commands() {
        assert!(parse(&args("serve")).is_err(), "serve requires --service");
        assert!(parse(&args("probe --service blogger")).is_err(), "probe requires endpoints");
        assert!(parse(&args("load")).is_err(), "load requires a target");
        assert!(parse(&args("probe --service blogger --endpoint oregon=nonsense")).is_ok());
        let cmd = parse(&args(
            "serve --service gplus --seed 4 --port 9200 --latency-scale 1.0 --drop 0.01 \
             --stale-replica 1 --stale-lag-ms 500 --max-secs 30",
        ))
        .unwrap();
        match cmd {
            Command::Serve { service, seed, base_port, stale, max_secs, .. } => {
                assert_eq!(service, ServiceKind::GooglePlus);
                assert_eq!(seed, 4);
                assert_eq!(base_port, 9200);
                assert_eq!(stale, Some((1, 500)));
                assert_eq!(max_secs, Some(30));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&args(
            "probe --service blogger --test 2 --endpoint oregon=127.0.0.1:9200 \
             --endpoint JP=127.0.0.1:9201 --reads 10",
        ))
        .unwrap();
        match cmd {
            Command::Probe { endpoints, tests, reads_target, .. } => {
                assert_eq!(endpoints.len(), 2);
                assert_eq!(tests, 1, "probe defaults to one instance");
                assert_eq!(reads_target, 10);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse_endpoint("tokyo=127.0.0.1:9201").unwrap(),
            (Region::Tokyo, "127.0.0.1:9201".parse().unwrap())
        );
        assert!(parse_endpoint("mars=127.0.0.1:9201").is_err());
        assert!(parse_endpoint("tokyo").is_err());
    }

    #[test]
    fn serve_with_max_secs_zero_drains_immediately() {
        let dir = std::env::temp_dir().join("conprobe-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ready = dir.join(format!("ready-{}.txt", std::process::id()));
        let metrics = dir.join(format!("serve-metrics-{}.json", std::process::id()));
        let out = execute(
            parse(&args(&format!(
                "serve --service blogger --seed 1 --max-secs 0 --ready-file {} --metrics {}",
                ready.display(),
                metrics.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("drained"), "{out}");
        let listing = std::fs::read_to_string(&ready).unwrap();
        // One listener per agent region, parseable as probe endpoints,
        // plus the shard-count metadata line.
        assert_eq!(listing.lines().count(), Region::AGENTS.len() + 1, "{listing}");
        for line in listing.lines().filter(|l| !l.starts_with("shards=")) {
            parse_endpoint(line).unwrap();
        }
        assert!(listing.lines().any(|l| l == "shards=16"), "{listing}");
        assert_eq!(
            resolve_shard_count(&Some(ready.display().to_string())).unwrap(),
            Some(16),
            "{listing}"
        );
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("wire.server.connections"), "{json}");
        let _ = std::fs::remove_file(&ready);
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn probe_cli_runs_against_a_live_server_and_journals() {
        let dir = std::env::temp_dir().join("conprobe-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tag = std::process::id();
        let ready = dir.join(format!("probe-ready-{tag}.txt"));
        let journal_path = dir.join(format!("probe-journal-{tag}.jsonl"));
        let _ = std::fs::remove_file(&journal_path);

        let server =
            conprobe_wire::WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 21))
                .unwrap();
        let mut listing = String::new();
        for (region, addr) in server.addrs() {
            let _ = writeln!(listing, "{}={addr}", region_token(*region));
        }
        crate::fsio::write_atomic(&ready, &listing).unwrap();

        // `--live` on the first run: the streaming readout must not
        // perturb stdout (the resumed run below has no tap and must
        // still compare byte-identical).
        let cmdline = format!(
            "probe --service blogger --test 2 --seed 21 --server-file {} --read-ms 10 \
             --reads 8 --live --journal {}",
            ready.display(),
            journal_path.display()
        );
        let out = execute(parse(&args(&cmdline)).unwrap()).unwrap();
        assert!(out.contains("instance 0: completed"), "{out}");
        assert!(out.contains("anomaly table:"), "{out}");
        // Clean loopback run: all six table rows report zero.
        let table: Vec<&str> = out.lines().skip_while(|l| *l != "anomaly table:").skip(1).collect();
        assert_eq!(table.len(), AnomalyKind::ALL.len(), "{out}");
        for row in table {
            assert!(row.ends_with("0/1 instance(s), 0 observation(s)"), "clean run: {out}");
        }

        // Resume splices instead of re-running (no live traffic needed,
        // but the server is still up so a re-run would also work — the
        // splice message proves it did not).
        let resumed = execute(
            parse(&args(&format!(
                "probe --service blogger --test 2 --seed 21 --server-file {} --read-ms 10 \
                 --reads 8 --resume {}",
                ready.display(),
                journal_path.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(out, resumed, "resumed probe output is byte-identical");

        server.request_stop();
        server.join();
        let _ = std::fs::remove_file(&ready);
        let _ = std::fs::remove_file(&journal_path);
    }

    #[test]
    fn parses_chaosd_and_fault_flags() {
        assert!(parse(&args("chaosd")).is_err(), "chaosd requires --server-file");
        let cmd = parse(&args(
            "chaosd --server-file up.txt --seed 9 --fault-level 3 --fault-seed 11 \
             --corrupt 0.01 --reset 0.02 --trickle 0.03 --port 9400 --ready-file r.txt \
             --stop-file s.txt --max-secs 5",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Chaosd {
                server_file: "up.txt".into(),
                seed: 9,
                fault_level: 3,
                fault_seed: Some(11),
                outage_trace: None,
                corrupt: 0.01,
                reset: 0.02,
                trickle: 0.03,
                base_port: 9400,
                ready_file: Some("r.txt".into()),
                stop_file: Some("s.txt".into()),
                max_secs: Some(5),
            }
        );
        let cmd = parse(&args(
            "serve --service blogger --max-conns 64 --stall-budget-ms 250 --fault-level 2 \
             --outage-trace incidents.json",
        ))
        .unwrap();
        match cmd {
            Command::Serve { max_conns, stall_budget_ms, fault_level, outage_trace, .. } => {
                assert_eq!(max_conns, 64);
                assert_eq!(stall_budget_ms, 250);
                assert_eq!(fault_level, 2);
                assert_eq!(outage_trace.as_deref(), Some("incidents.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd =
            parse(&args("chaos --service gplus --test 1 --wire --outage-trace t.json")).unwrap();
        match cmd {
            Command::Chaos { wire, outage_trace, .. } => {
                assert!(wire);
                assert_eq!(outage_trace.as_deref(), Some("t.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn wire_chaos_plan_escalates_with_level() {
        assert!(wire_chaos_plan(0, 1).is_empty(), "level 0 is the control arm");
        assert!(wire_chaos_plan(1, 1).events().len() < wire_chaos_plan(4, 1).events().len());
        // The crash/rejoin cycle arrives at level 3 so lower levels stay
        // pure network interference.
        assert!(wire_chaos_plan(2, 1).service_actions().is_empty());
        assert!(wire_chaos_plan(3, 1)
            .service_actions()
            .iter()
            .any(|a| format!("{}", a.action) == "crash"));
        // Every fault window must land inside a loopback probe's
        // measured phase, so the whole plan stays under two seconds.
        for level in 0..=4 {
            assert!(wire_chaos_plan(level, 1).end_time() <= SimTime::from_secs(2));
        }
        let inject = wire_inject_profile(3);
        assert!(inject.corrupt_prob > wire_inject_profile(1).corrupt_prob);
        assert!(inject.reset_prob > 0.0 && inject.trickle_prob > 0.0);
    }

    #[test]
    fn chaosd_fronts_a_live_server_and_drains() {
        let dir = std::env::temp_dir().join("conprobe-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tag = std::process::id();
        let upstream_file = dir.join(format!("chaosd-upstream-{tag}.txt"));
        let proxy_file = dir.join(format!("chaosd-ready-{tag}.txt"));

        let server =
            conprobe_wire::WireServer::start(&ServeConfig::loopback(ServiceKind::Blogger, 7))
                .unwrap();
        let mut listing = String::new();
        for (region, addr) in server.addrs() {
            let _ = writeln!(listing, "{}={addr}", region_token(*region));
        }
        let _ = writeln!(listing, "shards={}", server.shard_count());
        crate::fsio::write_atomic(&upstream_file, &listing).unwrap();

        let out = execute(
            parse(&args(&format!(
                "chaosd --server-file {} --seed 7 --max-secs 0 --ready-file {}",
                upstream_file.display(),
                proxy_file.display()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("chaosd drained"), "{out}");

        // The interposer listing is itself a valid serve ready-file:
        // probe endpoints per region plus the shard count passed through
        // from upstream.
        let proxied = std::fs::read_to_string(&proxy_file).unwrap();
        assert_eq!(proxied.lines().count(), Region::AGENTS.len() + 1, "{proxied}");
        for line in proxied.lines().filter(|l| !l.starts_with("shards=")) {
            parse_endpoint(line).unwrap();
        }
        assert_eq!(
            resolve_shard_count(&Some(proxy_file.display().to_string())).unwrap(),
            Some(server.shard_count()),
            "{proxied}"
        );

        server.request_stop();
        server.join();
        let _ = std::fs::remove_file(&upstream_file);
        let _ = std::fs::remove_file(&proxy_file);
    }

    #[test]
    fn wire_chaos_sweep_level_zero_runs_clean() {
        let out = execute(
            parse(&args("chaos --service blogger --test 2 --seed 5 --levels 0 --wire")).unwrap(),
        )
        .unwrap();
        assert!(out.contains("wire chaos sweep"), "{out}");
        assert!(out.contains("level 0: completed"), "{out}");
        // Level 0 is fault-free: the interposer forwards everything and
        // the analysis must come back anomaly-free.
        assert!(out.contains("0 anomaly observation(s)"), "{out}");
    }

    #[test]
    fn parses_dispatch_and_worker_commands() {
        assert!(parse(&args("dispatch --service blogger")).is_err(), "dispatch needs a journal");
        assert!(parse(&args("worker --service blogger")).is_err(), "worker needs an address");
        let cmd = parse(&args(
            "dispatch --service blogger --test 2 --tests 6 --seed 5 --journal j.jsonl \
             --lease-secs 7 --ready-file r.txt",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Dispatch {
                service: ServiceKind::Blogger,
                kind: TestKind::Test2,
                tests: 6,
                seed: 5,
                addr: None,
                lease_secs: 7,
                ready_file: Some("r.txt".into()),
                journal_out: Some("j.jsonl".into()),
                resume: None,
            }
        );
        let cmd = parse(&args(
            "worker --service blogger --test 2 --tests 6 --seed 5 --server-file r.txt \
             --worker-id 3",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Worker {
                service: ServiceKind::Blogger,
                kind: TestKind::Test2,
                tests: 6,
                seed: 5,
                addr: None,
                server_file: Some("r.txt".into()),
                worker_id: 3,
            }
        );
    }

    #[test]
    fn dispatch_cli_matches_campaign_output_byte_for_byte() {
        let dir = std::env::temp_dir().join("conprobe-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tag = std::process::id();
        let ready = dir.join(format!("dispatch-ready-{tag}.txt"));
        let journal_path = dir.join(format!("dispatch-journal-{tag}.jsonl"));
        let _ = std::fs::remove_file(&ready);
        let _ = std::fs::remove_file(&journal_path);

        let flags = "--service blogger --test 2 --tests 3 --seed 11";
        let dispatch_cmd = parse(&args(&format!(
            "dispatch {flags} --journal {} --ready-file {}",
            journal_path.display(),
            ready.display()
        )))
        .unwrap();
        let coordinator = std::thread::spawn(move || execute(dispatch_cmd));

        // The ready-file is the coordinator's address handoff.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !ready.exists() {
            assert!(std::time::Instant::now() < deadline, "coordinator never bound");
            std::thread::sleep(Duration::from_millis(10));
        }
        let worker_out = execute(
            parse(&args(&format!("worker {flags} --server-file {}", ready.display()))).unwrap(),
        )
        .unwrap();
        assert!(worker_out.contains("3 completed, 0 crashed"), "{worker_out}");

        let dispatched = coordinator.join().unwrap().unwrap();
        let local = execute(parse(&args(&format!("campaign {flags}"))).unwrap()).unwrap();
        assert_eq!(dispatched, local, "dispatched cell diverged from the local campaign");

        let _ = std::fs::remove_file(&ready);
        let _ = std::fs::remove_file(&journal_path);
    }

    #[test]
    fn campaign_summarizes_prevalence() {
        let out = execute(
            parse(&args("campaign --service blogger --test 2 --tests 2 --seed 1")).unwrap(),
        )
        .unwrap();
        assert!(out.contains("2/2 completed"), "{out}");
        assert!(!out.contains("read your writes"), "Blogger clean: {out}");
    }
}
