//! The `conprobe` command-line interface (logic layer).
//!
//! All argument parsing and command execution lives here and returns
//! strings/results so it can be unit-tested; `src/bin/conprobe.rs` is the
//! thin I/O shell.

use conprobe_core::checkers::WfrMode;
use conprobe_core::{analyze, timeline, AnomalyKind, CheckerConfig, TestTrace, Verdict};
use conprobe_harness::proto::{test1_trigger_pairs, TestKind};
use conprobe_harness::runner::{run_one_test, TestConfig};
use conprobe_harness::stats;
use conprobe_json::{FromJson, ToJson};
use conprobe_services::ServiceKind;
use conprobe_sim::net::Region;
use conprobe_sim::{BrownoutMode, FaultEvent, FaultPlan, LinkScope, SimDuration, SimTime};
use conprobe_store::PostId;
use std::fmt::Write as _;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one test instance and report.
    Run {
        /// Service under test.
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Seed.
        seed: u64,
        /// Wrap agents in a session guard.
        guard: bool,
        /// Enable the white-box replica probe.
        whitebox: bool,
        /// Print the ASCII timeline.
        show_timeline: bool,
        /// Dump the trace as JSON to this path.
        json_out: Option<String>,
    },
    /// Analyze a previously exported trace JSON.
    Analyze {
        /// Path to the trace JSON.
        path: String,
        /// Interpret as a Test 1 trace (enables the trigger-pair WFR mode).
        test1: bool,
    },
    /// Run a small campaign cell and summarize.
    Campaign {
        /// Service under test.
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Number of instances.
        tests: u32,
        /// Seed.
        seed: u64,
    },
    /// Sweep fault-plan intensity levels against one service and report
    /// how the measurement degrades.
    Chaos {
        /// Service under test.
        service: ServiceKind,
        /// Test design.
        kind: TestKind,
        /// Seed (both for the world and the fault plan).
        seed: u64,
        /// Highest intensity level to run (sweeps 0..=levels).
        levels: u32,
    },
    /// List the available service models.
    Services,
    /// Print usage.
    Help,
}

/// Errors produced by parsing or execution.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
conprobe — black-box consistency characterization (DSN'16 reproduction)

USAGE:
  conprobe run --service <svc> [--test 1|2] [--seed N] [--guard]
               [--whitebox] [--timeline] [--json FILE]
  conprobe analyze <trace.json> [--test1]
  conprobe campaign --service <svc> [--test 1|2] [--tests N] [--seed N]
  conprobe chaos --service <svc> [--test 1|2] [--seed N] [--levels N]
  conprobe services
  conprobe help

  <svc>: blogger | gplus | fbfeed | fbgroup
";

fn parse_service(s: &str) -> Result<ServiceKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "blogger" => Ok(ServiceKind::Blogger),
        "gplus" | "google+" | "googleplus" => Ok(ServiceKind::GooglePlus),
        "fbfeed" | "feed" => Ok(ServiceKind::FacebookFeed),
        "fbgroup" | "group" => Ok(ServiceKind::FacebookGroup),
        other => Err(CliError(format!("unknown service '{other}'"))),
    }
}

fn parse_test(s: &str) -> Result<TestKind, CliError> {
    match s {
        "1" | "test1" => Ok(TestKind::Test1),
        "2" | "test2" => Ok(TestKind::Test2),
        other => Err(CliError(format!("unknown test '{other}' (use 1 or 2)"))),
    }
}

/// Parses a raw argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut service = None;
    let mut kind = TestKind::Test1;
    let mut seed = 42u64;
    let mut tests = 20u32;
    let mut levels = 3u32;
    let mut guard = false;
    let mut whitebox = false;
    let mut show_timeline = false;
    let mut json_out = None;
    let mut positional: Vec<String> = Vec::new();
    let mut test1 = false;
    while let Some(a) = it.next() {
        match a {
            "--service" => {
                service = Some(parse_service(
                    it.next().ok_or(CliError("--service needs a value".into()))?,
                )?)
            }
            "--test" => {
                kind = parse_test(it.next().ok_or(CliError("--test needs a value".into()))?)?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or(CliError("--seed needs a value".into()))?
                    .parse()
                    .map_err(|e| CliError(format!("--seed: {e}")))?
            }
            "--tests" => {
                tests = it
                    .next()
                    .ok_or(CliError("--tests needs a value".into()))?
                    .parse()
                    .map_err(|e| CliError(format!("--tests: {e}")))?
            }
            "--levels" => {
                levels = it
                    .next()
                    .ok_or(CliError("--levels needs a value".into()))?
                    .parse()
                    .map_err(|e| CliError(format!("--levels: {e}")))?
            }
            "--guard" => guard = true,
            "--whitebox" => whitebox = true,
            "--timeline" => show_timeline = true,
            "--test1" => test1 = true,
            "--json" => {
                json_out =
                    Some(it.next().ok_or(CliError("--json needs a path".into()))?.to_string())
            }
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown flag '{other}'")))
            }
            other => positional.push(other.to_string()),
        }
    }
    match cmd {
        "run" => Ok(Command::Run {
            service: service.ok_or(CliError("run requires --service".into()))?,
            kind,
            seed,
            guard,
            whitebox,
            show_timeline,
            json_out,
        }),
        "analyze" => Ok(Command::Analyze {
            path: positional
                .first()
                .cloned()
                .ok_or(CliError("analyze requires a trace path".into()))?,
            test1,
        }),
        "campaign" => Ok(Command::Campaign {
            service: service.ok_or(CliError("campaign requires --service".into()))?,
            kind,
            tests,
            seed,
        }),
        "chaos" => Ok(Command::Chaos {
            service: service.ok_or(CliError("chaos requires --service".into()))?,
            kind,
            seed,
            levels,
        }),
        "services" => Ok(Command::Services),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError(format!("unknown command '{other}'"))),
    }
}

/// The fault plan for one intensity level of the chaos sweep.
///
/// Level 0 is fault-free; each level above it adds one fault class on top
/// of the previous ones and turns the shared knobs up. All windows start
/// ≥ 4 s into the run so clock sync and the synchronized start happen on
/// a healthy network — the faults hit the measured phase (which opens
/// ~2.5 s in), not the harness bootstrap.
///
/// * level ≥ 1 — a global loss burst (`5·level` %, capped at 50 %).
/// * level ≥ 2 — a latency spike on every link touching Tokyo.
/// * level ≥ 3 — a Tokyo↔Ireland link flap plus one crash/restart cycle
///   of replica 1 (skipped — and accounted — on single-replica
///   topologies).
/// * level ≥ 4 — a throttle-storm brownout of replica 0's front door.
pub fn chaos_plan(level: u32, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    if level >= 1 {
        plan.push(FaultEvent::LossBurst {
            scope: LinkScope::All,
            at: SimTime::from_secs(4),
            duration: SimDuration::from_secs(10),
            loss: f64::from(level.min(10)) * 0.05,
        });
    }
    if level >= 2 {
        plan.push(FaultEvent::DegradedLink {
            scope: LinkScope::Touching(Region::Tokyo),
            at: SimTime::from_secs(5),
            duration: SimDuration::from_secs(8),
            extra_base: SimDuration::from_millis(40).saturating_mul(u64::from(level)),
            extra_jitter: SimDuration::from_millis(20),
        });
    }
    if level >= 3 {
        plan.push(FaultEvent::LinkFlap {
            scope: LinkScope::Between(Region::Tokyo, Region::Ireland),
            at: SimTime::from_secs(6),
            down_for: SimDuration::from_secs(2),
            up_for: SimDuration::from_secs(2),
            flaps: level - 2,
        });
        plan.push(FaultEvent::CrashCycle {
            target: 1,
            at: SimTime::from_secs(7),
            down_for: SimDuration::from_secs(4),
            up_for: SimDuration::ZERO,
            cycles: 1,
        });
    }
    if level >= 4 {
        plan.push(FaultEvent::Brownout {
            target: 0,
            at: SimTime::from_secs(8),
            duration: SimDuration::from_secs(5),
            mode: BrownoutMode::ThrottleStorm,
        });
    }
    plan
}

fn report_analysis(
    out: &mut String,
    analysis: &conprobe_core::TestAnalysis<PostId>,
    trace: &TestTrace<PostId>,
    show_timeline: bool,
) {
    let _ =
        writeln!(out, "operations: {} writes, {} reads", trace.write_count(), trace.read_count());
    for kind in AnomalyKind::ALL {
        let n = analysis.count(kind);
        if n > 0 {
            let _ = writeln!(out, "  {kind}: {n} observation(s)");
        }
    }
    if analysis.is_clean() {
        let _ = writeln!(out, "  no anomalies");
    }
    let _ = writeln!(out, "{}", Verdict::from_analysis(analysis));
    if show_timeline {
        let _ = writeln!(out, "\n{}", timeline::render(trace, &analysis.observations, 72));
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Services => {
            for s in ServiceKind::ALL {
                let topo = conprobe_services::catalog::topology(s);
                let _ = writeln!(
                    out,
                    "{:<10} — {} replica(s): {}",
                    s.name(),
                    topo.replicas.len(),
                    topo.replicas.iter().map(|(r, _)| r.to_string()).collect::<Vec<_>>().join(", ")
                );
            }
        }
        Command::Run { service, kind, seed, guard, whitebox, show_timeline, json_out } => {
            let mut config = TestConfig::paper(service, kind);
            config.use_guard = guard;
            if whitebox {
                config.whitebox_period = Some(SimDuration::from_millis(100));
            }
            let r = run_one_test(&config, seed);
            let _ = writeln!(
                out,
                "{service} {kind} (seed {seed}): {} in {:.1}s",
                if r.completed { "completed" } else { "TIMED OUT" },
                r.duration_secs
            );
            report_analysis(&mut out, &r.analysis, &r.trace, show_timeline);
            if let Some(report) = &r.whitebox {
                let _ = writeln!(
                    out,
                    "white-box: {} samples over {} replicas; true content divergence: {}, \
                     true order divergence: {}",
                    report.samples,
                    report.replicas,
                    report.any_true_content_divergence(),
                    report.any_true_order_divergence()
                );
            }
            if let Some(path) = json_out {
                let json = ToJson::to_json(&r.trace).to_pretty();
                std::fs::write(&path, json).map_err(|e| CliError(format!("write {path}: {e}")))?;
                let _ = writeln!(out, "trace written to {path}");
            }
        }
        Command::Analyze { path, test1 } => {
            let json = std::fs::read_to_string(&path)
                .map_err(|e| CliError(format!("read {path}: {e}")))?;
            let doc =
                conprobe_json::parse(&json).map_err(|e| CliError(format!("parse {path}: {e}")))?;
            let trace: TestTrace<PostId> =
                FromJson::from_json(&doc).map_err(|e| CliError(format!("parse {path}: {e}")))?;
            let config = if test1 {
                CheckerConfig {
                    wfr_mode: WfrMode::TriggerPairs(test1_trigger_pairs(3)),
                    compute_windows: true,
                }
            } else {
                CheckerConfig::default()
            };
            let analysis = analyze(&trace, &config);
            let _ = writeln!(out, "analyzed {path}:");
            report_analysis(&mut out, &analysis, &trace, true);
        }
        Command::Chaos { service, kind, seed, levels } => {
            let _ = writeln!(out, "{service} {kind} chaos sweep (seed {seed}):");
            for level in 0..=levels {
                let mut config = TestConfig::paper(service, kind);
                config.fault_plan = chaos_plan(level, seed);
                let r = run_one_test(&config, seed);
                let ledger = &r.fault_ledger;
                let rpc: u64 = ledger.agent_rpc.iter().map(|s| s.retransmits).sum();
                let anomalies: usize = AnomalyKind::ALL.iter().map(|k| r.analysis.count(*k)).sum();
                let _ = writeln!(
                    out,
                    "  level {level}: {} in {:>5.1}s; {anomalies} anomaly observation(s); \
                     net {}/{}/{} blocked/dropped/delayed; {} service action(s) \
                     ({} skipped); {rpc} retransmit(s)",
                    if r.salvaged {
                        "SALVAGED"
                    } else if r.completed {
                        "completed"
                    } else {
                        "TIMED OUT"
                    },
                    r.duration_secs,
                    ledger.net.blocked,
                    ledger.net.dropped,
                    ledger.net.delayed,
                    ledger.actions.len(),
                    ledger.skipped_actions,
                );
            }
        }
        Command::Campaign { service, kind, tests, seed } => {
            let config =
                conprobe_harness::CampaignConfig::paper(service, kind, tests).with_seed(seed);
            // Progress to stderr (stdout carries the report): completed
            // count and instantaneous throughput, overwritten in place.
            let started = std::time::Instant::now();
            let progress = move |done: usize, total: usize| {
                let rate = done as f64 / started.elapsed().as_secs_f64().max(1e-9);
                eprint!("\r  {done}/{total} tests ({rate:.1} tests/sec)");
                if done == total {
                    eprintln!();
                }
            };
            let result = conprobe_harness::run_campaign_with_progress(&config, Some(&progress));
            let _ = writeln!(
                out,
                "{service} {kind} × {tests}: {}/{} completed, {} reads, {} writes",
                result.completed(),
                tests,
                result.total_reads(),
                result.total_writes()
            );
            for kind in AnomalyKind::ALL {
                let p = stats::prevalence(&result.results, kind);
                if p > 0.0 {
                    let _ = writeln!(out, "  {kind:<22} {p:>5.1}% of tests");
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse(&args("run --service gplus --test 2 --seed 7 --guard --timeline")).unwrap();
        match cmd {
            Command::Run { service, kind, seed, guard, show_timeline, whitebox, json_out } => {
                assert_eq!(service, ServiceKind::GooglePlus);
                assert_eq!(kind, TestKind::Test2);
                assert_eq!(seed, 7);
                assert!(guard && show_timeline && !whitebox);
                assert!(json_out.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_service_aliases() {
        for (alias, kind) in [
            ("blogger", ServiceKind::Blogger),
            ("GPLUS", ServiceKind::GooglePlus),
            ("feed", ServiceKind::FacebookFeed),
            ("fbgroup", ServiceKind::FacebookGroup),
        ] {
            assert_eq!(parse_service(alias).unwrap(), kind);
        }
        assert!(parse_service("myspace").is_err());
    }

    #[test]
    fn rejects_missing_and_unknown_args() {
        assert!(parse(&args("run")).is_err(), "run requires --service");
        assert!(parse(&args("run --service blogger --frobnicate")).is_err());
        assert!(parse(&args("bogus")).is_err());
        assert!(parse(&args("analyze")).is_err(), "analyze requires a path");
        assert!(matches!(parse(&args("help")).unwrap(), Command::Help));
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn services_listing_names_all_models() {
        let out = execute(Command::Services).unwrap();
        for name in ["Blogger", "Google+", "FB Feed", "FB Group"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn run_and_analyze_round_trip() {
        let dir = std::env::temp_dir().join("conprobe-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json").to_string_lossy().to_string();
        let out = execute(
            parse(&args(&format!("run --service fbgroup --test 1 --seed 3 --json {path}")))
                .unwrap(),
        )
        .unwrap();
        assert!(out.contains("completed"), "{out}");
        assert!(out.contains("monotonic writes"), "{out}");
        assert!(out.contains("strongest compatible level"), "{out}");

        let out = execute(parse(&args(&format!("analyze {path} --test1"))).unwrap()).unwrap();
        assert!(out.contains("analyzed"), "{out}");
        assert!(out.contains("monotonic writes"), "{out}");
        assert!(out.contains("anomalous read"), "timeline shown: {out}");
    }

    #[test]
    fn run_with_whitebox_reports_ground_truth() {
        let out =
            execute(parse(&args("run --service fbfeed --test 2 --seed 2 --whitebox")).unwrap())
                .unwrap();
        assert!(out.contains("white-box:"), "{out}");
        assert!(out.contains("true order divergence: false"), "{out}");
    }

    #[test]
    fn chaos_sweep_reports_interference_per_level() {
        let cmd = parse(&args("chaos --service blogger --test 1 --seed 3 --levels 1")).unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                service: ServiceKind::Blogger,
                kind: TestKind::Test1,
                seed: 3,
                levels: 1
            }
        );
        let out = execute(cmd).unwrap();
        assert!(out.contains("chaos sweep"), "{out}");
        assert!(out.contains("level 0"), "{out}");
        assert!(out.contains("level 1"), "{out}");
        // Level 0 runs fault-free…
        assert!(out.contains("net 0/0/0"), "{out}");
        // …and the plan builder escalates monotonically.
        assert!(chaos_plan(0, 1).is_empty());
        assert!(chaos_plan(1, 1).events().len() < chaos_plan(4, 1).events().len());
    }

    #[test]
    fn campaign_summarizes_prevalence() {
        let out = execute(
            parse(&args("campaign --service blogger --test 2 --tests 2 --seed 1")).unwrap(),
        )
        .unwrap();
        assert!(out.contains("2/2 completed"), "{out}");
        assert!(!out.contains("read your writes"), "Blogger clean: {out}");
    }
}
