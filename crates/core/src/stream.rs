//! Streaming (incremental) anomaly checking.
//!
//! The batch checkers in [`crate::checkers`] analyze a complete
//! [`crate::trace::TestTrace`] after the fact. That caps campaign scale:
//! the whole trace (every `K` event key of every read sequence) must sit
//! in memory before the first anomaly can be counted, and a live probe
//! can say nothing until it finishes. [`StreamingAnalyzer`] converts all
//! six checkers and both divergence-window sweeps into **streaming
//! operators**: events are pushed one at a time in trace order
//! (nondecreasing invocation time — exactly the order
//! [`crate::trace::TestTrace::new`] sorts into), anomaly counts update as
//! events arrive ([`StreamingAnalyzer::live_counts`]), and
//! [`StreamingAnalyzer::finish`] produces a
//! [`TestAnalysis`] **identical** — observation order, witness order,
//! detail strings, window boundaries — to what the batch pipeline
//! produces on the same trace. The batch entry points are themselves
//! rewritten as thin wrappers that replay `trace.ops()` through this
//! engine, so there is one implementation of the paper's semantics.
//!
//! # Memory contract
//!
//! The analyzer never buffers `OpRecord`s or raw `K` sequences. Each
//! event key is interned once (one owned `K` per *distinct* key); reads
//! and writes are retained as compact summaries of dense `u32` ids (a
//! read costs `~12·|seq|` bytes regardless of how wide `K` is, a write
//! costs a fixed few words). Pairwise divergence counting is inherently
//! `O(reads²)` in *time*, but the per-event *space* is a small constant
//! — the property [`StreamingAnalyzer::retained_bytes`] accounts for and
//! the streaming-equivalence suite pins. On a million-event trace of
//! wide string keys this is the difference between gigabytes and tens of
//! megabytes.
//!
//! # Exactness machinery
//!
//! Matching the batch output *exactly* from a one-pass stream needs
//! three deferral devices, each justified by the trace-order invariant
//! (`invoke` is nondecreasing, so every op not yet pushed has
//! `invoke ≥ watermark`):
//!
//! * **Invoke watermark** (RYW, MW, WFR dependencies): a read may only be
//!   judged against writes with `response ≤ read.invoke`. Once the
//!   watermark passes `read.invoke`, any such write has
//!   `invoke ≤ response ≤ read.invoke < watermark` and is therefore
//!   already pushed — including the zero-duration write pushed *after*
//!   the read it ties with. The same argument finalizes a write's WFR
//!   dependency set (reads with `response ≤ write.invoke`).
//! * **Response-order heap** (MR, windows): monotonic reads and the
//!   window sweeps consume reads in *response* order. A pending read
//!   with `response ≤ v` can be finalized as soon as an op with
//!   `invoke = v` arrives: every future read has `response ≥ invoke ≥ v`,
//!   and an equal-response future read has a larger trace sequence, so
//!   the stable tie-break is preserved.
//! * **Pair-state lattice** (divergence): per unordered agent pair the
//!   analyzer keeps only the diverging-read-pair count, the
//!   lexicographically first witness, and the open/closed window state —
//!   each new read is compared against the other agents' retained read
//!   summaries exactly once, so every unordered read pair is evaluated
//!   exactly once, in either order, and the batch iteration order is
//!   reconstructed from `(read ordinal, read ordinal)` sort keys.

use crate::analysis::{CheckerConfig, TestAnalysis};
use crate::anomaly::{AnomalyKind, Observation};
use crate::checkers::WfrMode;
use crate::trace::{AgentId, EventKey, OpRecord, Timestamp};
use crate::window::{WindowAnalysis, WindowKind};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

/// One streaming operator, for running a single checker (or window
/// sweep) incrementally. [`StreamingAnalyzer::new`] runs all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPart {
    /// The Read Your Writes checker.
    ReadYourWrites,
    /// The Monotonic Writes checker.
    MonotonicWrites,
    /// The Monotonic Reads checker.
    MonotonicReads,
    /// The Writes Follows Reads checker (mode from the config).
    WritesFollowReads,
    /// The Content Divergence checker.
    ContentDivergence,
    /// The Order Divergence checker.
    OrderDivergence,
    /// The content-divergence window sweep (all agent pairs).
    ContentWindows,
    /// The order-divergence window sweep (all agent pairs).
    OrderWindows,
}

/// Which operators are active.
#[derive(Debug, Clone, Copy, Default)]
struct Parts {
    ryw: bool,
    mw: bool,
    mr: bool,
    wfr: bool,
    content: bool,
    order: bool,
    win_content: bool,
    win_order: bool,
}

impl Parts {
    fn needs_read_finalize(&self) -> bool {
        self.mr || self.win_content || self.win_order
    }
}

/// A retained read: the interned sequence plus a sorted `(key, last
/// position)` table for O(log n) membership/position probes. This is the
/// only per-read state the engine keeps — no `K` values, no `OpRecord`.
#[derive(Debug)]
struct ReadState {
    agent: AgentId,
    invoke: Timestamp,
    response: Timestamp,
    /// Dense key ids in sequence order, duplicates kept.
    keys: Vec<u32>,
    /// Sorted by key; position is the *last* occurrence, matching
    /// [`crate::index::ReadView::position`].
    by_key: Vec<(u32, u32)>,
    /// Ordinal among this agent's reads (arrival = trace order).
    ord_in_agent: u32,
}

impl ReadState {
    fn contains(&self, key: u32) -> bool {
        self.by_key.binary_search_by_key(&key, |&(k, _)| k).is_ok()
    }

    fn position(&self, key: u32) -> Option<u32> {
        self.by_key.binary_search_by_key(&key, |&(k, _)| k).ok().map(|i| self.by_key[i].1)
    }
}

/// A retained write: fixed-size, id-only.
#[derive(Debug, Clone, Copy)]
struct WriteRec {
    key: u32,
    invoke: Timestamp,
    response: Timestamp,
}

#[derive(Debug, Default)]
struct AgentState {
    /// Writes in issue (arrival) order.
    writes: Vec<WriteRec>,
    /// Indices into `reads`, arrival order.
    read_ids: Vec<u32>,
    /// The agent's most recently *finalized* (response-ordered) read —
    /// both the MR predecessor and the agent's latest view for the
    /// window sweeps.
    last_finalized: Option<u32>,
}

/// A finalized WFR dependency `(dep, write)` with the sort key that
/// reconstructs the batch dependency order: agent ascending, then write
/// issue order, then dependency discovery order within the write.
#[derive(Debug, Clone, Copy)]
struct DepRec {
    dep_key: u32,
    write_key: u32,
    sort: (AgentId, u32, u32),
}

/// One `(read, dependency)` WFR violation.
#[derive(Debug, Clone, Copy)]
struct MatchRec {
    read: u32,
    sort: (AgentId, u32, u32),
    dep_key: u32,
    write_key: u32,
}

/// A Test 1 trigger pair with lazily resolved interned ids. An
/// unresolved id means the key has not appeared in the stream yet — and
/// a key that never appeared is contained in no read, which is exactly
/// the batch semantics for absent trigger keys.
#[derive(Debug)]
struct TriggerPair<K> {
    dep: K,
    write: K,
    dep_id: Option<u32>,
    write_id: Option<u32>,
}

/// Divergence state for one unordered agent pair.
#[derive(Debug)]
struct PairState<K> {
    content_count: usize,
    /// `((first ordinal, second ordinal), x, y, at)` for the
    /// lexicographically earliest diverging read pair.
    content_best: Option<((u32, u32), K, K, Timestamp)>,
    order_count: usize,
    order_best: Option<((u32, u32), K, K, Timestamp)>,
    content_open: Option<Timestamp>,
    content_closed: Vec<(Timestamp, Timestamp)>,
    order_open: Option<Timestamp>,
    order_closed: Vec<(Timestamp, Timestamp)>,
}

impl<K> Default for PairState<K> {
    fn default() -> Self {
        PairState {
            content_count: 0,
            content_best: None,
            order_count: 0,
            order_best: None,
            content_open: None,
            content_closed: Vec::new(),
            order_open: None,
            order_closed: Vec::new(),
        }
    }
}

type KeyedObs<K> = Vec<((AgentId, u32), Observation<K>)>;

/// The streaming analysis engine. See the module docs for the contract.
#[derive(Debug)]
pub struct StreamingAnalyzer<K: EventKey> {
    parts: Parts,
    general_wfr: bool,
    triggers: Vec<TriggerPair<K>>,

    /// Interner: `K` → dense id, plus the id → `K` table for witness
    /// reconstruction (the only owned `K` copies the engine keeps).
    key_ids: HashMap<K, u32>,
    keys: Vec<K>,

    agents: BTreeMap<AgentId, AgentState>,
    reads: Vec<ReadState>,
    /// `(agent, ordinal)` of every write, arrival order — the WFR
    /// finalization queue.
    write_log: Vec<(AgentId, u32)>,

    watermark: Option<Timestamp>,
    /// Reads `0..rw_cursor` have had their RYW/MW evaluation.
    rw_cursor: usize,
    /// Writes `0..write_cursor` of `write_log` have finalized WFR deps.
    write_cursor: usize,
    /// Pending reads awaiting response-order finalization.
    finalize_heap: BinaryHeap<Reverse<(Timestamp, u32)>>,
    mr_seq: u32,

    events: u64,
    retained: usize,

    ryw_obs: KeyedObs<K>,
    mw_obs: Vec<((u32, AgentId), Observation<K>)>,
    mr_obs: KeyedObs<K>,
    /// Trigger-mode WFR observations, keyed by read index.
    wfr_obs: Vec<(u32, Observation<K>)>,
    deps: Vec<DepRec>,
    wfr_matches: Vec<MatchRec>,
    wfr_reads_hit: HashSet<u32>,
    pairs: BTreeMap<(AgentId, AgentId), PairState<K>>,
}

impl<K: EventKey> StreamingAnalyzer<K> {
    /// A full analyzer: all six checkers, plus both window sweeps when
    /// `config.compute_windows` is set — the streaming equivalent of
    /// [`crate::analysis::analyze`].
    pub fn new(config: &CheckerConfig<K>) -> Self {
        let parts = Parts {
            ryw: true,
            mw: true,
            mr: true,
            wfr: true,
            content: true,
            order: true,
            win_content: config.compute_windows,
            win_order: config.compute_windows,
        };
        Self::with_parts(&config.wfr_mode, parts)
    }

    /// An analyzer running a single operator — what the batch
    /// `check_indexed` entry points are built on.
    pub fn single(config: &CheckerConfig<K>, part: StreamPart) -> Self {
        let mut parts = Parts::default();
        match part {
            StreamPart::ReadYourWrites => parts.ryw = true,
            StreamPart::MonotonicWrites => parts.mw = true,
            StreamPart::MonotonicReads => parts.mr = true,
            StreamPart::WritesFollowReads => parts.wfr = true,
            StreamPart::ContentDivergence => parts.content = true,
            StreamPart::OrderDivergence => parts.order = true,
            StreamPart::ContentWindows => parts.win_content = true,
            StreamPart::OrderWindows => parts.win_order = true,
        }
        Self::with_parts(&config.wfr_mode, parts)
    }

    fn with_parts(mode: &WfrMode<K>, parts: Parts) -> Self {
        let (general_wfr, triggers) = match mode {
            WfrMode::General => (true, Vec::new()),
            WfrMode::TriggerPairs(pairs) => (
                false,
                pairs
                    .iter()
                    .map(|(dep, write)| TriggerPair {
                        dep: dep.clone(),
                        write: write.clone(),
                        dep_id: None,
                        write_id: None,
                    })
                    .collect(),
            ),
        };
        StreamingAnalyzer {
            parts,
            general_wfr,
            triggers,
            key_ids: HashMap::new(),
            keys: Vec::new(),
            agents: BTreeMap::new(),
            reads: Vec::new(),
            write_log: Vec::new(),
            watermark: None,
            rw_cursor: 0,
            write_cursor: 0,
            finalize_heap: BinaryHeap::new(),
            mr_seq: 0,
            events: 0,
            retained: 0,
            ryw_obs: Vec::new(),
            mw_obs: Vec::new(),
            mr_obs: Vec::new(),
            wfr_obs: Vec::new(),
            deps: Vec::new(),
            wfr_matches: Vec::new(),
            wfr_reads_hit: HashSet::new(),
            pairs: BTreeMap::new(),
        }
    }

    /// Number of events pushed so far.
    pub fn events_pushed(&self) -> u64 {
        self.events
    }

    /// Approximate bytes of retained analysis state (read/write
    /// summaries, interner, dependency sets) — the figure the
    /// memory-bounded contract is about. Deliberately excludes produced
    /// observations, which are output, not working state.
    pub fn retained_bytes(&self) -> usize {
        self.retained
    }

    /// Anomaly counts confirmed so far, in [`AnomalyKind::ALL`] order
    /// (RYW, MW, MR, WFR, CD, OD). Counts are monotonically
    /// nondecreasing as events are pushed; watermark-deferred checks
    /// (a read's RYW/MW verdict, an unconverged window) appear once the
    /// stream passes the point that makes them final, so mid-stream
    /// counts lag [`StreamingAnalyzer::finish`] by at most the
    /// still-pending tail.
    pub fn live_counts(&self) -> [usize; 6] {
        [
            self.ryw_obs.len(),
            self.mw_obs.len(),
            self.mr_obs.len(),
            if self.general_wfr { self.wfr_reads_hit.len() } else { self.wfr_obs.len() },
            self.pairs.values().filter(|p| p.content_count > 0).count(),
            self.pairs.values().filter(|p| p.order_count > 0).count(),
        ]
    }

    fn intern(&mut self, key: &K) -> u32 {
        if let Some(&id) = self.key_ids.get(key) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.keys.push(key.clone());
        self.key_ids.insert(key.clone(), id);
        self.retained += 2 * std::mem::size_of::<K>() + std::mem::size_of::<u32>() * 2;
        id
    }

    /// Pushes the next operation. Ops MUST arrive in trace order
    /// (nondecreasing `invoke` — the order `TestTrace::new` sorts into
    /// and live agents' merged logs naturally produce).
    ///
    /// # Panics
    ///
    /// Panics if `op.invoke` is earlier than a previously pushed op's.
    pub fn push_event(&mut self, op: &OpRecord<K>) {
        let v = op.invoke;
        if let Some(w) = self.watermark {
            assert!(v >= w, "push_event: ops must arrive in nondecreasing invoke order");
        }
        // Everything decided strictly before `v` is now final.
        self.release_reads(Some(v));
        self.finalize_write_deps(Some(v));
        self.finalize_responded_reads(Some(v));
        self.watermark = Some(v);
        self.events += 1;

        if let Some(id) = op.write_id() {
            let key = self.intern(id);
            let st = self.agents.entry(op.agent).or_default();
            let ord = st.writes.len() as u32;
            st.writes.push(WriteRec { key, invoke: op.invoke, response: op.response });
            self.write_log.push((op.agent, ord));
            self.retained += std::mem::size_of::<WriteRec>() + 8;
        } else if let Some(seq) = op.read_seq() {
            self.push_read(op, seq);
        }
    }

    fn push_read(&mut self, op: &OpRecord<K>, seq: &[K]) {
        let keys: Vec<u32> = seq.iter().map(|k| self.intern(k)).collect();
        let mut by_key: Vec<(u32, u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        by_key.sort_unstable();
        // Last occurrence wins, matching `ReadView::position`.
        by_key.dedup_by(|curr, prev| {
            if curr.0 == prev.0 {
                prev.1 = curr.1;
                true
            } else {
                false
            }
        });
        let idx = self.reads.len() as u32;
        let ord_in_agent = self.agents.entry(op.agent).or_default().read_ids.len() as u32;
        let read = ReadState {
            agent: op.agent,
            invoke: op.invoke,
            response: op.response,
            keys,
            by_key,
            ord_in_agent,
        };
        self.retained +=
            std::mem::size_of::<ReadState>() + read.keys.len() * 4 + read.by_key.len() * 8 + 8;

        if self.parts.content || self.parts.order {
            self.divergence_scan(&read);
        }
        if self.parts.wfr {
            if self.general_wfr {
                for i in 0..self.deps.len() {
                    let d = self.deps[i];
                    if read.contains(d.write_key) && !read.contains(d.dep_key) {
                        self.wfr_matches.push(MatchRec {
                            read: idx,
                            sort: d.sort,
                            dep_key: d.dep_key,
                            write_key: d.write_key,
                        });
                        self.wfr_reads_hit.insert(idx);
                        self.retained += std::mem::size_of::<MatchRec>();
                    }
                }
            } else {
                self.trigger_scan(idx, &read);
            }
        }
        if self.parts.needs_read_finalize() {
            self.finalize_heap.push(Reverse((read.response, idx)));
        }
        self.agents.get_mut(&op.agent).expect("created above").read_ids.push(idx);
        self.reads.push(read);
    }

    /// Compares a newly pushed read against every retained read of every
    /// other agent, updating the per-pair divergence counters and best
    /// witnesses. Each unordered read pair is seen exactly once.
    fn divergence_scan(&mut self, read: &ReadState) {
        // (pair, is_content, ordkey, x id, y id, at)
        type PairUpdate = ((AgentId, AgentId), bool, (u32, u32), u32, u32, Timestamp);
        let a = read.agent;
        let mut updates: Vec<PairUpdate> = Vec::new();
        for (&b, bst) in &self.agents {
            if b == a {
                continue;
            }
            for &rb_idx in &bst.read_ids {
                let rb = &self.reads[rb_idx as usize];
                let at = read.response.max(rb.response);
                // Canonical orientation: `first` is the pair's smaller
                // agent's read.
                let (pair, ordkey, first, second) = if a < b {
                    ((a, b), (read.ord_in_agent, rb.ord_in_agent), read, rb)
                } else {
                    ((b, a), (rb.ord_in_agent, read.ord_in_agent), rb, read)
                };
                if self.parts.content {
                    if let (Some(x), Some(y)) =
                        (first_only_in(first, second), first_only_in(second, first))
                    {
                        updates.push((pair, true, ordkey, x, y, at));
                    }
                }
                if self.parts.order {
                    if let Some((x, y)) = inversion_ids(first, second) {
                        updates.push((pair, false, ordkey, x, y, at));
                    }
                }
            }
        }
        for (pair, is_content, ordkey, x, y, at) in updates {
            let st = self.pairs.entry(pair).or_default();
            let (count, best) = if is_content {
                (&mut st.content_count, &mut st.content_best)
            } else {
                (&mut st.order_count, &mut st.order_best)
            };
            *count += 1;
            if best.as_ref().is_none_or(|(k, ..)| ordkey < *k) {
                *best = Some((
                    ordkey,
                    self.keys[x as usize].clone(),
                    self.keys[y as usize].clone(),
                    at,
                ));
            }
        }
    }

    /// Evaluates the Test 1 trigger pairs against one read, emitting the
    /// (final, timeless) WFR observation immediately.
    fn trigger_scan(&mut self, idx: u32, read: &ReadState) {
        let mut witnesses: Vec<K> = Vec::new();
        for t in &mut self.triggers {
            if t.write_id.is_none() {
                t.write_id = self.key_ids.get(&t.write).copied();
            }
            if t.dep_id.is_none() {
                t.dep_id = self.key_ids.get(&t.dep).copied();
            }
            let write_seen = t.write_id.is_some_and(|id| read.contains(id));
            let dep_seen = t.dep_id.is_some_and(|id| read.contains(id));
            if write_seen && !dep_seen {
                witnesses.push(t.dep.clone());
                witnesses.push(t.write.clone());
            }
        }
        if !witnesses.is_empty() {
            let agent = read.agent;
            self.wfr_obs.push((
                idx,
                Observation {
                    kind: AnomalyKind::WritesFollowReads,
                    agent,
                    other_agent: None,
                    at: read.response,
                    detail: format!(
                        "read by {agent} sees write(s) without their read dependencies: \
                         {witnesses:?}"
                    ),
                    witnesses,
                },
            ));
        }
    }

    /// RYW + MW evaluation for reads whose invoke watermark has passed
    /// (`invoke < bound`; `None` = end of stream).
    fn release_reads(&mut self, bound: Option<Timestamp>) {
        if !(self.parts.ryw || self.parts.mw) {
            return;
        }
        while self.rw_cursor < self.reads.len() {
            let r_idx = self.rw_cursor;
            if let Some(b) = bound {
                if self.reads[r_idx].invoke >= b {
                    break;
                }
            }
            self.rw_cursor += 1;
            if self.parts.ryw {
                self.eval_ryw(r_idx);
            }
            if self.parts.mw {
                self.eval_mw(r_idx);
            }
        }
    }

    fn eval_ryw(&mut self, r_idx: usize) {
        let r = &self.reads[r_idx];
        let agent = r.agent;
        let Some(st) = self.agents.get(&agent) else { return };
        let missing: Vec<K> = st
            .writes
            .iter()
            .filter(|w| w.response <= r.invoke && !r.contains(w.key))
            .map(|w| self.keys[w.key as usize].clone())
            .collect();
        if !missing.is_empty() {
            let obs = Observation {
                kind: AnomalyKind::ReadYourWrites,
                agent,
                other_agent: None,
                at: r.response,
                detail: format!(
                    "read by {agent} misses {} own completed write(s): {missing:?}",
                    missing.len()
                ),
                witnesses: missing,
            };
            self.ryw_obs.push(((agent, r.ord_in_agent), obs));
        }
    }

    fn eval_mw(&mut self, r_idx: usize) {
        let r = &self.reads[r_idx];
        for (&writer, wst) in &self.agents {
            let w: Vec<&WriteRec> = wst.writes.iter().filter(|w| w.response <= r.invoke).collect();
            'pairs: for (i, x) in w.iter().enumerate() {
                for y in &w[i + 1..] {
                    let violation = match (r.position(x.key), r.position(y.key)) {
                        (None, Some(_)) => true,
                        (Some(px), Some(py)) => py < px,
                        _ => false,
                    };
                    if violation {
                        let (xk, yk) = (&self.keys[x.key as usize], &self.keys[y.key as usize]);
                        self.mw_obs.push((
                            (r_idx as u32, writer),
                            Observation {
                                kind: AnomalyKind::MonotonicWrites,
                                agent: r.agent,
                                other_agent: Some(writer),
                                at: r.response,
                                witnesses: vec![xk.clone(), yk.clone()],
                                detail: format!(
                                    "read by {} sees {writer}'s write {yk:?} but write {xk:?} \
                                     is missing or ordered after it",
                                    r.agent
                                ),
                            },
                        ));
                        break 'pairs;
                    }
                }
            }
        }
    }

    /// Finalizes WFR dependency sets for writes whose invoke watermark
    /// has passed, then checks every new dependency against all retained
    /// reads (the mirror of the per-read scan in `push_read`).
    fn finalize_write_deps(&mut self, bound: Option<Timestamp>) {
        if !(self.parts.wfr && self.general_wfr) {
            return;
        }
        while self.write_cursor < self.write_log.len() {
            let (agent, ord) = self.write_log[self.write_cursor];
            let w = self.agents[&agent].writes[ord as usize];
            if let Some(b) = bound {
                if w.invoke >= b {
                    break;
                }
            }
            self.write_cursor += 1;

            let mut seen: HashSet<u32> = HashSet::new();
            let mut dep_idx = 0u32;
            let mut new_deps: Vec<DepRec> = Vec::new();
            let st = &self.agents[&agent];
            for &ri in &st.read_ids {
                let r = &self.reads[ri as usize];
                if r.response > w.invoke {
                    continue;
                }
                for &k in &r.keys {
                    if k != w.key && seen.insert(k) {
                        new_deps.push(DepRec {
                            dep_key: k,
                            write_key: w.key,
                            sort: (agent, ord, dep_idx),
                        });
                        dep_idx += 1;
                    }
                }
            }
            for d in new_deps {
                for (ri, r) in self.reads.iter().enumerate() {
                    if r.contains(d.write_key) && !r.contains(d.dep_key) {
                        self.wfr_matches.push(MatchRec {
                            read: ri as u32,
                            sort: d.sort,
                            dep_key: d.dep_key,
                            write_key: d.write_key,
                        });
                        self.wfr_reads_hit.insert(ri as u32);
                        self.retained += std::mem::size_of::<MatchRec>();
                    }
                }
                self.deps.push(d);
                self.retained += std::mem::size_of::<DepRec>();
            }
        }
    }

    /// MR + window finalization for reads whose response the stream has
    /// passed (`response ≤ bound`; `None` = end of stream). Pops in
    /// `(response, trace seq)` order — the batch response order with its
    /// stable tie-break.
    fn finalize_responded_reads(&mut self, bound: Option<Timestamp>) {
        if !self.parts.needs_read_finalize() {
            return;
        }
        while let Some(&Reverse((resp, idx))) = self.finalize_heap.peek() {
            if let Some(b) = bound {
                if resp > b {
                    break;
                }
            }
            self.finalize_heap.pop();
            let a = self.reads[idx as usize].agent;
            let prev = self.agents[&a].last_finalized;

            if self.parts.mr {
                if let Some(p_idx) = prev {
                    let p = &self.reads[p_idx as usize];
                    let r = &self.reads[idx as usize];
                    let vanished: Vec<K> = p
                        .keys
                        .iter()
                        .filter(|&&k| !r.contains(k))
                        .map(|&k| self.keys[k as usize].clone())
                        .collect();
                    if !vanished.is_empty() {
                        let obs = Observation {
                            kind: AnomalyKind::MonotonicReads,
                            agent: a,
                            other_agent: None,
                            at: r.response,
                            detail: format!(
                                "{} event(s) observed by {a} disappeared from its next read: \
                                 {vanished:?}",
                                vanished.len()
                            ),
                            witnesses: vanished,
                        };
                        self.mr_obs.push(((a, self.mr_seq), obs));
                        self.mr_seq += 1;
                    }
                }
            }
            self.agents.get_mut(&a).expect("read's agent exists").last_finalized = Some(idx);

            if self.parts.win_content || self.parts.win_order {
                self.window_step(a, idx);
            }
        }
    }

    /// One step of the per-pair window sweeps: agent `a`'s latest view
    /// just became read `idx`; re-evaluate every pair involving `a` at
    /// this read's response time.
    fn window_step(&mut self, a: AgentId, idx: u32) {
        let r_resp = self.reads[idx as usize].response;
        for (&b, bst) in &self.agents {
            if b == a {
                continue;
            }
            let Some(other_idx) = bst.last_finalized else { continue };
            let pair = if a < b { (a, b) } else { (b, a) };
            let (first, second) = if a < b {
                (&self.reads[idx as usize], &self.reads[other_idx as usize])
            } else {
                (&self.reads[other_idx as usize], &self.reads[idx as usize])
            };
            let st = self.pairs.entry(pair).or_default();
            if self.parts.win_content {
                let diverged = content_diverged(first, second);
                match (diverged, st.content_open) {
                    (true, None) => st.content_open = Some(r_resp),
                    (false, Some(start)) => {
                        st.content_closed.push((start, r_resp));
                        st.content_open = None;
                    }
                    _ => {}
                }
            }
            if self.parts.win_order {
                let diverged = inversion_ids(first, second).is_some();
                match (diverged, st.order_open) {
                    (true, None) => st.order_open = Some(r_resp),
                    (false, Some(start)) => {
                        st.order_closed.push((start, r_resp));
                        st.order_open = None;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Drains every deferred evaluation and assembles the final
    /// [`TestAnalysis`] — byte-identical to the batch pipeline's output
    /// on the same event stream.
    pub fn finish(mut self) -> TestAnalysis<K> {
        self.release_reads(None);
        self.finalize_write_deps(None);
        self.finalize_responded_reads(None);

        let mut observations = Vec::new();

        self.ryw_obs.sort_by_key(|(k, _)| *k);
        observations.extend(self.ryw_obs.into_iter().map(|(_, o)| o));

        self.mw_obs.sort_by_key(|(k, _)| *k);
        observations.extend(self.mw_obs.into_iter().map(|(_, o)| o));

        self.mr_obs.sort_by_key(|(k, _)| *k);
        observations.extend(self.mr_obs.into_iter().map(|(_, o)| o));

        if self.general_wfr {
            self.wfr_matches.sort_by_key(|m| (m.read, m.sort));
            let mut i = 0;
            while i < self.wfr_matches.len() {
                let read_idx = self.wfr_matches[i].read;
                let mut witnesses: Vec<K> = Vec::new();
                while i < self.wfr_matches.len() && self.wfr_matches[i].read == read_idx {
                    let m = &self.wfr_matches[i];
                    witnesses.push(self.keys[m.dep_key as usize].clone());
                    witnesses.push(self.keys[m.write_key as usize].clone());
                    i += 1;
                }
                let r = &self.reads[read_idx as usize];
                let agent = r.agent;
                observations.push(Observation {
                    kind: AnomalyKind::WritesFollowReads,
                    agent,
                    other_agent: None,
                    at: r.response,
                    detail: format!(
                        "read by {agent} sees write(s) without their read dependencies: \
                         {witnesses:?}"
                    ),
                    witnesses,
                });
            }
        } else {
            self.wfr_obs.sort_by_key(|(k, _)| *k);
            observations.extend(self.wfr_obs.into_iter().map(|(_, o)| o));
        }

        let agent_list: Vec<AgentId> = self.agents.keys().copied().collect();

        if self.parts.content {
            for (i, &a) in agent_list.iter().enumerate() {
                for &b in &agent_list[i + 1..] {
                    let Some(st) = self.pairs.get(&(a, b)) else { continue };
                    if let Some((_, x, y, at)) = &st.content_best {
                        let pair_count = st.content_count;
                        observations.push(Observation {
                            kind: AnomalyKind::ContentDivergence,
                            agent: a,
                            other_agent: Some(b),
                            at: *at,
                            detail: format!(
                                "{a} and {b} mutually diverge ({pair_count} read pair(s)): \
                                 {a} alone sees {x:?}, {b} alone sees {y:?}"
                            ),
                            witnesses: vec![x.clone(), y.clone()],
                        });
                    }
                }
            }
        }
        if self.parts.order {
            for (i, &a) in agent_list.iter().enumerate() {
                for &b in &agent_list[i + 1..] {
                    let Some(st) = self.pairs.get(&(a, b)) else { continue };
                    if let Some((_, x, y, at)) = &st.order_best {
                        let pair_count = st.order_count;
                        observations.push(Observation {
                            kind: AnomalyKind::OrderDivergence,
                            agent: a,
                            other_agent: Some(b),
                            at: *at,
                            detail: format!(
                                "{a} and {b} order {x:?}/{y:?} oppositely \
                                 ({pair_count} read pair(s))"
                            ),
                            witnesses: vec![x.clone(), y.clone()],
                        });
                    }
                }
            }
        }

        let mut content_windows = Vec::new();
        let mut order_windows = Vec::new();
        for (i, &a) in agent_list.iter().enumerate() {
            for &b in &agent_list[i + 1..] {
                let st = self.pairs.get(&(a, b));
                if self.parts.win_content {
                    content_windows.push(WindowAnalysis {
                        pair: (a, b),
                        kind: WindowKind::Content,
                        windows: st.map(|s| s.content_closed.clone()).unwrap_or_default(),
                        open_since: st.and_then(|s| s.content_open),
                    });
                }
                if self.parts.win_order {
                    order_windows.push(WindowAnalysis {
                        pair: (a, b),
                        kind: WindowKind::Order,
                        windows: st.map(|s| s.order_closed.clone()).unwrap_or_default(),
                        open_since: st.and_then(|s| s.order_open),
                    });
                }
            }
        }

        TestAnalysis { observations, content_windows, order_windows }
    }
}

/// The dense id of the first element of `a`'s sequence that `b` lacks —
/// the id-level mirror of the batch checker's `first_only_in`.
fn first_only_in(a: &ReadState, b: &ReadState) -> Option<u32> {
    a.keys.iter().find(|&&k| !b.contains(k)).copied()
}

/// Mutual content difference between two retained reads.
fn content_diverged(a: &ReadState, b: &ReadState) -> bool {
    a.keys.iter().any(|&x| !b.contains(x)) && b.keys.iter().any(|&y| !a.contains(y))
}

/// Id-level mirror of [`crate::checkers::order::inversion_between`]:
/// a witness pair `(x, y)` with `x` before `y` in `a` but `y` before `x`
/// in `b`, if any.
fn inversion_ids(a: &ReadState, b: &ReadState) -> Option<(u32, u32)> {
    let mut prev: Option<(u32, u32)> = None;
    for &k in &a.keys {
        if let Some(p2) = b.position(k) {
            if let Some((px, pp2)) = prev {
                if p2 < pp2 {
                    return Some((px, k));
                }
            }
            prev = Some((k, p2));
        }
    }
    None
}
