//! The operation trace a test produces.
//!
//! Every agent logs, for each operation, "the time when they occurred
//! (invocation and response times) and their output" (§IV). The harness maps
//! all local timestamps onto the coordinator's timeline using the estimated
//! clock deltas, then hands the merged log to the checkers as a
//! [`TestTrace`].

use conprobe_json::{member, FromJson, JsonError, JsonValue, ToJson};
use std::fmt;
use std::hash::Hash;

/// Marker trait for event key types usable by the checkers.
///
/// Blanket-implemented; you never implement this manually.
pub trait EventKey: Clone + Eq + Hash + Ord + fmt::Debug {}
impl<T: Clone + Eq + Hash + Ord + fmt::Debug> EventKey for T {}

/// Identifies an agent (client) in a test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub u32);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// An instant on the common, clock-corrected timeline (nanoseconds).
///
/// Signed: clock-delta correction can map an early local reading before the
/// coordinator's zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The timeline origin.
    pub const ZERO: Timestamp = Timestamp(0);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: i64) -> Self {
        Timestamp(ns)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        Timestamp(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self - other` in nanoseconds.
    pub const fn delta_nanos(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// What an operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind<K> {
    /// A write that created event `id`.
    Write {
        /// The event the write created.
        id: K,
    },
    /// A read that returned `seq`, in the order the service presented it.
    Read {
        /// The returned event sequence.
        seq: Vec<K>,
    },
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord<K> {
    /// The agent that issued the operation.
    pub agent: AgentId,
    /// Invocation time (corrected timeline).
    pub invoke: Timestamp,
    /// Response time (corrected timeline).
    pub response: Timestamp,
    /// The operation and its payload/output.
    pub kind: OpKind<K>,
}

impl<K> OpRecord<K> {
    /// True for write operations.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, OpKind::Write { .. })
    }

    /// True for read operations.
    pub fn is_read(&self) -> bool {
        matches!(self.kind, OpKind::Read { .. })
    }

    /// The returned sequence, if this is a read.
    pub fn read_seq(&self) -> Option<&[K]> {
        match &self.kind {
            OpKind::Read { seq } => Some(seq),
            OpKind::Write { .. } => None,
        }
    }

    /// The created event, if this is a write.
    pub fn write_id(&self) -> Option<&K> {
        match &self.kind {
            OpKind::Write { id } => Some(id),
            OpKind::Read { .. } => None,
        }
    }
}

/// The merged, time-corrected operation log of one test instance.
///
/// Operations are stored sorted by `(invoke, response)`; the accessors the
/// checkers use are derived views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestTrace<K> {
    ops: Vec<OpRecord<K>>,
}

impl<K: EventKey> TestTrace<K> {
    /// Builds a trace from raw records (any order).
    ///
    /// # Panics
    ///
    /// Panics if any record has `response < invoke` — that indicates a
    /// corrupted log rather than an anomaly.
    pub fn new(mut ops: Vec<OpRecord<K>>) -> Self {
        for op in &ops {
            assert!(
                op.response >= op.invoke,
                "operation response precedes invocation: {:?} < {:?}",
                op.response,
                op.invoke
            );
        }
        ops.sort_by_key(|o| (o.invoke, o.response));
        TestTrace { ops }
    }

    /// All operations, sorted by invocation time.
    pub fn ops(&self) -> &[OpRecord<K>] {
        &self.ops
    }

    /// The number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The distinct agents appearing in the trace, ascending.
    pub fn agents(&self) -> Vec<AgentId> {
        let mut v: Vec<AgentId> = self.ops.iter().map(|o| o.agent).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Writes issued by `agent`, in issue order, with their event keys.
    pub fn writes_by(&self, agent: AgentId) -> Vec<(&OpRecord<K>, &K)> {
        self.ops
            .iter()
            .filter(|o| o.agent == agent)
            .filter_map(|o| o.write_id().map(|id| (o, id)))
            .collect()
    }

    /// All writes in the trace, in issue order.
    pub fn writes(&self) -> Vec<(&OpRecord<K>, &K)> {
        self.ops.iter().filter_map(|o| o.write_id().map(|id| (o, id))).collect()
    }

    /// Reads issued by `agent`, in issue order.
    pub fn reads_by(&self, agent: AgentId) -> Vec<&OpRecord<K>> {
        self.ops.iter().filter(|o| o.agent == agent && o.is_read()).collect()
    }

    /// All reads in the trace, in issue order.
    pub fn reads(&self) -> Vec<&OpRecord<K>> {
        self.ops.iter().filter(|o| o.is_read()).collect()
    }

    /// Total number of read operations.
    pub fn read_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_read()).count()
    }

    /// Total number of write operations.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_write()).count()
    }
}

impl ToJson for AgentId {
    fn to_json(&self) -> JsonValue {
        self.0.to_json()
    }
}

impl FromJson for AgentId {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        u32::from_json(v).map(AgentId)
    }
}

impl ToJson for Timestamp {
    fn to_json(&self) -> JsonValue {
        self.0.to_json()
    }
}

impl FromJson for Timestamp {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        i64::from_json(v).map(Timestamp)
    }
}

impl<K: ToJson> ToJson for OpKind<K> {
    fn to_json(&self) -> JsonValue {
        match self {
            OpKind::Write { id } => JsonValue::Object(vec![(
                "Write".into(),
                JsonValue::Object(vec![("id".into(), id.to_json())]),
            )]),
            OpKind::Read { seq } => JsonValue::Object(vec![(
                "Read".into(),
                JsonValue::Object(vec![("seq".into(), seq.to_json())]),
            )]),
        }
    }
}

impl<K: FromJson> FromJson for OpKind<K> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        if let Some(w) = v.get("Write") {
            Ok(OpKind::Write { id: K::from_json(member(w, "id")?)? })
        } else if let Some(r) = v.get("Read") {
            Ok(OpKind::Read { seq: Vec::from_json(member(r, "seq")?)? })
        } else {
            Err(JsonError::schema("expected `Write` or `Read` variant"))
        }
    }
}

impl<K: ToJson> ToJson for OpRecord<K> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("agent".into(), self.agent.to_json()),
            ("invoke".into(), self.invoke.to_json()),
            ("response".into(), self.response.to_json()),
            ("kind".into(), self.kind.to_json()),
        ])
    }
}

impl<K: FromJson> FromJson for OpRecord<K> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(OpRecord {
            agent: AgentId::from_json(member(v, "agent")?)?,
            invoke: Timestamp::from_json(member(v, "invoke")?)?,
            response: Timestamp::from_json(member(v, "response")?)?,
            kind: OpKind::from_json(member(v, "kind")?)?,
        })
    }
}

impl<K: ToJson> ToJson for TestTrace<K> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![("ops".into(), self.ops.to_json())])
    }
}

impl<K: EventKey + FromJson> FromJson for TestTrace<K> {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let ops: Vec<OpRecord<K>> = Vec::from_json(member(v, "ops")?)?;
        for op in &ops {
            if op.response < op.invoke {
                return Err(JsonError::schema("operation response precedes invocation"));
            }
        }
        Ok(TestTrace::new(ops))
    }
}

/// Convenience builder for constructing traces in tests and examples.
#[derive(Debug, Clone, Default)]
pub struct TestTraceBuilder<K> {
    ops: Vec<OpRecord<K>>,
}

impl<K: EventKey> TestTraceBuilder<K> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TestTraceBuilder { ops: Vec::new() }
    }

    /// Records a write of `id` by `agent`.
    pub fn write(
        &mut self,
        agent: AgentId,
        invoke: Timestamp,
        response: Timestamp,
        id: K,
    ) -> &mut Self {
        self.ops.push(OpRecord { agent, invoke, response, kind: OpKind::Write { id } });
        self
    }

    /// Records a read returning `seq` by `agent`.
    pub fn read(
        &mut self,
        agent: AgentId,
        invoke: Timestamp,
        response: Timestamp,
        seq: Vec<K>,
    ) -> &mut Self {
        self.ops.push(OpRecord { agent, invoke, response, kind: OpKind::Read { seq } });
        self
    }

    /// Finishes the trace.
    pub fn build(&mut self) -> TestTrace<K> {
        TestTrace::new(std::mem::take(&mut self.ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn builder_sorts_by_invocation() {
        let mut b = TestTraceBuilder::new();
        b.read(AgentId(0), t(100), t(110), vec![1u32]);
        b.write(AgentId(0), t(0), t(10), 1u32);
        let trace = b.build();
        assert!(trace.ops()[0].is_write());
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.read_count(), 1);
        assert_eq!(trace.write_count(), 1);
    }

    #[test]
    fn accessors_filter_by_agent_and_kind() {
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(0), t(5), 1u32);
        b.write(AgentId(1), t(1), t(6), 2u32);
        b.read(AgentId(0), t(10), t(15), vec![1, 2]);
        let trace = b.build();
        assert_eq!(trace.agents(), vec![AgentId(0), AgentId(1)]);
        assert_eq!(trace.writes_by(AgentId(0)).len(), 1);
        assert_eq!(*trace.writes_by(AgentId(1))[0].1, 2);
        assert_eq!(trace.reads_by(AgentId(0)).len(), 1);
        assert!(trace.reads_by(AgentId(1)).is_empty());
        assert_eq!(trace.writes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "response precedes invocation")]
    fn rejects_negative_duration_ops() {
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(10), t(5), 1u32);
        let _ = b.build();
    }

    #[test]
    fn timestamps_support_negative_corrected_values() {
        let early = Timestamp::from_nanos(-5);
        assert!(early < Timestamp::ZERO);
        assert_eq!(early.delta_nanos(Timestamp::ZERO), -5);
        assert_eq!(Timestamp::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Timestamp::from_millis(1).to_string(), "0.001000s");
    }

    #[test]
    fn empty_trace() {
        let trace: TestTrace<u32> = TestTrace::new(vec![]);
        assert!(trace.is_empty());
        assert!(trace.agents().is_empty());
    }

    #[test]
    fn op_record_inspectors() {
        let w = OpRecord {
            agent: AgentId(0),
            invoke: t(0),
            response: t(1),
            kind: OpKind::Write { id: 9u32 },
        };
        let r = OpRecord {
            agent: AgentId(0),
            invoke: t(2),
            response: t(3),
            kind: OpKind::Read { seq: vec![9u32] },
        };
        assert_eq!(w.write_id(), Some(&9));
        assert_eq!(w.read_seq(), None);
        assert_eq!(r.read_seq().unwrap(), &[9]);
        assert_eq!(r.write_id(), None);
    }

    #[test]
    fn json_round_trip() {
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(0), t(5), 1u32).read(AgentId(1), t(6), t(9), vec![1u32]);
        let trace = b.build();
        let json = trace.to_json().to_compact();
        let back = TestTrace::<u32>::from_json(&conprobe_json::parse(&json).unwrap()).unwrap();
        assert_eq!(trace, back);
        // Corrupted logs are rejected at parse time, mirroring `TestTrace::new`.
        let bad = json.replace("\"invoke\":6000000", "\"invoke\":99000000");
        assert!(TestTrace::<u32>::from_json(&conprobe_json::parse(&bad).unwrap()).is_err());
    }
}
