//! Anomaly taxonomy and observation records.

use crate::trace::{AgentId, Timestamp};
use std::fmt;

/// The six anomalies of the paper's §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnomalyKind {
    /// A client's completed write is missing from its own later read.
    ReadYourWrites,
    /// A client's writes appear partially or out of issue order.
    MonotonicWrites,
    /// An event observed by a client disappears from its later read.
    MonotonicReads,
    /// A write is visible without the events its author had read before
    /// issuing it.
    WritesFollowReads,
    /// Two clients each see an event the other does not.
    ContentDivergence,
    /// Two clients see a pair of events in opposite orders.
    OrderDivergence,
}

impl AnomalyKind {
    /// All anomaly kinds, in the paper's presentation order.
    pub const ALL: [AnomalyKind; 6] = [
        AnomalyKind::ReadYourWrites,
        AnomalyKind::MonotonicWrites,
        AnomalyKind::MonotonicReads,
        AnomalyKind::WritesFollowReads,
        AnomalyKind::ContentDivergence,
        AnomalyKind::OrderDivergence,
    ];

    /// The four session-guarantee anomalies (§III.1).
    pub const SESSION: [AnomalyKind; 4] = [
        AnomalyKind::ReadYourWrites,
        AnomalyKind::MonotonicWrites,
        AnomalyKind::MonotonicReads,
        AnomalyKind::WritesFollowReads,
    ];

    /// The two divergence anomalies (§III.2).
    pub const DIVERGENCE: [AnomalyKind; 2] =
        [AnomalyKind::ContentDivergence, AnomalyKind::OrderDivergence];

    /// Short label used in figures ("RYW", "MW", …).
    pub fn short(&self) -> &'static str {
        match self {
            AnomalyKind::ReadYourWrites => "RYW",
            AnomalyKind::MonotonicWrites => "MW",
            AnomalyKind::MonotonicReads => "MR",
            AnomalyKind::WritesFollowReads => "WFR",
            AnomalyKind::ContentDivergence => "CD",
            AnomalyKind::OrderDivergence => "OD",
        }
    }
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AnomalyKind::ReadYourWrites => "read your writes",
            AnomalyKind::MonotonicWrites => "monotonic writes",
            AnomalyKind::MonotonicReads => "monotonic reads",
            AnomalyKind::WritesFollowReads => "writes follows reads",
            AnomalyKind::ContentDivergence => "content divergence",
            AnomalyKind::OrderDivergence => "order divergence",
        };
        f.write_str(name)
    }
}

/// One detected instance of an anomaly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation<K> {
    /// Which anomaly.
    pub kind: AnomalyKind,
    /// The agent that observed it (the reader whose view is anomalous). For
    /// divergence anomalies, the first agent of the pair.
    pub agent: AgentId,
    /// The second agent of a divergence pair, if applicable.
    pub other_agent: Option<AgentId>,
    /// Response time of the read at which the anomaly was observed.
    pub at: Timestamp,
    /// The events witnessing the violation (e.g. the missing write, or the
    /// inverted pair).
    pub witnesses: Vec<K>,
    /// Human-readable explanation.
    pub detail: String,
}

impl<K: fmt::Debug> fmt::Display for Observation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ {} by {}] {}", self.kind.short(), self.at, self.agent, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_sizes() {
        assert_eq!(AnomalyKind::ALL.len(), 6);
        assert_eq!(AnomalyKind::SESSION.len(), 4);
        assert_eq!(AnomalyKind::DIVERGENCE.len(), 2);
        // SESSION ∪ DIVERGENCE = ALL, disjoint.
        let mut all: Vec<_> =
            AnomalyKind::SESSION.iter().chain(AnomalyKind::DIVERGENCE.iter()).collect();
        all.sort();
        let mut expect: Vec<_> = AnomalyKind::ALL.iter().collect();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn labels_are_unique() {
        let shorts: std::collections::HashSet<_> =
            AnomalyKind::ALL.iter().map(|k| k.short()).collect();
        assert_eq!(shorts.len(), 6);
        assert_eq!(AnomalyKind::ReadYourWrites.to_string(), "read your writes");
    }

    #[test]
    fn observation_display() {
        let obs = Observation {
            kind: AnomalyKind::MonotonicReads,
            agent: AgentId(2),
            other_agent: None,
            at: Timestamp::from_millis(1500),
            witnesses: vec![7u32],
            detail: "event 7 disappeared".to_string(),
        };
        let s = obs.to_string();
        assert!(s.contains("MR"), "{s}");
        assert!(s.contains("agent2"), "{s}");
        assert!(s.contains("disappeared"), "{s}");
    }
}
