//! Write-visibility latency — a quantitative staleness metric.
//!
//! The paper's related work (Bailis et al.'s probabilistically bounded
//! staleness, Yu & Vahdat's conits) quantifies *how stale* weakly
//! consistent reads are; the paper itself only quantifies divergence
//! windows. This module adds the complementary measurement the same traces
//! support: for every write, how long until each agent first observed it —
//! the end-to-end visibility latency distribution, per (writer, reader)
//! pair.
//!
//! Latency is measured from the write's **response** (the service
//! acknowledged it) to the **response of the first read** by the observing
//! agent that contains the event. A write the agent never observed within
//! the trace is reported as [`Visibility::Never`] (right-censored).

use crate::trace::{AgentId, EventKey, TestTrace, Timestamp};

/// When (if ever) an agent first observed a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// First observed this many nanoseconds after the write's
    /// acknowledgement (negative values are clamped to zero: the read that
    /// revealed the event may straddle the write's completion).
    After(i64),
    /// Never observed within the trace (right-censored at trace end).
    Never,
}

impl Visibility {
    /// The latency in seconds, if observed.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Visibility::After(ns) => Some(*ns as f64 / 1e9),
            Visibility::Never => None,
        }
    }
}

/// The visibility of one write at one observing agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisibilityRecord<K> {
    /// The observed write.
    pub event: K,
    /// The agent that issued the write.
    pub writer: AgentId,
    /// The observing agent.
    pub reader: AgentId,
    /// Acknowledgement time of the write.
    pub written_at: Timestamp,
    /// Outcome.
    pub visibility: Visibility,
}

/// Computes the visibility latency of every write at every agent.
///
/// Agents with no reads contribute no records.
pub fn visibility<K: EventKey>(trace: &TestTrace<K>) -> Vec<VisibilityRecord<K>> {
    let mut out = Vec::new();
    let agents = trace.agents();
    // Hoisted per-agent read lists: deriving them per (write, agent) pair
    // made this O(writes × agents × reads) with a fresh Vec each time.
    let reads_of: Vec<_> = agents.iter().map(|a| trace.reads_by(*a)).collect();
    for (wop, id) in trace.writes() {
        for (&reader, reads) in agents.iter().zip(&reads_of) {
            if reads.is_empty() {
                continue;
            }
            let first_seen = reads
                .iter()
                .filter(|r| r.read_seq().expect("read").contains(id))
                .map(|r| r.response)
                .min();
            let visibility = match first_seen {
                Some(at) => Visibility::After(at.delta_nanos(wop.response).max(0)),
                None => Visibility::Never,
            };
            out.push(VisibilityRecord {
                event: id.clone(),
                writer: wop.agent,
                reader,
                written_at: wop.response,
                visibility,
            });
        }
    }
    out
}

/// The trace's inherent staleness bound: the smallest Δ such that no read
/// in the trace ever missed a write acknowledged more than Δ before the
/// read's invocation — Bailis et al.'s t-visibility, measured a posteriori.
///
/// `None` when some write was *never* observed by some reading agent (the
/// bound is right-censored and no finite Δ holds); `Some(0)` for a trace
/// where every read reflected every completed write.
pub fn staleness_bound_nanos<K: EventKey>(trace: &TestTrace<K>) -> Option<i64> {
    let mut bound = 0i64;
    let writes = trace.writes();
    for agent in trace.agents() {
        let reads = trace.reads_by(agent);
        if reads.is_empty() {
            continue;
        }
        for (wop, id) in &writes {
            // The worst miss: the latest read that still lacked this write.
            let mut observed_eventually = false;
            for r in &reads {
                let seq = r.read_seq().expect("read");
                if seq.contains(id) {
                    observed_eventually = true;
                } else if r.invoke > wop.response {
                    bound = bound.max(r.invoke.delta_nanos(wop.response));
                }
            }
            if !observed_eventually && reads.last().expect("non-empty").invoke > wop.response {
                return None; // censored: never observed
            }
        }
    }
    Some(bound)
}

/// Summary statistics of a set of visibility records.
///
/// The percentile fields are `None` when no pair was observed — a
/// distribution with no samples has no percentiles, and reporting `0.0`
/// would be indistinguishable from genuine zero-latency visibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisibilitySummary {
    /// Number of (write, reader) pairs considered.
    pub total: usize,
    /// Pairs where the write was eventually observed.
    pub observed: usize,
    /// Median latency over observed pairs, seconds (`None` if none).
    pub median_secs: Option<f64>,
    /// 95th percentile latency over observed pairs, seconds (`None` if
    /// none).
    pub p95_secs: Option<f64>,
    /// Maximum observed latency, seconds (`None` if none).
    pub max_secs: Option<f64>,
}

/// Summarizes records (optionally restricted with a filter first).
pub fn summarize<K>(records: &[VisibilityRecord<K>]) -> VisibilitySummary {
    let mut lat: Vec<f64> = records.iter().filter_map(|r| r.visibility.secs()).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| {
        if lat.is_empty() {
            None
        } else {
            Some(lat[((q * (lat.len() - 1) as f64).round() as usize).min(lat.len() - 1)])
        }
    };
    VisibilitySummary {
        total: records.len(),
        observed: lat.len(),
        median_secs: pick(0.5),
        p95_secs: pick(0.95),
        max_secs: lat.last().copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TestTraceBuilder;

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);

    #[test]
    fn measures_first_observation_latency() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(100), 1u32);
        b.read(A1, t(200), t(300), vec![]); // not yet
        b.read(A1, t(400), t(500), vec![1]); // first seen
        b.read(A1, t(600), t(700), vec![1]); // later sighting ignored
        let recs = visibility(&b.build());
        let to_a1 = recs.iter().find(|r| r.reader == A1).unwrap();
        assert_eq!(to_a1.visibility, Visibility::After(400_000_000));
        assert_eq!(to_a1.writer, A0);
        assert_eq!(to_a1.written_at, t(100));
    }

    #[test]
    fn never_observed_is_censored() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(100), 1u32);
        b.read(A1, t(200), t(300), vec![]);
        let recs = visibility(&b.build());
        let to_a1 = recs.iter().find(|r| r.reader == A1).unwrap();
        assert_eq!(to_a1.visibility, Visibility::Never);
        assert_eq!(to_a1.visibility.secs(), None);
    }

    #[test]
    fn own_writes_count_too() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(100), 1u32);
        b.read(A0, t(150), t(200), vec![1]);
        let recs = visibility(&b.build());
        assert_eq!(recs.len(), 1, "only agents with reads are counted");
        assert_eq!(recs[0].visibility, Visibility::After(100_000_000));
    }

    #[test]
    fn read_straddling_the_write_clamps_to_zero() {
        // The read started before the write completed but returned it.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(500), 1u32);
        b.read(A1, t(100), t(400), vec![1]);
        let recs = visibility(&b.build());
        assert_eq!(recs[0].visibility, Visibility::After(0));
    }

    #[test]
    fn summary_statistics() {
        let recs: Vec<VisibilityRecord<u32>> = vec![
            VisibilityRecord {
                event: 1,
                writer: A0,
                reader: A1,
                written_at: t(0),
                visibility: Visibility::After(1_000_000_000),
            },
            VisibilityRecord {
                event: 2,
                writer: A0,
                reader: A1,
                written_at: t(0),
                visibility: Visibility::After(3_000_000_000),
            },
            VisibilityRecord {
                event: 3,
                writer: A0,
                reader: A1,
                written_at: t(0),
                visibility: Visibility::Never,
            },
        ];
        let s = summarize(&recs);
        assert_eq!(s.total, 3);
        assert_eq!(s.observed, 2);
        // Quantile indices round half away from zero: the even-count
        // median resolves to the upper value.
        assert_eq!(s.median_secs, Some(3.0));
        assert_eq!(s.max_secs, Some(3.0));
    }

    #[test]
    fn staleness_bound_of_fresh_trace_is_zero() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.read(A1, t(20), t(30), vec![1]);
        assert_eq!(staleness_bound_nanos(&b.build()), Some(0));
    }

    #[test]
    fn staleness_bound_measures_worst_miss() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(100), 1u32);
        b.read(A1, t(500), t(600), vec![]); // missed at age 400 ms
        b.read(A1, t(900), t(1000), vec![1]); // finally visible
        assert_eq!(staleness_bound_nanos(&b.build()), Some(400_000_000));
    }

    #[test]
    fn staleness_bound_censored_when_never_observed() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(100), 1u32);
        b.read(A1, t(500), t(600), vec![]);
        assert_eq!(staleness_bound_nanos(&b.build()), None);
    }

    #[test]
    fn empty_summary_has_no_percentiles() {
        let s = summarize::<u32>(&[]);
        assert_eq!(s.total, 0);
        assert_eq!(s.observed, 0);
        assert_eq!(s.median_secs, None);
        assert_eq!(s.p95_secs, None);
        assert_eq!(s.max_secs, None);
    }

    #[test]
    fn all_censored_summary_has_no_percentiles() {
        // observed == 0 with total > 0 must be distinguishable from
        // genuine zero-latency visibility.
        let recs: Vec<VisibilityRecord<u32>> = vec![VisibilityRecord {
            event: 1,
            writer: A0,
            reader: A1,
            written_at: t(0),
            visibility: Visibility::Never,
        }];
        let s = summarize(&recs);
        assert_eq!((s.total, s.observed), (1, 0));
        assert_eq!(s.median_secs, None);
        assert_eq!(s.p95_secs, None);
        assert_eq!(s.max_secs, None);
    }

    #[test]
    fn staleness_bound_write_after_agents_last_read_is_uncensored() {
        // The write completes after A1's last read *invoked*: A1 never had
        // a chance to observe it, so the missing observation neither
        // censors the bound nor widens it.
        let mut b = TestTraceBuilder::new();
        b.read(A1, t(0), t(50), vec![]);
        b.write(A0, t(100), t(200), 1u32);
        assert_eq!(staleness_bound_nanos(&b.build()), Some(0));
    }

    #[test]
    fn staleness_bound_read_straddling_write_completion_does_not_count() {
        // The read invoked before the write's response: missing it says
        // nothing about staleness (the write may not have existed yet),
        // and a later read observes it — bound stays zero.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(500), 1u32);
        b.read(A1, t(100), t(600), vec![]); // invoked mid-write
        b.read(A1, t(700), t(800), vec![1]);
        assert_eq!(staleness_bound_nanos(&b.build()), Some(0));
    }

    #[test]
    fn staleness_bound_straddling_last_read_never_observed_is_uncensored() {
        // The only read missing the write straddles its completion, and no
        // read ever invoked after the write completed: not censored.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(500), 1u32);
        b.read(A1, t(100), t(600), vec![]);
        assert_eq!(staleness_bound_nanos(&b.build()), Some(0));
    }

    #[test]
    fn hoisted_read_lists_match_per_pair_derivation() {
        // Multi-writer, multi-reader trace: the hoisted per-agent read
        // lists must classify exactly as the original per-pair lookups.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(100), 1u32);
        b.write(A1, t(50), t(150), 2u32);
        b.read(A0, t(200), t(250), vec![1]);
        b.read(A0, t(400), t(450), vec![1, 2]);
        b.read(A1, t(300), t(350), vec![1, 2]);
        let recs = visibility(&b.build());
        assert_eq!(recs.len(), 4, "2 writes × 2 reading agents");
        let find = |w: AgentId, r: AgentId| {
            recs.iter().find(|x| x.writer == w && x.reader == r).unwrap().visibility
        };
        assert_eq!(find(A0, A0), Visibility::After(150_000_000)); // t=250 - t=100
        assert_eq!(find(A0, A1), Visibility::After(250_000_000)); // t=350 - t=100
        assert_eq!(find(A1, A0), Visibility::After(300_000_000)); // t=450 - t=150
        assert_eq!(find(A1, A1), Visibility::After(200_000_000)); // t=350 - t=150
    }
}
