//! ASCII timeline rendering of a test trace — the quickest way to *see*
//! what a test did and where the anomalies sit.
//!
//! One row per agent; time flows left to right over a fixed-width canvas.
//! `w` marks a write invocation, `r` a read, `!` a read at which at least
//! one anomaly was observed. A trailing legend lists the anomalies in
//! chronological order.

use crate::anomaly::Observation;
use crate::trace::{EventKey, TestTrace, Timestamp};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders `trace` (and optionally the observations from an analysis) to a
/// fixed-width ASCII timeline.
///
/// `width` is the number of time columns (clamped to at least 10).
pub fn render<K: EventKey>(
    trace: &TestTrace<K>,
    observations: &[Observation<K>],
    width: usize,
) -> String {
    let width = width.max(10);
    let mut out = String::new();
    if trace.is_empty() {
        return "(empty trace)\n".to_string();
    }
    let start = trace.ops().iter().map(|o| o.invoke).min().expect("non-empty");
    let end = trace.ops().iter().map(|o| o.response).max().expect("non-empty");
    let span = (end.delta_nanos(start)).max(1) as f64;
    let col = |at: Timestamp| -> usize {
        (((at.delta_nanos(start)) as f64 / span) * (width - 1) as f64).round() as usize
    };

    // Anomalous read positions: (agent, response time).
    let marks: HashSet<(u32, i64)> =
        observations.iter().map(|o| (o.agent.0, o.at.as_nanos())).collect();

    for agent in trace.agents() {
        let mut row = vec![b'.'; width];
        for op in trace.ops().iter().filter(|o| o.agent == agent) {
            let c = col(op.response);
            let glyph = if op.is_write() {
                b'w'
            } else if marks.contains(&(agent.0, op.response.as_nanos())) {
                b'!'
            } else {
                b'r'
            };
            // Writes and anomalies win over plain reads on collisions.
            if row[c] == b'.' || glyph != b'r' {
                row[c] = glyph;
            }
        }
        let _ = writeln!(out, "{:<8}|{}|", agent.to_string(), String::from_utf8(row).unwrap());
    }
    let _ = writeln!(out, "{:<8} {}..{}  (w=write, r=read, !=anomalous read)", "time", start, end);
    if !observations.is_empty() {
        let _ = writeln!(out, "anomalies ({}):", observations.len());
        let mut sorted: Vec<&Observation<K>> = observations.iter().collect();
        sorted.sort_by_key(|o| o.at);
        for o in sorted.iter().take(20) {
            let _ = writeln!(out, "  {o}");
        }
        if sorted.len() > 20 {
            let _ = writeln!(out, "  … and {} more", sorted.len() - 20);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AgentId, TestTraceBuilder};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let trace: TestTrace<u32> = TestTrace::new(vec![]);
        assert_eq!(render(&trace, &[], 40), "(empty trace)\n");
    }

    #[test]
    fn writes_and_reads_are_plotted_per_agent() {
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(0), t(0), 1u32);
        b.read(AgentId(1), t(500), t(500), vec![1]);
        b.read(AgentId(1), t(1000), t(1000), vec![1]);
        let s = render(&b.build(), &[], 21);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("agent0"));
        assert!(lines[0].contains("|w"), "{s}");
        assert!(lines[1].starts_with("agent1"));
        assert_eq!(lines[1].matches('r').count(), 2, "{s}");
        // The second agent's last read lands in the final column.
        assert!(lines[1].trim_end().ends_with("r|"), "{s}");
    }

    #[test]
    fn anomalous_reads_are_highlighted() {
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(0), t(10), 1u32);
        b.read(AgentId(0), t(500), t(600), vec![]);
        let trace = b.build();
        let obs = crate::checkers::check_read_your_writes(&trace);
        assert_eq!(obs.len(), 1);
        let s = render(&trace, &obs, 30);
        assert!(s.contains('!'), "{s}");
        assert!(s.contains("anomalies (1):"), "{s}");
        assert!(s.contains("RYW"), "{s}");
    }

    #[test]
    fn width_is_clamped() {
        let mut b = TestTraceBuilder::new();
        b.read(AgentId(0), t(0), t(0), vec![1u32]);
        let s = render(&b.build(), &[], 1);
        // 10-column minimum.
        assert!(s.lines().next().unwrap().len() >= 12, "{s}");
    }

    #[test]
    fn long_observation_lists_are_truncated() {
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(0), t(5), 1u32);
        for i in 0..30 {
            b.read(AgentId(0), t(10 + i * 10), t(15 + i * 10), vec![]);
        }
        let trace = b.build();
        let obs = crate::checkers::check_read_your_writes(&trace);
        assert_eq!(obs.len(), 30);
        let s = render(&trace, &obs, 60);
        assert!(s.contains("… and 10 more"), "{s}");
    }
}
