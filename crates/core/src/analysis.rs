//! Whole-test analysis: run every checker, aggregate per test.

use crate::anomaly::{AnomalyKind, Observation};
use crate::checkers::WfrMode;
use crate::stream::StreamingAnalyzer;
use crate::trace::{AgentId, EventKey, TestTrace};
use crate::window::{WindowAnalysis, WindowKind};
use std::collections::BTreeSet;

/// Configuration for [`analyze`].
#[derive(Debug, Clone)]
pub struct CheckerConfig<K> {
    /// Dependency relation for the Writes Follows Reads checker.
    pub wfr_mode: WfrMode<K>,
    /// Whether to compute divergence windows (presence checkers always run).
    pub compute_windows: bool,
}

impl<K> Default for CheckerConfig<K> {
    fn default() -> Self {
        CheckerConfig { wfr_mode: WfrMode::General, compute_windows: true }
    }
}

impl<K> CheckerConfig<K> {
    /// Test 1 configuration with the paper's trigger pairs.
    pub fn with_trigger_pairs(pairs: Vec<(K, K)>) -> Self {
        CheckerConfig { wfr_mode: WfrMode::TriggerPairs(pairs), compute_windows: true }
    }
}

/// The complete analysis of one test instance's trace.
#[derive(Debug, Clone)]
pub struct TestAnalysis<K> {
    /// Observations of all anomalies, in checker order.
    pub observations: Vec<Observation<K>>,
    /// Content-divergence windows per agent pair.
    pub content_windows: Vec<WindowAnalysis>,
    /// Order-divergence windows per agent pair.
    pub order_windows: Vec<WindowAnalysis>,
}

impl<K: EventKey> TestAnalysis<K> {
    /// Observations of a particular anomaly kind.
    pub fn of_kind(&self, kind: AnomalyKind) -> Vec<&Observation<K>> {
        self.observations.iter().filter(|o| o.kind == kind).collect()
    }

    /// Number of observations of `kind`.
    pub fn count(&self, kind: AnomalyKind) -> usize {
        self.observations.iter().filter(|o| o.kind == kind).count()
    }

    /// Number of observations of `kind` made by `agent` (the reader).
    pub fn count_by_agent(&self, kind: AnomalyKind, agent: AgentId) -> usize {
        self.observations.iter().filter(|o| o.kind == kind && o.agent == agent).count()
    }

    /// Whether any observation of `kind` exists.
    pub fn has(&self, kind: AnomalyKind) -> bool {
        self.observations.iter().any(|o| o.kind == kind)
    }

    /// Whether the trace is anomaly-free.
    pub fn is_clean(&self) -> bool {
        self.observations.is_empty()
    }

    /// The set of agents that observed `kind` (keyed on the reader, as in
    /// the paper's per-location correlation figures). For divergence
    /// anomalies both agents of the pair are included, since both perceive
    /// the divergence.
    pub fn agents_observing(&self, kind: AnomalyKind) -> BTreeSet<AgentId> {
        let mut set = BTreeSet::new();
        for o in self.observations.iter().filter(|o| o.kind == kind) {
            set.insert(o.agent);
            if matches!(kind, AnomalyKind::ContentDivergence | AnomalyKind::OrderDivergence) {
                if let Some(other) = o.other_agent {
                    set.insert(other);
                }
            }
        }
        set
    }

    /// Whether a specific unordered agent pair exhibited `kind`
    /// (divergence anomalies only — session anomalies are per-agent).
    pub fn pair_has(&self, kind: AnomalyKind, a: AgentId, b: AgentId) -> bool {
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.observations.iter().any(|o| {
            o.kind == kind && o.other_agent.is_some() && (o.agent, o.other_agent.unwrap()) == pair
        })
    }

    /// The content or order windows for one pair, if computed.
    pub fn pair_windows(
        &self,
        kind: WindowKind,
        a: AgentId,
        b: AgentId,
    ) -> Option<&WindowAnalysis> {
        let pair = if a <= b { (a, b) } else { (b, a) };
        let list = match kind {
            WindowKind::Content => &self.content_windows,
            WindowKind::Order => &self.order_windows,
        };
        list.iter().find(|w| w.pair == pair)
    }
}

/// Runs every checker (plus window computation) over `trace`.
///
/// One incremental pass of the [`StreamingAnalyzer`] evaluates all six
/// presence checkers and both window sweeps simultaneously; each event of
/// the trace is pushed exactly once and observation order matches the
/// historical checker order (RYW, MW, MR, WFR, content, order).
pub fn analyze<K: EventKey>(trace: &TestTrace<K>, config: &CheckerConfig<K>) -> TestAnalysis<K> {
    let mut s = StreamingAnalyzer::new(config);
    for op in trace.ops() {
        s.push_event(op);
    }
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);

    /// A strongly consistent execution: all checkers must stay silent.
    #[test]
    fn clean_linearizable_trace() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.read(A0, t(20), t(30), vec![1]);
        b.read(A1, t(20), t(30), vec![1]);
        b.write(A1, t(40), t(50), 2);
        b.read(A0, t(60), t(70), vec![1, 2]);
        b.read(A1, t(60), t(70), vec![1, 2]);
        let analysis = analyze(&b.build(), &CheckerConfig::default());
        assert!(analysis.is_clean(), "{:?}", analysis.observations);
        assert!(analysis.content_windows.iter().all(|w| !w.any_divergence()));
    }

    /// A deliberately pathological trace that triggers every anomaly kind.
    #[test]
    fn kitchen_sink_trace_triggers_everything() {
        let mut b = TestTraceBuilder::new();
        // A0 writes 1 then 2.
        b.write(A0, t(0), t(10), 1u32);
        b.write(A0, t(20), t(30), 2);
        // A0's read misses its own write 1 and shows 2 → RYW + MW.
        b.read(A0, t(40), t(50), vec![2]);
        // A0 then sees both; later 2 disappears → MR.
        b.read(A0, t(60), t(70), vec![1, 2]);
        b.read(A0, t(80), t(90), vec![1]);
        // A1 reads 1 (a dependency), writes 3.
        b.read(A1, t(60), t(70), vec![1]);
        b.write(A1, t(80), t(90), 3);
        // A1 sees (2,1) while A0 saw (1,2) → order divergence; A1 sees 3
        // without 1 later → WFR; mutual content difference vs A0's (1).
        b.read(A1, t(100), t(110), vec![2, 1]);
        b.read(A1, t(120), t(130), vec![3, 2]);
        let analysis = analyze(&b.build(), &CheckerConfig::default());
        for kind in AnomalyKind::ALL {
            assert!(analysis.has(kind), "missing {kind}");
        }
        assert!(!analysis.is_clean());
    }

    #[test]
    fn counts_and_agent_sets() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.read(A0, t(20), t(30), vec![]);
        b.read(A0, t(40), t(50), vec![]);
        let analysis = analyze(&b.build(), &CheckerConfig::default());
        assert_eq!(analysis.count(AnomalyKind::ReadYourWrites), 2);
        assert_eq!(analysis.count_by_agent(AnomalyKind::ReadYourWrites, A0), 2);
        assert_eq!(analysis.count_by_agent(AnomalyKind::ReadYourWrites, A1), 0);
        let set = analysis.agents_observing(AnomalyKind::ReadYourWrites);
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![A0]);
    }

    #[test]
    fn divergence_pair_queries() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A1, t(0), t(12), vec![2]);
        let analysis = analyze(&b.build(), &CheckerConfig::default());
        assert!(analysis.pair_has(AnomalyKind::ContentDivergence, A0, A1));
        assert!(analysis.pair_has(AnomalyKind::ContentDivergence, A1, A0));
        assert!(!analysis.pair_has(AnomalyKind::OrderDivergence, A0, A1));
        let w = analysis.pair_windows(WindowKind::Content, A1, A0).unwrap();
        assert!(w.any_divergence());
        // Both agents of a divergence pair perceive it.
        let set = analysis.agents_observing(AnomalyKind::ContentDivergence);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn windows_can_be_disabled() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        let config = CheckerConfig { compute_windows: false, ..Default::default() };
        let analysis = analyze(&b.build(), &config);
        assert!(analysis.content_windows.is_empty());
        assert!(analysis.order_windows.is_empty());
    }

    #[test]
    fn trigger_pair_config_constructor() {
        let config = CheckerConfig::with_trigger_pairs(vec![(2u32, 3u32)]);
        assert!(matches!(config.wfr_mode, WfrMode::TriggerPairs(ref p) if p.len() == 1));
        assert!(config.compute_windows);
    }
}
