//! Minimal deterministic pseudo-randomness for tests.
//!
//! The workspace builds offline, so randomized tests cannot use an external
//! property-testing crate. This tiny splitmix64 generator gives core (and
//! the crates downstream of it) reproducible pseudo-random inputs: each test
//! fixes a seed, loops over a few hundred generated cases, and reports the
//! case index on failure, which replays exactly.

/// A splitmix64 stream; good enough statistical quality for test-case
/// generation and fully portable.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Uniform draw in `[lo, hi)` as `usize`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            assert!(a.range(3, 9) < 9);
            assert!(a.range(3, 9) >= 3);
            assert!(a.unit() < 1.0);
        }
    }
}
