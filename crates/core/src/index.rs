//! A shared, precomputed view of a [`TestTrace`] for the checkers.
//!
//! Every checker and both window sweeps need the same derived data: the
//! agent list, each agent's reads (in trace and in response order), each
//! agent's writes, and fast membership/position lookups into each read's
//! returned sequence. Before this module each checker re-derived those
//! views by scanning `trace.ops()` — per agent, per pair, and in the
//! pairwise sweeps per *read pair* — and hashed full event keys on every
//! membership test.
//!
//! [`TraceIndex`] computes all of it once per analysis:
//!
//! * Event keys are **interned** into dense `u32` ids in first-appearance
//!   order, so every later lookup is an array index instead of a hash of
//!   the (potentially wide) key type.
//! * Each read gets a [`ReadView`] with its interned sequence and a
//!   positions array indexed by dense key id (`u32::MAX` = absent), giving
//!   O(1) membership and position tests.
//! * Per-agent read/write lists are materialized once, in trace order and
//!   (for reads) response order — the two orders the checkers consume.
//!
//! Memory is `reads × key_count` u32s for the position arrays, which is
//! small for the paper's workloads (hundreds of reads, tens of writes).
//!
//! [`crate::analysis::analyze`] builds one index and hands it to every
//! checker's `check_indexed` entry point; the per-module `check(trace)`
//! functions remain as thin wrappers that build a private index.

use crate::trace::{AgentId, EventKey, OpRecord, TestTrace};
use std::collections::HashMap;

/// Sentinel in a [`ReadView`] positions array: the key is absent.
const ABSENT: u32 = u32::MAX;

/// One read operation, with its sequence interned for O(1) lookups.
#[derive(Debug)]
pub struct ReadView<'t, K> {
    /// The underlying operation record.
    pub op: &'t OpRecord<K>,
    /// The returned sequence, as logged (for witness extraction).
    pub seq: &'t [K],
    /// Dense key id of each element of `seq`, in sequence order.
    keys: Vec<u32>,
    /// Position of each dense key id in `seq` (`u32::MAX` = absent).
    /// For duplicated elements the *last* occurrence wins, matching the
    /// overwrite semantics of the per-read hash maps this replaces.
    positions: Vec<u32>,
}

impl<K> ReadView<'_, K> {
    /// Dense key ids of the returned sequence, in sequence order.
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Whether the read's sequence contains the key.
    pub fn contains(&self, key: u32) -> bool {
        self.positions.get(key as usize).is_some_and(|&p| p != ABSENT)
    }

    /// The key's position in the sequence (last occurrence), if present.
    pub fn position(&self, key: u32) -> Option<u32> {
        self.positions.get(key as usize).copied().filter(|&p| p != ABSENT)
    }
}

/// One write operation with its interned event key.
#[derive(Debug)]
pub struct WriteView<'t, K> {
    /// The underlying operation record.
    pub op: &'t OpRecord<K>,
    /// The event the write created.
    pub id: &'t K,
    /// Dense id of `id`.
    pub key: u32,
}

/// The precomputed derived views of one trace. See the module docs.
#[derive(Debug)]
pub struct TraceIndex<'t, K> {
    /// Every operation in trace order (the stream the index was built from).
    ops: &'t [OpRecord<K>],
    /// Distinct agents, ascending.
    agents: Vec<AgentId>,
    /// Every read in trace order.
    reads: Vec<ReadView<'t, K>>,
    /// Indices into `reads`, sorted by response time (stable, so ties keep
    /// trace order — the same order a stable sort of a filtered list gives).
    reads_by_response: Vec<u32>,
    /// Per agent (position in `agents`): indices into `reads`, trace order.
    reads_of: Vec<Vec<u32>>,
    /// Per agent: indices into `reads`, response order.
    reads_of_by_response: Vec<Vec<u32>>,
    /// Per agent: writes in trace (issue) order.
    writes_of: Vec<Vec<WriteView<'t, K>>>,
    /// Intern table: event key → dense id, in first-appearance order.
    key_ids: HashMap<&'t K, u32>,
}

impl<'t, K: EventKey> TraceIndex<'t, K> {
    /// Builds the index with one pass over the trace (plus per-agent
    /// response-order sorts).
    pub fn new(trace: &'t TestTrace<K>) -> Self {
        let agents = trace.agents();
        let agent_pos: HashMap<AgentId, usize> =
            agents.iter().enumerate().map(|(i, &a)| (a, i)).collect();

        let mut key_ids: HashMap<&'t K, u32> = HashMap::new();
        fn intern<'t, K: EventKey>(key_ids: &mut HashMap<&'t K, u32>, k: &'t K) {
            let next = key_ids.len() as u32;
            key_ids.entry(k).or_insert(next);
        }

        // First pass: intern every key (writes and read elements, op order).
        for op in trace.ops() {
            if let Some(id) = op.write_id() {
                intern(&mut key_ids, id);
            } else if let Some(seq) = op.read_seq() {
                for k in seq {
                    intern(&mut key_ids, k);
                }
            }
        }
        let key_count = key_ids.len();

        let mut reads = Vec::new();
        let mut reads_of = vec![Vec::new(); agents.len()];
        let mut writes_of: Vec<Vec<WriteView<'t, K>>> =
            (0..agents.len()).map(|_| Vec::new()).collect();
        for op in trace.ops() {
            let ai = agent_pos[&op.agent];
            if let Some(id) = op.write_id() {
                writes_of[ai].push(WriteView { op, id, key: key_ids[id] });
            } else if let Some(seq) = op.read_seq() {
                let keys: Vec<u32> = seq.iter().map(|k| key_ids[k]).collect();
                let mut positions = vec![ABSENT; key_count];
                for (i, &k) in keys.iter().enumerate() {
                    positions[k as usize] = i as u32;
                }
                let ri = reads.len() as u32;
                reads.push(ReadView { op, seq, keys, positions });
                reads_of[ai].push(ri);
            }
        }

        let mut reads_by_response: Vec<u32> = (0..reads.len() as u32).collect();
        reads_by_response.sort_by_key(|&i| reads[i as usize].op.response);
        let reads_of_by_response = reads_of
            .iter()
            .map(|list| {
                let mut sorted = list.clone();
                sorted.sort_by_key(|&i| reads[i as usize].op.response);
                sorted
            })
            .collect();

        TraceIndex {
            ops: trace.ops(),
            agents,
            reads,
            reads_by_response,
            reads_of,
            reads_of_by_response,
            writes_of,
            key_ids,
        }
    }

    /// Every operation in trace order — the event stream the index was
    /// built from, exposed so batch entry points can replay it through
    /// [`crate::stream::StreamingAnalyzer`].
    pub fn ops(&self) -> &'t [OpRecord<K>] {
        self.ops
    }

    /// Distinct agents in the trace, ascending.
    pub fn agents(&self) -> &[AgentId] {
        &self.agents
    }

    /// Number of distinct event keys.
    pub fn key_count(&self) -> usize {
        self.key_ids.len()
    }

    /// The dense id of `key`, if it appears anywhere in the trace.
    pub fn key_id(&self, key: &K) -> Option<u32> {
        self.key_ids.get(key).copied()
    }

    /// Every read, in trace order.
    pub fn reads(&self) -> &[ReadView<'t, K>] {
        &self.reads
    }

    /// Every read, in response order (ties keep trace order).
    pub fn reads_by_response(&self) -> impl Iterator<Item = &ReadView<'t, K>> {
        self.reads_by_response.iter().map(|&i| &self.reads[i as usize])
    }

    fn agent_index(&self, agent: AgentId) -> Option<usize> {
        self.agents.binary_search(&agent).ok()
    }

    /// `agent`'s reads in trace (issue) order.
    pub fn reads_of(&self, agent: AgentId) -> impl Iterator<Item = &ReadView<'t, K>> {
        self.agent_index(agent)
            .map(|ai| self.reads_of[ai].as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.reads[i as usize])
    }

    /// `agent`'s reads in response order (ties keep trace order).
    pub fn reads_of_by_response(&self, agent: AgentId) -> impl Iterator<Item = &ReadView<'t, K>> {
        self.agent_index(agent)
            .map(|ai| self.reads_of_by_response[ai].as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.reads[i as usize])
    }

    /// `agent`'s writes in issue order.
    pub fn writes_of(&self, agent: AgentId) -> &[WriteView<'t, K>] {
        self.agent_index(agent).map(|ai| self.writes_of[ai].as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);

    fn sample() -> TestTrace<u32> {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.write(A1, t(5), t(15), 2u32);
        b.read(A0, t(20), t(90), vec![1, 2]); // slow read, answered last
        b.read(A0, t(30), t(40), vec![1]);
        b.read(A1, t(30), t(40), vec![2, 1]);
        b.build()
    }

    #[test]
    fn views_mirror_the_trace() {
        let trace = sample();
        let ix = TraceIndex::new(&trace);
        assert_eq!(ix.agents(), &[A0, A1]);
        assert_eq!(ix.key_count(), 2);
        assert_eq!(ix.reads().len(), 3);
        assert_eq!(ix.writes_of(A0).len(), 1);
        assert_eq!(*ix.writes_of(A0)[0].id, 1);
        assert_eq!(ix.writes_of(A1)[0].key, ix.key_id(&2).unwrap());
        assert_eq!(ix.reads_of(A0).count(), 2);
        assert_eq!(ix.reads_of(A1).count(), 1);
        assert_eq!(ix.key_id(&99), None);
    }

    #[test]
    fn positions_match_sequence_order() {
        let trace = sample();
        let ix = TraceIndex::new(&trace);
        let k1 = ix.key_id(&1).unwrap();
        let k2 = ix.key_id(&2).unwrap();
        let r = ix.reads_of(A1).next().unwrap(); // saw [2, 1]
        assert_eq!(r.position(k2), Some(0));
        assert_eq!(r.position(k1), Some(1));
        assert!(r.contains(k1) && r.contains(k2));
        assert!(!r.contains(u32::MAX));
        assert_eq!(r.keys(), &[k2, k1]);
        assert_eq!(r.seq, &[2, 1]);
    }

    #[test]
    fn response_order_differs_from_trace_order() {
        let trace = sample();
        let ix = TraceIndex::new(&trace);
        // Trace order: the slow (invoke 20, response 90) read comes first.
        let trace_first = ix.reads_of(A0).next().unwrap();
        assert_eq!(trace_first.op.response, t(90));
        // Response order: the fast (invoke 30, response 40) read comes first.
        let resp_first = ix.reads_of_by_response(A0).next().unwrap();
        assert_eq!(resp_first.op.response, t(40));
        // Global response order interleaves agents, ties in trace order.
        let order: Vec<Timestamp> = ix.reads_by_response().map(|r| r.op.response).collect();
        assert_eq!(order, vec![t(40), t(40), t(90)]);
    }

    #[test]
    fn duplicate_elements_keep_last_position() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![7u32, 8, 7]);
        let trace = b.build();
        let ix = TraceIndex::new(&trace);
        let k7 = ix.key_id(&7).unwrap();
        assert_eq!(ix.reads()[0].position(k7), Some(2));
        assert_eq!(ix.reads()[0].keys().len(), 3);
    }

    #[test]
    fn unknown_agent_yields_empty_views() {
        let trace = sample();
        let ix = TraceIndex::new(&trace);
        assert_eq!(ix.reads_of(AgentId(9)).count(), 0);
        assert!(ix.writes_of(AgentId(9)).is_empty());
    }
}
