//! Divergence windows — the paper's quantitative metrics (§III.3).
//!
//! *"When a set of clients issue a set of write operations, the divergence
//! window is the amount of time during which the condition that defines the
//! anomaly (either content or order divergence) remains valid, as perceived
//! by the various clients."*
//!
//! The condition is evaluated over each client's **most recent read**: a
//! sweep over the merged, clock-corrected read timeline of an agent pair
//! tracks when the pair's latest views diverge and when they re-converge.
//! The paper's zero-window subtlety falls out naturally: if agent 1 reads
//! (M1) then (M1,M2), and only afterwards agent 2 reads (M2) then (M1,M2),
//! the latest views never diverge simultaneously and the computed window is
//! zero even though a content-divergence anomaly exists.
//!
//! A window that is still open when the trace ends means the pair never
//! re-converged during the test; the paper reports those separately ("These
//! results exclude runs where convergence was not reached during the test")
//! — here exposed as [`WindowAnalysis::open_since`].

use crate::analysis::CheckerConfig;
use crate::index::TraceIndex;
use crate::stream::{StreamPart, StreamingAnalyzer};
use crate::trace::{AgentId, EventKey, TestTrace, Timestamp};

/// Which divergence condition a window measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Mutual content difference between the latest views.
    Content,
    /// An inverted common pair between the latest views.
    Order,
}

/// The divergence windows of one agent pair in one test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowAnalysis {
    /// The agent pair (first < second).
    pub pair: (AgentId, AgentId),
    /// Content or order.
    pub kind: WindowKind,
    /// Closed windows `(start, end)` in sweep order.
    pub windows: Vec<(Timestamp, Timestamp)>,
    /// If the condition still held at the last read, when it started.
    pub open_since: Option<Timestamp>,
}

impl WindowAnalysis {
    /// Largest closed window, in nanoseconds.
    pub fn largest_nanos(&self) -> Option<i64> {
        self.windows.iter().map(|(s, e)| e.delta_nanos(*s)).max()
    }

    /// Sum of all closed windows, in nanoseconds.
    pub fn total_nanos(&self) -> i64 {
        self.windows.iter().map(|(s, e)| e.delta_nanos(*s)).sum()
    }

    /// Whether the pair had re-converged by the end of the trace.
    pub fn converged(&self) -> bool {
        self.open_since.is_none()
    }

    /// Whether any divergence (closed or open) was observed at all.
    pub fn any_divergence(&self) -> bool {
        !self.windows.is_empty() || self.open_since.is_some()
    }
}

fn window_part(kind: WindowKind) -> StreamPart {
    match kind {
        WindowKind::Content => StreamPart::ContentWindows,
        WindowKind::Order => StreamPart::OrderWindows,
    }
}

fn windows_of<K: EventKey>(index: &TraceIndex<'_, K>, kind: WindowKind) -> Vec<WindowAnalysis> {
    let mut s = StreamingAnalyzer::single(&CheckerConfig::default(), window_part(kind));
    for op in index.ops() {
        s.push_event(op);
    }
    let analysis = s.finish();
    match kind {
        WindowKind::Content => analysis.content_windows,
        WindowKind::Order => analysis.order_windows,
    }
}

/// Computes the divergence windows of `kind` between agents `a` and `b`.
///
/// The sweep merges both agents' reads by response time (ties broken by the
/// trace's stable order) and evaluates the divergence condition on the pair
/// of most-recent views after every read.
pub fn windows<K: EventKey>(
    trace: &TestTrace<K>,
    a: AgentId,
    b: AgentId,
    kind: WindowKind,
) -> WindowAnalysis {
    windows_indexed(&TraceIndex::new(trace), a, b, kind)
}

/// [`windows`] against a prebuilt [`TraceIndex`] — a single streaming pass
/// over the indexed event stream (via
/// [`StreamingAnalyzer`](crate::stream::StreamingAnalyzer)) from which the
/// requested pair's analysis is extracted. A pair with no reads in the
/// trace yields an empty, converged analysis.
pub fn windows_indexed<K: EventKey>(
    index: &TraceIndex<'_, K>,
    a: AgentId,
    b: AgentId,
    kind: WindowKind,
) -> WindowAnalysis {
    let pair = if a <= b { (a, b) } else { (b, a) };
    windows_of(index, kind).into_iter().find(|w| w.pair == pair).unwrap_or(WindowAnalysis {
        pair,
        kind,
        windows: Vec::new(),
        open_since: None,
    })
}

/// Computes windows of `kind` for every agent pair in the trace.
pub fn all_pair_windows<K: EventKey>(
    trace: &TestTrace<K>,
    kind: WindowKind,
) -> Vec<WindowAnalysis> {
    all_pair_windows_indexed(&TraceIndex::new(trace), kind)
}

/// [`all_pair_windows`] against a prebuilt [`TraceIndex`] — one streaming
/// pass shared by every agent pair, instead of a sweep per pair.
pub fn all_pair_windows_indexed<K: EventKey>(
    index: &TraceIndex<'_, K>,
    kind: WindowKind,
) -> Vec<WindowAnalysis> {
    windows_of(index, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TestTraceBuilder;

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);

    #[test]
    fn simple_content_window() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(100), vec![1u32]); // A0 sees M1
        b.read(A1, t(0), t(200), vec![2]); // A1 sees M2 → mutual divergence opens
        b.read(A0, t(300), t(400), vec![1, 3]); // still mutual (3 vs 2)
        b.read(A1, t(500), t(600), vec![1, 2, 3]); // A1 superset → closes
        let w = windows(&b.build(), A0, A1, WindowKind::Content);
        assert_eq!(w.windows, vec![(t(200), t(600))]);
        assert!(w.converged());
        assert_eq!(w.largest_nanos(), Some(400_000_000));
    }

    #[test]
    fn paper_zero_window_example() {
        // agent 1 reads (M1) at t1; (M1,M2) at t2; agent 2 reads (M2) at
        // t3; (M1,M2) at t4 — anomaly exists but the window is zero.
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A0, t(20), t(30), vec![1, 2]);
        b.read(A1, t(40), t(50), vec![2]);
        b.read(A1, t(60), t(70), vec![1, 2]);
        let w = windows(&b.build(), A0, A1, WindowKind::Content);
        // Latest views: at t=50 A0 has (1,2), A1 has (2): A1 strictly
        // behind, not mutual divergence — no window at all.
        assert!(w.windows.is_empty());
        assert!(w.converged());
        assert!(!w.any_divergence());
    }

    #[test]
    fn unconverged_window_stays_open() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(100), vec![1u32]);
        b.read(A1, t(0), t(200), vec![2]);
        let w = windows(&b.build(), A0, A1, WindowKind::Content);
        assert!(w.windows.is_empty());
        assert_eq!(w.open_since, Some(t(200)));
        assert!(!w.converged());
        assert!(w.any_divergence());
    }

    #[test]
    fn multiple_windows_accumulate() {
        let mut b = TestTraceBuilder::new();
        // Diverge, converge, diverge again, converge again.
        b.read(A0, t(0), t(100), vec![1u32]);
        b.read(A1, t(0), t(200), vec![2]); // open @200
        b.read(A1, t(250), t(300), vec![1]); // A1 now behind-equal → close @300
        b.read(A0, t(350), t(400), vec![1, 3]);
        b.read(A1, t(450), t(500), vec![1, 4]); // mutual again: open @500
        b.read(A0, t(550), t(600), vec![1, 3, 4]); // A0 superset → close @600
        let w = windows(&b.build(), A0, A1, WindowKind::Content);
        assert_eq!(w.windows, vec![(t(200), t(300)), (t(500), t(600))]);
        assert_eq!(w.total_nanos(), 200_000_000);
        assert_eq!(w.largest_nanos(), Some(100_000_000));
    }

    #[test]
    fn order_window_opens_and_closes() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(100), vec![1u32, 2]);
        b.read(A1, t(0), t(200), vec![2, 1]); // inverted: open @200
        b.read(A1, t(300), t(400), vec![1, 2]); // canonical: close @400
        let w = windows(&b.build(), A0, A1, WindowKind::Order);
        assert_eq!(w.windows, vec![(t(200), t(400))]);
    }

    #[test]
    fn order_window_requires_common_pair() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(100), vec![1u32, 2]);
        b.read(A1, t(0), t(200), vec![3, 4]);
        let w = windows(&b.build(), A0, A1, WindowKind::Order);
        assert!(!w.any_divergence());
    }

    #[test]
    fn pair_order_is_normalized() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A1, t(0), t(10), vec![2]);
        let trace = b.build();
        let w1 = windows(&trace, A0, A1, WindowKind::Content);
        let w2 = windows(&trace, A1, A0, WindowKind::Content);
        assert_eq!(w1, w2);
        assert_eq!(w1.pair, (A0, A1));
    }

    #[test]
    fn all_pair_windows_covers_every_pair() {
        let mut b = TestTraceBuilder::new();
        for agent in [AgentId(0), AgentId(1), AgentId(2)] {
            b.read(agent, t(0), t(10), vec![agent.0]);
        }
        let ws = all_pair_windows(&b.build(), WindowKind::Content);
        assert_eq!(ws.len(), 3);
        assert!(ws.iter().all(|w| w.open_since.is_some()));
    }

    #[test]
    fn windows_use_response_times() {
        // Reads are long: windows must be measured at response, not invoke.
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(1000), vec![1u32]);
        b.read(A1, t(0), t(2000), vec![2]);
        // A0 catching up to a superset view ends the *mutual* divergence.
        b.read(A0, t(2500), t(3000), vec![1, 2]);
        let w = windows(&b.build(), A0, A1, WindowKind::Content);
        assert_eq!(w.windows, vec![(t(2000), t(3000))]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testutil::TestRng;
    use crate::trace::TestTraceBuilder;

    /// Random read schedules for two agents over a tiny id space.
    fn gen_reads(rng: &mut TestRng) -> Vec<(u8, Vec<u8>)> {
        let n = rng.range_usize(0, 20);
        (0..n)
            .map(|_| {
                let agent = rng.range(0, 2) as u8;
                let len = rng.range_usize(0, 5);
                let seq: Vec<u8> = (0..len).map(|_| rng.range(0, 6) as u8).collect();
                (agent, seq)
            })
            .collect()
    }

    /// Windows are well-formed: non-negative, non-overlapping,
    /// chronologically ordered, and any open window starts after the
    /// last closed one ends.
    #[test]
    fn windows_are_well_formed() {
        let mut rng = TestRng::new(0x37117D01);
        for case in 0..400 {
            let reads = gen_reads(&mut rng);
            let mut b = TestTraceBuilder::new();
            for (i, (agent, mut seq)) in reads.into_iter().enumerate() {
                seq.dedup();
                let at = Timestamp::from_millis(i as i64 * 10);
                b.read(AgentId(agent as u32), at, at, seq);
            }
            let trace = b.build();
            for kind in [WindowKind::Content, WindowKind::Order] {
                let w = windows(&trace, AgentId(0), AgentId(1), kind);
                let mut prev_end = Timestamp::from_millis(-1);
                for (s, e) in &w.windows {
                    assert!(s <= e, "case {case}: negative window");
                    assert!(*s >= prev_end, "case {case}: overlapping windows");
                    prev_end = *e;
                }
                if let Some(open) = w.open_since {
                    assert!(open >= prev_end, "case {case}");
                }
            }
        }
    }

    /// An order-divergence window implies a content- or order-divergence
    /// anomaly is detectable by the presence checkers.
    #[test]
    fn open_order_window_implies_checker_detection() {
        let mut rng = TestRng::new(0x37117D02);
        for case in 0..400 {
            let reads = gen_reads(&mut rng);
            let mut b = TestTraceBuilder::new();
            for (i, (agent, mut seq)) in reads.into_iter().enumerate() {
                seq.sort();
                seq.dedup();
                let at = Timestamp::from_millis(i as i64 * 10);
                b.read(AgentId(agent as u32), at, at, seq);
            }
            let trace = b.build();
            let w = windows(&trace, AgentId(0), AgentId(1), WindowKind::Content);
            if w.any_divergence() {
                let obs = crate::checkers::content::check(&trace);
                assert!(
                    !obs.is_empty(),
                    "case {case}: window sweep found divergence the checker missed"
                );
            }
        }
    }
}
