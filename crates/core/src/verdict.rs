//! Consistency verdicts — summarizing a trace's anomaly profile as the set
//! of consistency guarantees it is *compatible with*.
//!
//! The paper deliberately reports anomalies rather than proving consistency
//! levels ("if an anomaly is not observed in our tests, this does not imply
//! that the implementation disallows for its occurrence"). A [`Verdict`]
//! keeps that epistemic stance: each guarantee is reported as **violated**
//! (an anomaly proves the service does not provide it) or **compatible**
//! (no violation surfaced in this trace — not a proof).
//!
//! Composite levels follow Terry et al. \[14\] and the causal-consistency
//! literature the paper cites: PRAM requires RYW+MR+MW; causal additionally
//! requires WFR; single-order additionally requires no order divergence;
//! "strong (compatible)" additionally requires no content divergence.

use crate::analysis::TestAnalysis;
use crate::anomaly::AnomalyKind;
use crate::trace::EventKey;
use std::fmt;

/// The status of one guarantee in one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An anomaly in the trace proves the guarantee does not hold.
    Violated,
    /// No violation surfaced — compatible with, not proof of, the
    /// guarantee.
    Compatible,
}

impl Status {
    fn of(violated: bool) -> Status {
        if violated {
            Status::Violated
        } else {
            Status::Compatible
        }
    }

    /// True when compatible.
    pub fn holds(&self) -> bool {
        matches!(self, Status::Compatible)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Violated => f.write_str("violated"),
            Status::Compatible => f.write_str("compatible"),
        }
    }
}

/// The guarantee profile derived from a [`TestAnalysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Read Your Writes session guarantee.
    pub read_your_writes: Status,
    /// Monotonic Reads session guarantee.
    pub monotonic_reads: Status,
    /// Monotonic Writes session guarantee.
    pub monotonic_writes: Status,
    /// Writes Follows Reads session guarantee.
    pub writes_follow_reads: Status,
    /// Agreement on content across clients (no content divergence).
    pub content_agreement: Status,
    /// Agreement on order across clients (no order divergence).
    pub order_agreement: Status,
}

impl Verdict {
    /// Derives the verdict from an analysis.
    pub fn from_analysis<K: EventKey>(analysis: &TestAnalysis<K>) -> Self {
        Verdict {
            read_your_writes: Status::of(analysis.has(AnomalyKind::ReadYourWrites)),
            monotonic_reads: Status::of(analysis.has(AnomalyKind::MonotonicReads)),
            monotonic_writes: Status::of(analysis.has(AnomalyKind::MonotonicWrites)),
            writes_follow_reads: Status::of(analysis.has(AnomalyKind::WritesFollowReads)),
            content_agreement: Status::of(analysis.has(AnomalyKind::ContentDivergence)),
            order_agreement: Status::of(analysis.has(AnomalyKind::OrderDivergence)),
        }
    }

    /// PRAM / FIFO compatibility: RYW + MR + MW.
    pub fn pram_compatible(&self) -> bool {
        self.read_your_writes.holds()
            && self.monotonic_reads.holds()
            && self.monotonic_writes.holds()
    }

    /// Causal compatibility: PRAM + WFR (the four session guarantees
    /// together are the classic client-centric characterization of causal
    /// consistency).
    pub fn causal_compatible(&self) -> bool {
        self.pram_compatible() && self.writes_follow_reads.holds()
    }

    /// Single-order compatibility: causal + all clients agree on event
    /// order (no order divergence).
    pub fn single_order_compatible(&self) -> bool {
        self.causal_compatible() && self.order_agreement.holds()
    }

    /// Compatibility with strong consistency: no anomaly of any kind.
    pub fn strong_compatible(&self) -> bool {
        self.single_order_compatible() && self.content_agreement.holds()
    }

    /// The strongest compatible level as a label, for reports.
    pub fn strongest_level(&self) -> &'static str {
        if self.strong_compatible() {
            "strong (compatible)"
        } else if self.single_order_compatible() {
            "single-order / sequential-like"
        } else if self.causal_compatible() {
            "causal"
        } else if self.pram_compatible() {
            "PRAM"
        } else {
            "weaker than PRAM"
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RYW {}, MR {}, MW {}, WFR {}, content {}, order {}",
            self.read_your_writes,
            self.monotonic_reads,
            self.monotonic_writes,
            self.writes_follow_reads,
            self.content_agreement,
            self.order_agreement
        )?;
        write!(f, "strongest compatible level: {}", self.strongest_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, CheckerConfig};
    use crate::trace::{AgentId, TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn clean_trace_is_strong_compatible() {
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(0), t(10), 1u32);
        b.read(AgentId(0), t(20), t(30), vec![1]);
        b.read(AgentId(1), t(20), t(30), vec![1]);
        let v = Verdict::from_analysis(&analyze(&b.build(), &CheckerConfig::default()));
        assert!(v.strong_compatible());
        assert_eq!(v.strongest_level(), "strong (compatible)");
        assert!(v.to_string().contains("compatible"));
    }

    #[test]
    fn ryw_violation_breaks_pram() {
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(0), t(10), 1u32);
        b.read(AgentId(0), t(20), t(30), vec![]);
        let v = Verdict::from_analysis(&analyze(&b.build(), &CheckerConfig::default()));
        assert_eq!(v.read_your_writes, Status::Violated);
        assert!(!v.pram_compatible());
        assert_eq!(v.strongest_level(), "weaker than PRAM");
    }

    #[test]
    fn divergence_without_session_violations_is_causal() {
        // Two agents see mutually different content but no session
        // guarantee is broken.
        let mut b = TestTraceBuilder::new();
        b.read(AgentId(0), t(0), t(10), vec![1u32]);
        b.read(AgentId(1), t(0), t(10), vec![2]);
        let v = Verdict::from_analysis(&analyze(&b.build(), &CheckerConfig::default()));
        assert!(v.causal_compatible());
        assert!(v.single_order_compatible());
        assert!(!v.strong_compatible());
        assert_eq!(v.strongest_level(), "single-order / sequential-like");
    }

    #[test]
    fn order_divergence_breaks_single_order() {
        let mut b = TestTraceBuilder::new();
        b.read(AgentId(0), t(0), t(10), vec![1u32, 2]);
        b.read(AgentId(1), t(0), t(10), vec![2, 1]);
        let v = Verdict::from_analysis(&analyze(&b.build(), &CheckerConfig::default()));
        assert!(v.causal_compatible());
        assert!(!v.single_order_compatible());
        assert_eq!(v.strongest_level(), "causal");
    }

    #[test]
    fn level_hierarchy_is_monotone() {
        // strong ⇒ single-order ⇒ causal ⇒ PRAM for every combination of
        // statuses.
        for bits in 0..64u32 {
            let s = |i: u32| Status::of(bits & (1 << i) != 0);
            let v = Verdict {
                read_your_writes: s(0),
                monotonic_reads: s(1),
                monotonic_writes: s(2),
                writes_follow_reads: s(3),
                content_agreement: s(4),
                order_agreement: s(5),
            };
            if v.strong_compatible() {
                assert!(v.single_order_compatible());
            }
            if v.single_order_compatible() {
                assert!(v.causal_compatible());
            }
            if v.causal_compatible() {
                assert!(v.pram_compatible());
            }
        }
    }
}
