//! # conprobe-core — consistency anomaly definitions and checkers
//!
//! This crate implements §III of *"Characterizing the Consistency of Online
//! Services"* (DSN 2016): precise, service-agnostic definitions of six
//! consistency anomalies, as pure predicates over an observed trace of
//! operations, plus the quantitative divergence-window metrics.
//!
//! The model matches the paper's: clients issue **write** requests (each
//! creating one event) and **read** requests (each returning a *sequence* of
//! events). A [`trace::TestTrace`] records those operations with their
//! invocation/response times on a common (clock-corrected) timeline; each
//! checker in [`checkers`] searches the trace for one anomaly:
//!
//! | Anomaly | Predicate (paper §III) |
//! |---|---|
//! | Read Your Writes | `∃x∈W : x∉S` — a client's completed write missing from its own later read |
//! | Monotonic Writes | `∃x,y∈W : W(x)≺W(y) ∧ y∈S ∧ (x∉S ∨ S(y)≺S(x))` |
//! | Monotonic Reads  | `∃x∈S₁ : x∉S₂` for two successive reads by one client |
//! | Writes Follows Reads | `w∈S₂ ∧ ∃x∈S₁ : x∉S₂` where `w` was issued after its author read `S₁` |
//! | Content Divergence | `∃x∈S₁, y∈S₂ : x∉S₂ ∧ y∉S₁` across two clients |
//! | Order Divergence | `∃x,y ∈ S₁,S₂ : S₁(x)≺S₁(y) ∧ S₂(y)≺S₂(x)` |
//!
//! [`window`] computes the *content/order divergence windows*: how long the
//! divergence condition holds between a pair of clients, as determined by
//! each client's most recent read — including the paper's subtlety that an
//! anomaly can exist between non-overlapping reads yet have a zero window.
//!
//! Checkers are generic over the event key type `K` (any `Clone + Eq +
//! Hash + Ord + Debug` type), so they work over simulated post ids, HTTP
//! resource ids, or plain integers in tests.
//!
//! ## Example
//!
//! ```
//! use conprobe_core::trace::{AgentId, TestTraceBuilder, Timestamp};
//! use conprobe_core::checkers::ryw;
//!
//! let mut b = TestTraceBuilder::new();
//! let a0 = AgentId(0);
//! b.write(a0, Timestamp::from_millis(0), Timestamp::from_millis(10), 1u32);
//! // A later read by the same agent that misses write 1:
//! b.read(a0, Timestamp::from_millis(20), Timestamp::from_millis(30), vec![]);
//! let trace = b.build();
//! let anomalies = ryw::check(&trace);
//! assert_eq!(anomalies.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod anomaly;
pub mod checkers;
pub mod index;
pub mod stream;
pub mod testutil;
pub mod timeline;
pub mod trace;
pub mod verdict;
pub mod visibility;
pub mod window;

pub use analysis::{analyze, CheckerConfig, TestAnalysis};
pub use anomaly::{AnomalyKind, Observation};
pub use index::TraceIndex;
pub use stream::{StreamPart, StreamingAnalyzer};
pub use trace::{AgentId, EventKey, OpKind, OpRecord, TestTrace, TestTraceBuilder, Timestamp};
pub use verdict::{Status, Verdict};
pub use visibility::{
    staleness_bound_nanos, visibility, Visibility, VisibilityRecord, VisibilitySummary,
};
pub use window::{WindowAnalysis, WindowKind};
