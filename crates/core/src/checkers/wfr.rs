//! Writes Follows Reads checker.
//!
//! §III: *"if S₁ is a sequence returned by a read invoked by client c, w a
//! write performed by c after observing S₁, and S₂ is a sequence returned by
//! a read issued by **any** client in the system; a Writes Follows Reads
//! anomaly happens when `w ∈ S₂ ∧ ∃x ∈ S₁ : x ∉ S₂`."*
//!
//! Two modes are provided:
//!
//! * [`WfrMode::General`] — the full definition: each write depends on
//!   everything its author had read before issuing it.
//! * [`WfrMode::TriggerPairs`] — the paper's Test 1 instantiation: *"We only
//!   consider these particular pairs of messages because, in the design of
//!   our test, M3 and M5 are the only write operations that require the
//!   observation of M2 and M4, respectively, as a trigger."* Each pair
//!   `(dep, w)` flags reads that contain `w` but not `dep`.

use crate::analysis::CheckerConfig;
use crate::anomaly::Observation;
use crate::index::TraceIndex;
use crate::stream::{StreamPart, StreamingAnalyzer};
use crate::trace::{EventKey, TestTrace};

/// Which dependency relation the checker uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfrMode<K> {
    /// Full §III definition: a write depends on every event its author had
    /// observed (in any completed read) before issuing the write.
    General,
    /// Only the designated `(dependency, write)` pairs are checked — Test 1
    /// uses `[(M2, M3), (M4, M5)]`.
    TriggerPairs(Vec<(K, K)>),
}

/// Finds Writes Follows Reads violations in `trace` under `mode`.
///
/// Emits one [`Observation`] per read that contains a write without one of
/// its dependencies; witnesses are `[missing dependency, write]` for each
/// violated dependency, in dependency order (agent ascending, then write
/// issue order, then observation order within the write — or trigger-pair
/// order in [`WfrMode::TriggerPairs`]).
pub fn check<K: EventKey>(trace: &TestTrace<K>, mode: &WfrMode<K>) -> Vec<Observation<K>> {
    check_indexed(&TraceIndex::new(trace), mode)
}

/// [`check`] against a prebuilt [`TraceIndex`] — a replay of the indexed
/// event stream through the incremental
/// [`StreamingAnalyzer`](crate::stream::StreamingAnalyzer), which derives
/// each write's dependency set as the stream passes the write's
/// invocation.
pub fn check_indexed<K: EventKey>(
    index: &TraceIndex<'_, K>,
    mode: &WfrMode<K>,
) -> Vec<Observation<K>> {
    let config = CheckerConfig { wfr_mode: mode.clone(), compute_windows: false };
    let mut s = StreamingAnalyzer::single(&config, StreamPart::WritesFollowReads);
    for op in index.ops() {
        s.push_event(op);
    }
    s.finish().observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::trace::{AgentId, TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);
    const A2: AgentId = AgentId(2);

    /// Agent 0 writes M2; agent 1 reads it then writes M3 (the reply).
    fn reply_scenario() -> TestTraceBuilder<u32> {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 2u32); // M2
        b.read(A1, t(20), t(30), vec![2]); // A1 observes M2
        b.write(A1, t(40), t(50), 3u32); // M3 causally follows M2
        b
    }

    #[test]
    fn trigger_pairs_flags_reply_without_question() {
        let mut b = reply_scenario();
        b.read(A2, t(60), t(70), vec![3]); // sees the reply, not the question
        let obs = check(&b.build(), &WfrMode::TriggerPairs(vec![(2, 3)]));
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].kind, AnomalyKind::WritesFollowReads);
        assert_eq!(obs[0].agent, A2);
        assert_eq!(obs[0].witnesses, vec![2, 3]);
    }

    #[test]
    fn trigger_pairs_clean_when_both_visible() {
        let mut b = reply_scenario();
        b.read(A2, t(60), t(70), vec![2, 3]);
        assert!(check(&b.build(), &WfrMode::TriggerPairs(vec![(2, 3)])).is_empty());
    }

    #[test]
    fn seeing_neither_or_only_dependency_is_clean() {
        let mut b = reply_scenario();
        b.read(A2, t(60), t(70), vec![2]);
        b.read(A2, t(80), t(90), vec![]);
        assert!(check(&b.build(), &WfrMode::TriggerPairs(vec![(2, 3)])).is_empty());
    }

    #[test]
    fn general_mode_derives_dependencies_from_reads() {
        let mut b = reply_scenario();
        b.read(A2, t(60), t(70), vec![3]);
        let obs = check(&b.build(), &WfrMode::General);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].witnesses, vec![2, 3]);
    }

    #[test]
    fn general_mode_ignores_reads_after_the_write() {
        // A1 writes M3 *before* reading M2: no dependency.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 2u32);
        b.write(A1, t(15), t(25), 3u32);
        b.read(A1, t(30), t(40), vec![2, 3]);
        b.read(A2, t(60), t(70), vec![3]);
        assert!(check(&b.build(), &WfrMode::General).is_empty());
    }

    #[test]
    fn general_mode_in_flight_read_is_not_a_dependency() {
        // The read completes after the write is invoked: not observed first.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 2u32);
        b.read(A1, t(20), t(100), vec![2]);
        b.write(A1, t(50), t(60), 3u32);
        b.read(A2, t(120), t(130), vec![3]);
        assert!(check(&b.build(), &WfrMode::General).is_empty());
    }

    #[test]
    fn paper_test1_pairs_m2_m3_and_m4_m5() {
        // Test 1 with the paper's message naming: M3 requires M2,
        // M5 requires M4.
        let pairs = WfrMode::TriggerPairs(vec![(2u32, 3u32), (4, 5)]);
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(5), 1u32);
        b.write(A0, t(6), t(11), 2);
        b.read(A1, t(20), t(25), vec![1, 2]);
        b.write(A1, t(30), t(35), 3);
        b.write(A1, t(36), t(41), 4);
        b.read(A2, t(50), t(55), vec![1, 2, 3, 4]);
        b.write(A2, t(60), t(65), 5);
        b.write(A2, t(66), t(71), 6);
        // Violations: M5 visible without M4.
        b.read(A0, t(80), t(90), vec![1, 2, 3, 5, 6]);
        let obs = check(&b.build(), &pairs);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].witnesses, vec![4, 5]);
    }

    #[test]
    fn multiple_pairs_in_one_read_yield_one_observation() {
        let pairs = WfrMode::TriggerPairs(vec![(2u32, 3u32), (4, 5)]);
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(5), 2u32);
        b.write(A0, t(6), t(10), 3);
        b.write(A1, t(0), t(5), 4);
        b.write(A1, t(6), t(10), 5);
        b.read(A2, t(20), t(30), vec![3, 5]); // both pairs violated
        let obs = check(&b.build(), &pairs);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].witnesses, vec![2, 3, 4, 5]);
    }
}
