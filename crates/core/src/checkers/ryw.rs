//! Read Your Writes checker.
//!
//! §III: *"say W is the set of write operations made by a client c at a
//! given instant, and S a sequence (of effects) of write operations returned
//! in a subsequent read operation of c, a Read Your Writes anomaly happens
//! when `∃x ∈ W : x ∉ S`."*
//!
//! "At a given instant" is interpreted as: writes whose response arrived
//! before the read was invoked. A write still in flight when the read
//! started is not required to be visible.

use crate::analysis::CheckerConfig;
use crate::anomaly::Observation;
use crate::index::TraceIndex;
use crate::stream::{StreamPart, StreamingAnalyzer};
use crate::trace::{EventKey, TestTrace};

/// Finds all Read Your Writes violations in `trace`.
///
/// Emits one [`Observation`] per read that is missing at least one of the
/// reader's own completed writes; the missing writes are the witnesses.
pub fn check<K: EventKey>(trace: &TestTrace<K>) -> Vec<Observation<K>> {
    check_indexed(&TraceIndex::new(trace))
}

/// [`check`] against a prebuilt [`TraceIndex`] — a replay of the indexed
/// event stream through the incremental
/// [`StreamingAnalyzer`](crate::stream::StreamingAnalyzer), which is the
/// one implementation of this checker's semantics.
pub fn check_indexed<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
    let mut s = StreamingAnalyzer::single(&CheckerConfig::default(), StreamPart::ReadYourWrites);
    for op in index.ops() {
        s.push_event(op);
    }
    s.finish().observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::trace::{AgentId, TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);

    #[test]
    fn clean_trace_has_no_anomaly() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.read(A0, t(20), t(30), vec![1]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn missing_own_write_is_flagged() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.read(A0, t(20), t(30), vec![]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].kind, AnomalyKind::ReadYourWrites);
        assert_eq!(obs[0].agent, A0);
        assert_eq!(obs[0].witnesses, vec![1]);
        assert_eq!(obs[0].at, t(30));
    }

    #[test]
    fn in_flight_write_is_exempt() {
        // Write completes at t=50 but the read was invoked at t=20.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(50), 1u32);
        b.read(A0, t(20), t(30), vec![]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn other_agents_writes_do_not_matter() {
        let mut b = TestTraceBuilder::new();
        b.write(A1, t(0), t(10), 9u32);
        b.read(A0, t(20), t(30), vec![]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn each_violating_read_counts_once() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.write(A0, t(11), t(20), 2u32);
        b.read(A0, t(30), t(40), vec![]); // misses both
        b.read(A0, t(50), t(60), vec![1]); // misses one
        b.read(A0, t(70), t(80), vec![1, 2]); // clean
        let obs = check(&b.build());
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].witnesses.len(), 2);
        assert_eq!(obs[1].witnesses, vec![2]);
    }

    #[test]
    fn paper_test1_example() {
        // "Agent 1 writes M1 (or M2), and in a subsequent read operation M1
        // (or M2) is missing."
        let m1 = 101u32;
        let m2 = 102u32;
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(100), m1);
        b.write(A0, t(110), t(200), m2);
        b.read(A0, t(300), t(400), vec![m2]); // M1 vanished
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].witnesses, vec![m1]);
    }

    #[test]
    fn order_in_read_is_irrelevant_for_ryw() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.write(A0, t(11), t(20), 2u32);
        b.read(A0, t(30), t(40), vec![2, 1]); // reversed, but both present
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn read_concurrent_with_write_boundary() {
        // Response exactly equals read invocation: counted as completed.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(20), 1u32);
        b.read(A0, t(20), t(30), vec![]);
        assert_eq!(check(&b.build()).len(), 1);
    }
}
