//! Order Divergence checker.
//!
//! §III: *"an order divergence anomaly happens when two reads issued by two
//! clients c₁ and c₂ return sequences S₁ and S₂ containing a pair of events
//! occurring in a different order at the two sequences:
//! `∃x, y ∈ S₁, S₂ : S₁(x) ≺ S₁(y) ∧ S₂(y) ≺ S₂(x)`."*

use crate::analysis::CheckerConfig;
use crate::anomaly::Observation;
use crate::index::{ReadView, TraceIndex};
use crate::stream::{StreamPart, StreamingAnalyzer};
use crate::trace::{EventKey, TestTrace};
use std::collections::HashMap;

/// Returns a witness pair `(x, y)` such that `x` precedes `y` in `s1` but
/// `y` precedes `x` in `s2`, if any exists.
///
/// Only events present in both sequences participate. Runs in
/// `O(|s1| + |s2|)` after hashing: the common subsequence of `s1` is order
/// -divergent iff its positions in `s2` are not monotonically increasing,
/// and any non-monotonicity yields an adjacent witness.
pub fn find_inversion<K: EventKey>(s1: &[K], s2: &[K]) -> Option<(K, K)> {
    let pos2: HashMap<&K, usize> = s2.iter().enumerate().map(|(i, k)| (k, i)).collect();
    let mut prev: Option<(&K, usize)> = None;
    for x in s1 {
        if let Some(&p2) = pos2.get(x) {
            if let Some((px, pp2)) = prev {
                if p2 < pp2 {
                    return Some((px.clone(), x.clone()));
                }
            }
            prev = Some((x, p2));
        }
    }
    None
}

/// [`find_inversion`] between two indexed reads — position lookups are
/// array probes on interned keys instead of per-call hash maps.
pub fn inversion_between<'t, K>(
    a: &ReadView<'t, K>,
    b: &ReadView<'t, K>,
) -> Option<(&'t K, &'t K)> {
    let mut prev: Option<(&'t K, u32)> = None;
    for (&k, x) in a.keys().iter().zip(a.seq) {
        if let Some(p2) = b.position(k) {
            if let Some((px, pp2)) = prev {
                if p2 < pp2 {
                    return Some((px, x));
                }
            }
            prev = Some((x, p2));
        }
    }
    None
}

/// Finds order divergence between every pair of agents in `trace`.
///
/// Emits at most one [`Observation`] per unordered agent pair, witnessing
/// the inverted event pair from the earliest diverging read pair, with the
/// total count of diverging read pairs in the detail string.
pub fn check<K: EventKey>(trace: &TestTrace<K>) -> Vec<Observation<K>> {
    check_indexed(&TraceIndex::new(trace))
}

/// [`check`] against a prebuilt [`TraceIndex`] — a replay of the indexed
/// event stream through the incremental
/// [`StreamingAnalyzer`](crate::stream::StreamingAnalyzer), which
/// compares each arriving read against the other agents' retained read
/// summaries exactly once.
pub fn check_indexed<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
    let mut s = StreamingAnalyzer::single(&CheckerConfig::default(), StreamPart::OrderDivergence);
    for op in index.ops() {
        s.push_event(op);
    }
    s.finish().observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::trace::{AgentId, TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);

    #[test]
    fn find_inversion_basic() {
        assert_eq!(find_inversion(&[1, 2], &[2, 1]), Some((1, 2)));
        assert_eq!(find_inversion(&[1, 2], &[1, 2]), None);
        assert_eq!(find_inversion::<u32>(&[], &[]), None);
    }

    #[test]
    fn find_inversion_ignores_uncommon_events() {
        // 9 and 7 are not shared; the common subsequence (1,2) agrees.
        assert_eq!(find_inversion(&[9, 1, 2], &[1, 7, 2]), None);
        // Common subsequence (1,2) vs (2,1) disagrees despite noise.
        assert_eq!(find_inversion(&[9, 1, 2], &[2, 7, 1]), Some((1, 2)));
    }

    #[test]
    fn find_inversion_non_adjacent() {
        // Inversion between non-adjacent elements (1 before 3 vs 3 before 1)
        // is still caught via the adjacent pair of the common subsequence.
        assert!(find_inversion(&[1, 2, 3], &[3, 2, 1]).is_some());
        assert!(find_inversion(&[1, 2, 3], &[2, 3, 1]).is_some());
    }

    #[test]
    fn paper_example_m1_m2_reversed() {
        // "an Agent sees the sequence (M2,M1) and another Agent sees the
        // sequence (M1,M2)."
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![2u32, 1]);
        b.read(A1, t(0), t(10), vec![1, 2]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].kind, AnomalyKind::OrderDivergence);
        assert_eq!((obs[0].agent, obs[0].other_agent), (A0, Some(A1)));
    }

    #[test]
    fn same_order_is_clean() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2, 3]);
        b.read(A1, t(0), t(10), vec![1, 2, 3]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn subset_reads_without_inversion_are_clean() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 3]);
        b.read(A1, t(0), t(10), vec![1, 2, 3]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn divergence_within_one_agent_is_not_order_divergence() {
        // One agent flip-flopping alone is a monotonic-writes/reads issue,
        // not order divergence between clients.
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2]);
        b.read(A0, t(20), t(30), vec![2, 1]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn counts_all_diverging_read_pairs() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2]);
        b.read(A0, t(20), t(30), vec![1, 2]);
        b.read(A1, t(0), t(10), vec![2, 1]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert!(obs[0].detail.contains("2 read pair(s)"), "{}", obs[0].detail);
    }

    #[test]
    fn single_common_event_cannot_invert() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2]);
        b.read(A1, t(0), t(10), vec![2, 3]);
        assert!(check(&b.build()).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testutil::TestRng;

    /// A random sequence of distinct small ids.
    fn gen_seq(rng: &mut TestRng) -> Vec<u8> {
        let len = rng.range_usize(0, 10);
        let mut seen = std::collections::HashSet::new();
        (0..len).map(|_| rng.range(0, 12) as u8).filter(|x| seen.insert(*x)).collect()
    }

    /// find_inversion is symmetric in *existence*: an inversion between
    /// s1 and s2 exists iff one exists between s2 and s1.
    #[test]
    fn inversion_existence_is_symmetric() {
        let mut rng = TestRng::new(0x08DE81);
        for case in 0..500 {
            let s1 = gen_seq(&mut rng);
            let s2 = gen_seq(&mut rng);
            assert_eq!(
                find_inversion(&s1, &s2).is_some(),
                find_inversion(&s2, &s1).is_some(),
                "case {case}: {s1:?} vs {s2:?}"
            );
        }
    }

    /// A sequence never diverges from itself or its own subsequences.
    #[test]
    fn no_self_inversion() {
        let mut rng = TestRng::new(0x08DE82);
        for case in 0..500 {
            let s = gen_seq(&mut rng);
            assert_eq!(find_inversion(&s, &s), None, "case {case}");
            let sub: Vec<u8> = s.iter().filter(|_| rng.chance(0.5)).copied().collect();
            assert_eq!(find_inversion(&s, &sub), None, "case {case}: {s:?} vs {sub:?}");
        }
    }

    /// Any witness returned truly satisfies the §III predicate.
    #[test]
    fn witnesses_are_sound() {
        let mut rng = TestRng::new(0x08DE83);
        for case in 0..500 {
            let s1 = gen_seq(&mut rng);
            let s2 = gen_seq(&mut rng);
            if let Some((x, y)) = find_inversion(&s1, &s2) {
                let p = |s: &[u8], v: u8| s.iter().position(|e| *e == v).unwrap();
                assert!(p(&s1, x) < p(&s1, y), "case {case}");
                assert!(p(&s2, y) < p(&s2, x), "case {case}");
            }
        }
    }
}
