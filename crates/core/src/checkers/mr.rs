//! Monotonic Reads checker.
//!
//! §III: *"a Monotonic Reads anomaly happens when a client c issues two read
//! operations that return sequences S₁ and S₂ (in that order) and
//! `∃x ∈ S₁ : x ∉ S₂`."*
//!
//! The checker examines consecutive read pairs per agent. Any violation of
//! the general (any-pair) definition is also a violation on some adjacent
//! pair: if `x ∈ Sᵢ` and `x ∉ Sⱼ` for `i < j`, then along the way there is
//! an adjacent pair where `x` disappears. Counting adjacent pairs therefore
//! detects the same anomalies while matching the paper's per-test
//! observation counts (a message that disappears once is one observation,
//! not one per later read).

use crate::analysis::CheckerConfig;
use crate::anomaly::Observation;
use crate::index::TraceIndex;
use crate::stream::{StreamPart, StreamingAnalyzer};
use crate::trace::{EventKey, TestTrace};

/// Finds all Monotonic Reads violations in `trace`.
///
/// "(in that order)" in §III is the order results were *returned*: a
/// client reacts to responses, and retransmitted reads can overlap later
/// ones, so response order — not invocation order — defines the
/// successive views.
///
/// Emits one [`Observation`] per consecutive read pair in which at least one
/// previously observed event disappeared; the vanished events are the
/// witnesses.
pub fn check<K: EventKey>(trace: &TestTrace<K>) -> Vec<Observation<K>> {
    check_indexed(&TraceIndex::new(trace))
}

/// [`check`] against a prebuilt [`TraceIndex`] — a replay of the indexed
/// event stream through the incremental
/// [`StreamingAnalyzer`](crate::stream::StreamingAnalyzer).
pub fn check_indexed<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
    let mut s = StreamingAnalyzer::single(&CheckerConfig::default(), StreamPart::MonotonicReads);
    for op in index.ops() {
        s.push_event(op);
    }
    s.finish().observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::trace::{AgentId, TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);

    #[test]
    fn growing_reads_are_clean() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A0, t(20), t(30), vec![1, 2]);
        b.read(A0, t(40), t(50), vec![1, 2, 3]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn disappearing_event_is_flagged() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2]);
        b.read(A0, t(20), t(30), vec![2]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].kind, AnomalyKind::MonotonicReads);
        assert_eq!(obs[0].witnesses, vec![1]);
        assert_eq!(obs[0].at, t(30));
    }

    #[test]
    fn reorder_without_disappearance_is_not_mr() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2]);
        b.read(A0, t(20), t(30), vec![2, 1]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn cross_agent_reads_are_independent() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A1, t(20), t(30), vec![]); // different agent: not MR
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn flapping_event_counts_each_disappearance() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A0, t(20), t(30), vec![]); // gone
        b.read(A0, t(40), t(50), vec![1]); // back
        b.read(A0, t(60), t(70), vec![]); // gone again
        let obs = check(&b.build());
        assert_eq!(obs.len(), 2);
    }

    #[test]
    fn single_read_never_flags() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2, 3]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn overlapping_reads_are_ordered_by_response() {
        // A retransmitted read can be invoked early but answered late; the
        // successive views are defined by response order, so a later-
        // answered richer read before an earlier-answered poorer one is
        // NOT an anomaly.
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(3_000), vec![1u32, 2]); // slow (retried) read
        b.read(A0, t(300), t(400), vec![1]); // answered first
        assert!(check(&b.build()).is_empty());
        // Whereas a genuine disappearance in response order still flags.
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(300), t(400), vec![1u32, 2]);
        b.read(A0, t(0), t(3_000), vec![1]); // responded later, lost 2
        assert_eq!(check(&b.build()).len(), 1);
    }

    #[test]
    fn paper_example_message_m_disappears() {
        // "any agent observes the effect of a message M and in a subsequent
        // read by the same agent the effects of M are no longer observed."
        let m = 42u32;
        let mut b = TestTraceBuilder::new();
        b.write(A1, t(0), t(10), m);
        b.read(A0, t(20), t(30), vec![m]);
        b.read(A0, t(40), t(50), vec![]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].witnesses, vec![m]);
    }
}
