//! Monotonic Writes checker.
//!
//! §III: *"if W is a sequence of write operations made by client c up to a
//! given instant, and S is a sequence of write operations returned in a read
//! operation by **any** client, a Monotonic Writes anomaly happens when
//! `∃x, y ∈ W : W(x) ≺ W(y) ∧ y ∈ S ∧ (x ∉ S ∨ S(y) ≺ S(x))`."*
//!
//! That is: some later write `y` of a client is visible while an earlier
//! write `x` of the same client is either missing or ordered after `y`.

use crate::analysis::CheckerConfig;
use crate::anomaly::Observation;
use crate::index::TraceIndex;
use crate::stream::{StreamPart, StreamingAnalyzer};
use crate::trace::{EventKey, TestTrace};

/// Finds all Monotonic Writes violations in `trace`.
///
/// Emits one [`Observation`] per (read, writing agent) with at least one
/// violating pair; witnesses are `[x, y]` for the first violating pair in
/// issue order.
pub fn check<K: EventKey>(trace: &TestTrace<K>) -> Vec<Observation<K>> {
    check_indexed(&TraceIndex::new(trace))
}

/// [`check`] against a prebuilt [`TraceIndex`] — a replay of the indexed
/// event stream through the incremental
/// [`StreamingAnalyzer`](crate::stream::StreamingAnalyzer).
pub fn check_indexed<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
    let mut s = StreamingAnalyzer::single(&CheckerConfig::default(), StreamPart::MonotonicWrites);
    for op in index.ops() {
        s.push_event(op);
    }
    s.finish().observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::trace::{AgentId, TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);

    fn two_writes() -> TestTraceBuilder<u32> {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.write(A0, t(20), t(30), 2u32);
        b
    }

    #[test]
    fn in_order_visibility_is_clean() {
        let mut b = two_writes();
        b.read(A0, t(40), t(50), vec![1, 2]);
        b.read(A1, t(40), t(50), vec![1, 2]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn later_write_without_earlier_is_flagged() {
        // Paper: "observes only the effects of M2".
        let mut b = two_writes();
        b.read(A0, t(40), t(50), vec![2]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].kind, AnomalyKind::MonotonicWrites);
        assert_eq!(obs[0].witnesses, vec![1, 2]);
    }

    #[test]
    fn reversed_order_is_flagged() {
        // Paper: "observes the effect of both writes in a different order".
        let mut b = two_writes();
        b.read(A1, t(40), t(50), vec![2, 1]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].agent, A1);
        assert_eq!(obs[0].other_agent, Some(A0));
    }

    #[test]
    fn earlier_without_later_is_fine() {
        // Seeing only the first write is normal propagation lag, not MW.
        let mut b = two_writes();
        b.read(A1, t(40), t(50), vec![1]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn any_reader_can_observe_the_violation() {
        let mut b = two_writes();
        b.read(A1, t(40), t(50), vec![2]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].agent, A1, "observer is the reader");
    }

    #[test]
    fn incomplete_writes_are_exempt() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(10), 1u32);
        b.write(A0, t(20), t(100), 2u32); // completes after the read begins
        b.read(A1, t(40), t(50), vec![2]); // y visible early — but y not yet "in W"
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn one_observation_per_read_per_writer() {
        let mut b = TestTraceBuilder::new();
        for s in 1..=4u32 {
            b.write(A0, t(s as i64 * 10), t(s as i64 * 10 + 5), s);
        }
        // Misses 1 and 2, sees 3,4: several violating pairs, one observation.
        b.read(A1, t(100), t(110), vec![3, 4]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
    }

    #[test]
    fn violations_by_two_writers_count_separately() {
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(0), t(5), 1u32);
        b.write(A0, t(6), t(10), 2u32);
        b.write(A1, t(0), t(5), 11u32);
        b.write(A1, t(6), t(10), 12u32);
        b.read(A0, t(20), t(30), vec![2, 12]); // misses both writers' first writes
        let obs = check(&b.build());
        assert_eq!(obs.len(), 2);
    }

    #[test]
    fn same_second_reversal_scenario_from_fb_group() {
        // The FB Group phenomenon: M1, M2 written 300 ms apart appear
        // reversed to everyone, consistently.
        let mut b = TestTraceBuilder::new();
        b.write(A0, t(1000), t(1050), 1u32);
        b.write(A0, t(1300), t(1350), 2u32);
        for reader in [A0, A1] {
            b.read(reader, t(2000), t(2100), vec![2, 1]);
        }
        let obs = check(&b.build());
        assert_eq!(obs.len(), 2);
        assert!(obs.iter().all(|o| o.witnesses == vec![1, 2]));
    }
}
