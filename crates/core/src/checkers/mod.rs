//! One module per anomaly checker.
//!
//! Every checker is a pure function from a [`crate::trace::TestTrace`] to a
//! list of [`crate::anomaly::Observation`]s. Conventions shared by all
//! checkers:
//!
//! * A write by agent `c` is considered *issued* at its invocation time and
//!   *completed* at its response time. Only writes completed before a read's
//!   invocation are required to be visible (in-flight writes are exempt) —
//!   the conservative interpretation that avoids flagging races as
//!   anomalies.
//! * A checker emits at most one observation per offending read (or read
//!   pair), carrying all witnesses, so "number of observations per test"
//!   matches the per-read counting the paper plots in Figures 4–7.
//! * The observing agent recorded on the observation is the *reader*, which
//!   is what the paper's per-location breakdowns (Oregon/Tokyo/Ireland) are
//!   keyed on.

pub mod content;
pub mod mr;
pub mod mw;
pub mod order;
pub mod ryw;
pub mod wfr;

pub use content::check as check_content_divergence;
pub use mr::check as check_monotonic_reads;
pub use mw::check as check_monotonic_writes;
pub use order::check as check_order_divergence;
pub use ryw::check as check_read_your_writes;
pub use wfr::{check as check_writes_follow_reads, WfrMode};
