//! Content Divergence checker.
//!
//! §III: *"a content divergence anomaly happens when two reads issued by
//! clients c₁ and c₂ return, respectively, sequences S₁ and S₂, and
//! `∃x ∈ S₁, y ∈ S₂ : x ∉ S₂ ∧ y ∉ S₁`."*
//!
//! Note the *mutual* difference: each client sees something the other does
//! not. Simple staleness (one client strictly behind the other) is **not**
//! content divergence.
//!
//! The reads need not be simultaneous — the paper's window computation (see
//! [`crate::window`]) handles the temporal aspect; this checker establishes
//! presence per agent pair.

use crate::analysis::CheckerConfig;
use crate::anomaly::Observation;
use crate::index::TraceIndex;
use crate::stream::{StreamPart, StreamingAnalyzer};
use crate::trace::{EventKey, TestTrace};

/// Finds content divergence between every pair of agents in `trace`.
///
/// Emits at most one [`Observation`] per unordered agent pair, carrying a
/// witness pair `[x, y]` (`x` seen only by the first agent, `y` only by the
/// second) from the earliest diverging read pair, and the total number of
/// diverging read pairs in the detail string.
pub fn check<K: EventKey>(trace: &TestTrace<K>) -> Vec<Observation<K>> {
    check_indexed(&TraceIndex::new(trace))
}

/// [`check`] against a prebuilt [`TraceIndex`] — a replay of the indexed
/// event stream through the incremental
/// [`StreamingAnalyzer`](crate::stream::StreamingAnalyzer), which
/// compares each arriving read against the other agents' retained read
/// summaries exactly once.
pub fn check_indexed<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
    let mut s = StreamingAnalyzer::single(&CheckerConfig::default(), StreamPart::ContentDivergence);
    for op in index.ops() {
        s.push_event(op);
    }
    s.finish().observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;
    use crate::trace::{AgentId, TestTraceBuilder, Timestamp};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }
    const A0: AgentId = AgentId(0);
    const A1: AgentId = AgentId(1);
    const A2: AgentId = AgentId(2);

    #[test]
    fn mutual_difference_is_flagged() {
        // Paper: "an Agent observes a sequence containing only M1 and
        // another Agent sees only M2."
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A1, t(0), t(10), vec![2]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].kind, AnomalyKind::ContentDivergence);
        assert_eq!((obs[0].agent, obs[0].other_agent), (A0, Some(A1)));
        assert_eq!(obs[0].witnesses, vec![1, 2]);
    }

    #[test]
    fn strict_staleness_is_not_divergence() {
        // A1 is simply behind A0: no mutual difference.
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2]);
        b.read(A1, t(0), t(10), vec![1]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn identical_views_are_clean() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32, 2]);
        b.read(A1, t(0), t(10), vec![1, 2]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn non_simultaneous_reads_still_diverge() {
        // The paper's zero-window example: divergence exists between
        // non-overlapping reads even though the window is zero.
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A0, t(20), t(30), vec![1, 2]);
        b.read(A1, t(40), t(50), vec![2]);
        b.read(A1, t(60), t(70), vec![1, 2]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1, "content divergence detected despite zero window");
    }

    #[test]
    fn one_observation_per_pair() {
        let mut b = TestTraceBuilder::new();
        for i in 0..3 {
            b.read(A0, t(i * 20), t(i * 20 + 10), vec![1u32]);
            b.read(A1, t(i * 20), t(i * 20 + 10), vec![2u32]);
        }
        let obs = check(&b.build());
        assert_eq!(obs.len(), 1);
        assert!(obs[0].detail.contains("9 read pair(s)"), "{}", obs[0].detail);
    }

    #[test]
    fn all_three_pairs_reported() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A1, t(0), t(10), vec![2]);
        b.read(A2, t(0), t(10), vec![3]);
        let obs = check(&b.build());
        assert_eq!(obs.len(), 3);
        let pairs: Vec<_> = obs.iter().map(|o| (o.agent, o.other_agent.unwrap())).collect();
        assert_eq!(pairs, vec![(A0, A1), (A0, A2), (A1, A2)]);
    }

    #[test]
    fn same_agent_reads_never_diverge_with_themselves() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), vec![1u32]);
        b.read(A0, t(20), t(30), vec![2]);
        assert!(check(&b.build()).is_empty());
    }

    #[test]
    fn empty_reads_are_clean() {
        let mut b = TestTraceBuilder::new();
        b.read(A0, t(0), t(10), Vec::<u32>::new());
        b.read(A1, t(0), t(10), vec![]);
        assert!(check(&b.build()).is_empty());
    }
}
