//! Streaming-equals-batch property suite.
//!
//! The shipped `analyze()` and every `checkers::check_*` facade are now
//! one-pass replays through the incremental
//! [`StreamingAnalyzer`](conprobe_core::stream::StreamingAnalyzer), so
//! comparing them against each other would prove nothing. The oracle in
//! [`reference`] is instead a frozen copy of the original whole-trace
//! checker implementations, exactly as they stood before the engine went
//! incremental — an independent second implementation of §III.
//!
//! Randomized *chaotic* traces drive both sides: overlapping operation
//! intervals (including zero-duration ops and exact `response == invoke`
//! boundary ties, the cases the streaming watermark machinery defers on),
//! stale read prefixes, vanished events, inverted pairs and phantom
//! events that seed every anomaly class. Schedules come from a seeded
//! [`TestRng`] so each case replays exactly.
//!
//! Alongside exact equivalence, the suite pins the two streaming-only
//! contracts: [`live_counts`](StreamingAnalyzer::live_counts) grows
//! monotonically and lands on the final analysis, and
//! [`retained_bytes`](StreamingAnalyzer::retained_bytes) stays far below
//! the raw trace size when keys are wide (the interning guarantee).

use conprobe_core::analysis::{analyze, CheckerConfig};
use conprobe_core::checkers::{self, WfrMode};
use conprobe_core::stream::{StreamPart, StreamingAnalyzer};
use conprobe_core::testutil::TestRng;
use conprobe_core::trace::{AgentId, OpKind, OpRecord, TestTrace, Timestamp};

type K = (u32, u32); // (author, seq)

/// Frozen pre-streaming batch checkers.
///
/// Verbatim copies (modulo paths) of the last whole-trace revision of
/// `checkers::{ryw,mw,mr,wfr,content,order}` and the `window` sweep.
/// They must never be "fixed" to track the shipped engine — their whole
/// value is staying an independent implementation of the paper's
/// definitions.
mod reference {
    use conprobe_core::anomaly::{AnomalyKind, Observation};
    use conprobe_core::checkers::WfrMode;
    use conprobe_core::index::{ReadView, TraceIndex};
    use conprobe_core::trace::{EventKey, Timestamp};
    use conprobe_core::window::{WindowAnalysis, WindowKind};

    pub fn ryw<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
        let mut out = Vec::new();
        for &agent in index.agents() {
            let writes = index.writes_of(agent);
            for read in index.reads_of(agent) {
                let missing: Vec<K> = writes
                    .iter()
                    .filter(|w| w.op.response <= read.op.invoke && !read.contains(w.key))
                    .map(|w| w.id.clone())
                    .collect();
                if !missing.is_empty() {
                    out.push(Observation {
                        kind: AnomalyKind::ReadYourWrites,
                        agent,
                        other_agent: None,
                        at: read.op.response,
                        detail: format!(
                            "read by {agent} misses {} own completed write(s): {missing:?}",
                            missing.len()
                        ),
                        witnesses: missing,
                    });
                }
            }
        }
        out
    }

    pub fn mw<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
        let mut out = Vec::new();
        for read in index.reads() {
            for &writer in index.agents() {
                let w: Vec<_> = index
                    .writes_of(writer)
                    .iter()
                    .filter(|w| w.op.response <= read.op.invoke)
                    .collect();
                'pairs: for (i, x) in w.iter().enumerate() {
                    for y in &w[i + 1..] {
                        let violation = match (read.position(x.key), read.position(y.key)) {
                            (None, Some(_)) => true,
                            (Some(px), Some(py)) => py < px,
                            _ => false,
                        };
                        if violation {
                            let (x, y) = (x.id, y.id);
                            out.push(Observation {
                                kind: AnomalyKind::MonotonicWrites,
                                agent: read.op.agent,
                                other_agent: Some(writer),
                                at: read.op.response,
                                witnesses: vec![x.clone(), y.clone()],
                                detail: format!(
                                    "read by {} sees {writer}'s write {y:?} but write {x:?} \
                                     is missing or ordered after it",
                                    read.op.agent
                                ),
                            });
                            break 'pairs;
                        }
                    }
                }
            }
        }
        out
    }

    pub fn mr<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
        let mut out = Vec::new();
        for &agent in index.agents() {
            let reads: Vec<_> = index.reads_of_by_response(agent).collect();
            for pair in reads.windows(2) {
                let (r1, r2) = (pair[0], pair[1]);
                let vanished: Vec<K> = r1
                    .keys()
                    .iter()
                    .zip(r1.seq)
                    .filter(|(&k, _)| !r2.contains(k))
                    .map(|(_, x)| x.clone())
                    .collect();
                if !vanished.is_empty() {
                    out.push(Observation {
                        kind: AnomalyKind::MonotonicReads,
                        agent,
                        other_agent: None,
                        at: r2.op.response,
                        detail: format!(
                            "{} event(s) observed by {agent} disappeared from its next read: \
                             {vanished:?}",
                            vanished.len()
                        ),
                        witnesses: vanished,
                    });
                }
            }
        }
        out
    }

    struct Dep<'m, K> {
        dep: &'m K,
        write: &'m K,
        dep_key: u32,
        write_key: u32,
    }

    fn general_dependencies<'m, K: EventKey>(index: &'m TraceIndex<'_, K>) -> Vec<Dep<'m, K>> {
        let mut deps = Vec::new();
        for &agent in index.agents() {
            for w in index.writes_of(agent) {
                let mut seen = vec![false; index.key_count()];
                for r in index.reads_of(agent) {
                    if r.op.response > w.op.invoke {
                        continue;
                    }
                    for (&k, x) in r.keys().iter().zip(r.seq) {
                        if k != w.key && !seen[k as usize] {
                            seen[k as usize] = true;
                            deps.push(Dep { dep: x, write: w.id, dep_key: k, write_key: w.key });
                        }
                    }
                }
            }
        }
        deps
    }

    pub fn wfr<K: EventKey>(index: &TraceIndex<'_, K>, mode: &WfrMode<K>) -> Vec<Observation<K>> {
        let deps: Vec<Dep<'_, K>> = match mode {
            WfrMode::TriggerPairs(pairs) => pairs
                .iter()
                .filter_map(|(dep, w)| {
                    let write_key = index.key_id(w)?;
                    let dep_key = index.key_id(dep).unwrap_or(u32::MAX);
                    Some(Dep { dep, write: w, dep_key, write_key })
                })
                .collect(),
            WfrMode::General => general_dependencies(index),
        };
        let mut out = Vec::new();
        for read in index.reads() {
            let mut witnesses = Vec::new();
            for d in &deps {
                if read.contains(d.write_key) && !read.contains(d.dep_key) {
                    witnesses.push(d.dep.clone());
                    witnesses.push(d.write.clone());
                }
            }
            if !witnesses.is_empty() {
                out.push(Observation {
                    kind: AnomalyKind::WritesFollowReads,
                    agent: read.op.agent,
                    other_agent: None,
                    at: read.op.response,
                    detail: format!(
                        "read by {} sees write(s) without their read dependencies: {witnesses:?}",
                        read.op.agent
                    ),
                    witnesses,
                });
            }
        }
        out
    }

    fn first_only_in<'t, K>(a: &ReadView<'t, K>, b: &ReadView<'t, K>) -> Option<&'t K> {
        a.keys().iter().zip(a.seq).find(|(&k, _)| !b.contains(k)).map(|(_, x)| x)
    }

    pub fn content<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
        let agents = index.agents();
        let mut out = Vec::new();
        for (i, &a) in agents.iter().enumerate() {
            for &b in &agents[i + 1..] {
                let reads_a: Vec<_> = index.reads_of(a).collect();
                let reads_b: Vec<_> = index.reads_of(b).collect();
                let mut first_witness: Option<(K, K, Timestamp)> = None;
                let mut pair_count = 0usize;
                for ra in &reads_a {
                    for rb in &reads_b {
                        let x = first_only_in(ra, rb);
                        let y = first_only_in(rb, ra);
                        if let (Some(x), Some(y)) = (x, y) {
                            pair_count += 1;
                            let at = ra.op.response.max(rb.op.response);
                            if first_witness.is_none() {
                                first_witness = Some((x.clone(), y.clone(), at));
                            }
                        }
                    }
                }
                if let Some((x, y, at)) = first_witness {
                    out.push(Observation {
                        kind: AnomalyKind::ContentDivergence,
                        agent: a,
                        other_agent: Some(b),
                        at,
                        detail: format!(
                            "{a} and {b} mutually diverge ({pair_count} read pair(s)): \
                             {a} alone sees {x:?}, {b} alone sees {y:?}"
                        ),
                        witnesses: vec![x, y],
                    });
                }
            }
        }
        out
    }

    fn inversion_between<'t, K>(
        a: &ReadView<'t, K>,
        b: &ReadView<'t, K>,
    ) -> Option<(&'t K, &'t K)> {
        let mut prev: Option<(&'t K, u32)> = None;
        for (&k, x) in a.keys().iter().zip(a.seq) {
            if let Some(p2) = b.position(k) {
                if let Some((px, pp2)) = prev {
                    if p2 < pp2 {
                        return Some((px, x));
                    }
                }
                prev = Some((x, p2));
            }
        }
        None
    }

    pub fn order<K: EventKey>(index: &TraceIndex<'_, K>) -> Vec<Observation<K>> {
        let agents = index.agents();
        let mut out = Vec::new();
        for (i, &a) in agents.iter().enumerate() {
            for &b in &agents[i + 1..] {
                let reads_a: Vec<_> = index.reads_of(a).collect();
                let reads_b: Vec<_> = index.reads_of(b).collect();
                let mut first: Option<(K, K, Timestamp)> = None;
                let mut pair_count = 0usize;
                for ra in &reads_a {
                    for rb in &reads_b {
                        if let Some((x, y)) = inversion_between(ra, rb) {
                            pair_count += 1;
                            if first.is_none() {
                                first = Some((
                                    x.clone(),
                                    y.clone(),
                                    ra.op.response.max(rb.op.response),
                                ));
                            }
                        }
                    }
                }
                if let Some((x, y, at)) = first {
                    out.push(Observation {
                        kind: AnomalyKind::OrderDivergence,
                        agent: a,
                        other_agent: Some(b),
                        at,
                        detail: format!(
                            "{a} and {b} order {x:?}/{y:?} oppositely \
                             ({pair_count} read pair(s))"
                        ),
                        witnesses: vec![x, y],
                    });
                }
            }
        }
        out
    }

    fn content_diverged<K>(a: &ReadView<'_, K>, b: &ReadView<'_, K>) -> bool {
        a.keys().iter().any(|&x| !b.contains(x)) && b.keys().iter().any(|&y| !a.contains(y))
    }

    fn pair_windows<K: EventKey>(
        index: &TraceIndex<'_, K>,
        a: conprobe_core::trace::AgentId,
        b: conprobe_core::trace::AgentId,
        kind: WindowKind,
    ) -> WindowAnalysis {
        let pair = if a <= b { (a, b) } else { (b, a) };
        let reads =
            index.reads_by_response().filter(|r| r.op.agent == pair.0 || r.op.agent == pair.1);

        let mut last_a: Option<&ReadView<'_, K>> = None;
        let mut last_b: Option<&ReadView<'_, K>> = None;
        let mut open: Option<Timestamp> = None;
        let mut closed = Vec::new();

        for r in reads {
            if r.op.agent == pair.0 {
                last_a = Some(r);
            } else {
                last_b = Some(r);
            }
            let diverged = match (last_a, last_b) {
                (Some(ra), Some(rb)) => match kind {
                    WindowKind::Content => content_diverged(ra, rb),
                    WindowKind::Order => inversion_between(ra, rb).is_some(),
                },
                _ => false,
            };
            match (diverged, open) {
                (true, None) => open = Some(r.op.response),
                (false, Some(start)) => {
                    closed.push((start, r.op.response));
                    open = None;
                }
                _ => {}
            }
        }

        WindowAnalysis { pair, kind, windows: closed, open_since: open }
    }

    pub fn all_pair_windows<K: EventKey>(
        index: &TraceIndex<'_, K>,
        kind: WindowKind,
    ) -> Vec<WindowAnalysis> {
        let agents = index.agents();
        let mut out = Vec::new();
        for (i, &a) in agents.iter().enumerate() {
            for &b in &agents[i + 1..] {
                out.push(pair_windows(index, a, b, kind));
            }
        }
        out
    }

    /// The whole original `analyze()` pipeline: all six checkers in the
    /// historical order plus both window sweeps, off one shared index.
    pub fn analyze<K: EventKey>(
        trace: &conprobe_core::trace::TestTrace<K>,
        mode: &WfrMode<K>,
    ) -> (Vec<Observation<K>>, Vec<WindowAnalysis>, Vec<WindowAnalysis>) {
        let index = TraceIndex::new(trace);
        let mut obs = Vec::new();
        obs.extend(ryw(&index));
        obs.extend(mw(&index));
        obs.extend(mr(&index));
        obs.extend(wfr(&index, mode));
        obs.extend(content(&index));
        obs.extend(order(&index));
        let cw = all_pair_windows(&index, WindowKind::Content);
        let ow = all_pair_windows(&index, WindowKind::Order);
        (obs, cw, ow)
    }
}

/// A chaotic trace: overlapping intervals, stale views, corruption.
///
/// Writes append to a global log; each read returns a *corrupted* stale
/// prefix of it — possibly missing an event (RYW/MR/MW food), with an
/// adjacent pair swapped (MW/order food), or with a phantom event only
/// this agent ever sees (content-divergence food). Invoke times may tie
/// across agents and durations overlap freely, so the streaming
/// watermark/heap deferrals are exercised on every boundary case.
fn chaotic_trace(rng: &mut TestRng, agents: u32) -> TestTrace<K> {
    let len = rng.range_usize(6, 40);
    let mut log: Vec<K> = Vec::new();
    let mut seqs = std::collections::HashMap::<u32, u32>::new();
    let mut ops = Vec::new();
    let mut now = 0i64;
    for _ in 0..len {
        now += rng.range(0, 15) as i64; // sometimes stands still: invoke ties
        let a = rng.range(0, u64::from(agents)) as u32;
        let invoke = Timestamp::from_millis(now);
        let response = Timestamp::from_millis(now + rng.range(0, 40) as i64);
        if rng.chance(0.4) {
            let seq = seqs.entry(a).or_insert(0);
            *seq += 1;
            let id = (a, *seq);
            log.push(id);
            ops.push(OpRecord { agent: AgentId(a), invoke, response, kind: OpKind::Write { id } });
        } else {
            let upto = rng.range_usize(0, log.len() + 1);
            let mut seq: Vec<K> = log[..upto].to_vec();
            if !seq.is_empty() && rng.chance(0.35) {
                seq.remove(rng.range_usize(0, seq.len()));
            }
            if seq.len() >= 2 && rng.chance(0.35) {
                let i = rng.range_usize(0, seq.len() - 1);
                seq.swap(i, i + 1);
            }
            if rng.chance(0.15) {
                seq.push((900 + a, rng.range(1, 4) as u32));
            }
            ops.push(OpRecord { agent: AgentId(a), invoke, response, kind: OpKind::Read { seq } });
        }
    }
    TestTrace::new(ops)
}

const CASES: usize = 250;

/// The tentpole equivalence: a full streaming pass over a chaotic trace
/// produces *identical* observations (kind, agent, timestamps, witnesses,
/// detail strings — `Observation` is `PartialEq` on all of it) and
/// identical window sweeps to the frozen batch oracle.
#[test]
fn full_streaming_pass_equals_the_frozen_batch_oracle() {
    let mut rng = TestRng::new(0x57EA_0001);
    let mut anomalies_seen = 0usize;
    for case in 0..CASES {
        let agents = rng.range(2, 5) as u32;
        let trace = chaotic_trace(&mut rng, agents);
        let config = CheckerConfig::default();
        let got = analyze(&trace, &config);
        let (want_obs, want_cw, want_ow) = reference::analyze(&trace, &config.wfr_mode);
        assert_eq!(got.observations, want_obs, "case {case}: observations diverge");
        assert_eq!(got.content_windows, want_cw, "case {case}: content windows diverge");
        assert_eq!(got.order_windows, want_ow, "case {case}: order windows diverge");
        anomalies_seen += got.observations.len();
    }
    // The generator must actually feed the checkers, or the equivalence
    // above is vacuous.
    assert!(anomalies_seen > CASES, "generator too tame: {anomalies_seen} observations");
}

/// Same equivalence under `WfrMode::TriggerPairs`, with pairs sampled
/// from the trace's own writes plus an occasionally-nonexistent key.
#[test]
fn trigger_pair_wfr_matches_the_oracle() {
    let mut rng = TestRng::new(0x57EA_0002);
    for case in 0..CASES {
        let trace = chaotic_trace(&mut rng, 3);
        let keys: Vec<K> = trace
            .ops()
            .iter()
            .filter_map(|op| match &op.kind {
                OpKind::Write { id } => Some(*id),
                OpKind::Read { .. } => None,
            })
            .collect();
        let mut pairs = Vec::new();
        for _ in 0..rng.range_usize(1, 4) {
            if keys.is_empty() {
                break;
            }
            let dep = if rng.chance(0.2) {
                (777, 1) // never written: any read showing `write` fires
            } else {
                keys[rng.range_usize(0, keys.len())]
            };
            let write = keys[rng.range_usize(0, keys.len())];
            pairs.push((dep, write));
        }
        let mode = WfrMode::TriggerPairs(pairs);
        let config = CheckerConfig { wfr_mode: mode.clone(), compute_windows: false };
        let got = analyze(&trace, &config);
        let (want_obs, _, _) = reference::analyze(&trace, &mode);
        assert_eq!(got.observations, want_obs, "case {case}");
    }
}

/// Each single-operator replay (`StreamingAnalyzer::single`, which is
/// what the batch `checkers::check_*` facades run) matches its original
/// checker in isolation, and the window operators match the original
/// sweep.
#[test]
fn single_part_operators_match_their_original_checkers() {
    let mut rng = TestRng::new(0x57EA_0003);
    for case in 0..100 {
        let trace = chaotic_trace(&mut rng, 3);
        let index = conprobe_core::index::TraceIndex::new(&trace);
        assert_eq!(checkers::check_read_your_writes(&trace), reference::ryw(&index), "case {case}");
        assert_eq!(checkers::check_monotonic_writes(&trace), reference::mw(&index), "case {case}");
        assert_eq!(checkers::check_monotonic_reads(&trace), reference::mr(&index), "case {case}");
        assert_eq!(
            checkers::check_writes_follow_reads(&trace, &WfrMode::General),
            reference::wfr(&index, &WfrMode::General),
            "case {case}"
        );
        assert_eq!(
            checkers::check_content_divergence(&trace),
            reference::content(&index),
            "case {case}"
        );
        assert_eq!(
            checkers::check_order_divergence(&trace),
            reference::order(&index),
            "case {case}"
        );
        let config = CheckerConfig::default();
        for (part, kind) in [
            (StreamPart::ContentWindows, conprobe_core::window::WindowKind::Content),
            (StreamPart::OrderWindows, conprobe_core::window::WindowKind::Order),
        ] {
            let mut s = StreamingAnalyzer::single(&config, part);
            for op in trace.ops() {
                s.push_event(op);
            }
            let got = s.finish();
            let want = reference::all_pair_windows(&index, kind);
            let got_windows = match kind {
                conprobe_core::window::WindowKind::Content => got.content_windows,
                conprobe_core::window::WindowKind::Order => got.order_windows,
            };
            assert_eq!(got_windows, want, "case {case} {kind:?}");
        }
    }
}

/// Mid-stream telemetry: `live_counts` never decreases in any component
/// as events arrive, `events_pushed` tracks exactly, and every count is
/// a *lower bound* on the per-kind observation count of the finished
/// analysis — the documented contract is that mid-stream counts lag
/// `finish()` by at most the still-pending (watermark-deferred) tail,
/// which drains when the stream ends. Content/order components count
/// diverging *pairs*, which is one observation per pair.
#[test]
fn live_counts_grow_monotonically_onto_the_final_analysis() {
    use conprobe_core::anomaly::AnomalyKind;
    let mut rng = TestRng::new(0x57EA_0004);
    for case in 0..100 {
        let trace = chaotic_trace(&mut rng, 3);
        let config = CheckerConfig::default();
        let mut s = StreamingAnalyzer::new(&config);
        let mut prev = [0usize; 6];
        for (i, op) in trace.ops().iter().enumerate() {
            s.push_event(op);
            assert_eq!(s.events_pushed(), (i + 1) as u64, "case {case}");
            let now = s.live_counts();
            for (c, (n, p)) in now.iter().zip(&prev).enumerate() {
                assert!(n >= p, "case {case}: live_counts[{c}] shrank {p} -> {n}");
            }
            prev = now;
        }
        let analysis = s.finish();
        let count =
            |kind: AnomalyKind| analysis.observations.iter().filter(|o| o.kind == kind).count();
        let finished = [
            count(AnomalyKind::ReadYourWrites),
            count(AnomalyKind::MonotonicWrites),
            count(AnomalyKind::MonotonicReads),
            count(AnomalyKind::WritesFollowReads),
            count(AnomalyKind::ContentDivergence),
            count(AnomalyKind::OrderDivergence),
        ];
        for (c, (live, fin)) in prev.iter().zip(&finished).enumerate() {
            assert!(
                live <= fin,
                "case {case}: live_counts[{c}] = {live} overshot the finished analysis ({fin})"
            );
        }
    }
}

/// The memory contract with wide keys: the analyzer interns each
/// distinct key once, so on a trace whose reads carry kilobytes of
/// 256-byte string keys the retained working state stays a small
/// fraction of the raw bytes that flowed through `push_event`.
#[test]
fn retained_state_stays_bounded_on_wide_keys() {
    let wide = |a: u32, s: u32| format!("{a:03}-{s:05}-{}", "k".repeat(246));
    let mut ops: Vec<OpRecord<String>> = Vec::new();
    let mut log: Vec<String> = Vec::new();
    let mut now = 0i64;
    for round in 0..60u32 {
        for a in 0..3u32 {
            now += 5;
            let invoke = Timestamp::from_millis(now);
            let response = Timestamp::from_millis(now + 3);
            if round % 3 == 0 {
                let id = wide(a, round);
                log.push(id.clone());
                ops.push(OpRecord {
                    agent: AgentId(a),
                    invoke,
                    response,
                    kind: OpKind::Write { id },
                });
            } else {
                // Everyone reads the whole log so far — wide keys repeat
                // in read after read, which is exactly what interning is
                // supposed to collapse.
                ops.push(OpRecord {
                    agent: AgentId(a),
                    invoke,
                    response,
                    kind: OpKind::Read { seq: log.clone() },
                });
            }
        }
    }
    let trace = TestTrace::new(ops);
    let raw_bytes: usize = trace
        .ops()
        .iter()
        .map(|op| match &op.kind {
            OpKind::Write { id } => id.len(),
            OpKind::Read { seq } => seq.iter().map(String::len).sum(),
        })
        .sum();
    let mut s = StreamingAnalyzer::new(&CheckerConfig::default());
    for op in trace.ops() {
        s.push_event(op);
    }
    let retained = s.retained_bytes();
    assert!(retained > 0);
    assert!(
        retained < raw_bytes / 4,
        "retained {retained} bytes vs {raw_bytes} raw bytes: interning is not collapsing \
         wide keys"
    );
    // And the finished analysis is still the oracle's, wide keys or not.
    let analysis = s.finish();
    let (want_obs, _, _) = reference::analyze(&trace, &WfrMode::General);
    assert_eq!(analysis.observations, want_obs);
}
