//! Soundness and completeness properties of the §III checkers.
//!
//! Strategy: generate a *linearizable execution* — a global log of writes
//! with every read returning the exact current prefix — which by
//! construction admits none of the paper's anomalies. All checkers must
//! stay silent on it (soundness: no false positives). Then plant a specific
//! corruption (drop a client's own write, reverse a pair, make an event
//! vanish, …) and assert the corresponding checker fires (completeness for
//! the planted class).

use conprobe_core::checkers::{self, WfrMode};
use conprobe_core::trace::{AgentId, OpKind, OpRecord, TestTrace, Timestamp};
use conprobe_core::window::{all_pair_windows, WindowKind};
use proptest::prelude::*;

type K = (u32, u32); // (author, seq)

/// A schedule of interleaved writes/reads for `agents` agents.
#[derive(Debug, Clone)]
enum Step {
    Write(u32),
    Read(u32),
}

fn arb_schedule(agents: u32) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0..agents).prop_map(Step::Write),
            (0..agents).prop_map(Step::Read),
        ],
        1..40,
    )
}

/// Builds a linearizable trace: operations execute instantaneously in
/// schedule order, each read returning the full current write sequence.
fn linearizable_trace(schedule: &[Step]) -> TestTrace<K> {
    let mut log: Vec<K> = Vec::new();
    let mut seqs = std::collections::HashMap::<u32, u32>::new();
    let mut ops = Vec::new();
    for (i, step) in schedule.iter().enumerate() {
        let at = Timestamp::from_millis(i as i64 * 10);
        match step {
            Step::Write(a) => {
                let seq = seqs.entry(*a).or_insert(0);
                *seq += 1;
                let id = (*a, *seq);
                log.push(id);
                ops.push(OpRecord {
                    agent: AgentId(*a),
                    invoke: at,
                    response: at,
                    kind: OpKind::Write { id },
                });
            }
            Step::Read(a) => {
                ops.push(OpRecord {
                    agent: AgentId(*a),
                    invoke: at,
                    response: at,
                    kind: OpKind::Read { seq: log.clone() },
                });
            }
        }
    }
    TestTrace::new(ops)
}

proptest! {
    /// Soundness: a linearizable execution triggers no checker at all.
    #[test]
    fn linearizable_executions_are_clean(schedule in arb_schedule(3)) {
        let trace = linearizable_trace(&schedule);
        prop_assert!(checkers::check_read_your_writes(&trace).is_empty());
        prop_assert!(checkers::check_monotonic_writes(&trace).is_empty());
        prop_assert!(checkers::check_monotonic_reads(&trace).is_empty());
        prop_assert!(
            checkers::check_writes_follow_reads(&trace, &WfrMode::General).is_empty()
        );
        prop_assert!(checkers::check_content_divergence(&trace).is_empty());
        prop_assert!(checkers::check_order_divergence(&trace).is_empty());
        for kind in [WindowKind::Content, WindowKind::Order] {
            for w in all_pair_windows(&trace, kind) {
                prop_assert!(!w.any_divergence());
            }
        }
    }

    /// Completeness (RYW): erase one of a client's own completed writes
    /// from one of its later reads — the RYW checker must fire.
    #[test]
    fn planted_ryw_is_found(schedule in arb_schedule(3), pick in any::<prop::sample::Index>()) {
        let trace = linearizable_trace(&schedule);
        // Find a read whose agent has a previous write in it.
        let candidates: Vec<usize> = trace
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                op.read_seq()
                    .map(|s| s.iter().any(|(a, _)| *a == op.agent.0))
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!candidates.is_empty());
        let victim = candidates[pick.index(candidates.len())];
        let mut ops = trace.ops().to_vec();
        let agent = ops[victim].agent;
        if let OpKind::Read { seq } = &mut ops[victim].kind {
            let pos = seq.iter().position(|(a, _)| *a == agent.0).unwrap();
            seq.remove(pos);
        }
        let mutated = TestTrace::new(ops);
        let obs = checkers::check_read_your_writes(&mutated);
        prop_assert!(!obs.is_empty(), "erased own write not detected");
        prop_assert!(obs.iter().any(|o| o.agent == agent));
    }

    /// Completeness (MW): reverse the first two same-author events inside
    /// one read — the MW checker must fire.
    #[test]
    fn planted_mw_is_found(schedule in arb_schedule(2), pick in any::<prop::sample::Index>()) {
        let trace = linearizable_trace(&schedule);
        let candidates: Vec<usize> = trace
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                op.read_seq()
                    .map(|s| {
                        // Two events by the same author present?
                        s.iter().filter(|(a, _)| *a == 0).count() >= 2
                    })
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!candidates.is_empty());
        let victim = candidates[pick.index(candidates.len())];
        let mut ops = trace.ops().to_vec();
        if let OpKind::Read { seq } = &mut ops[victim].kind {
            let idx: Vec<usize> = seq
                .iter()
                .enumerate()
                .filter(|(_, (a, _))| *a == 0)
                .map(|(i, _)| i)
                .take(2)
                .collect();
            seq.swap(idx[0], idx[1]);
        }
        let mutated = TestTrace::new(ops);
        prop_assert!(
            !checkers::check_monotonic_writes(&mutated).is_empty(),
            "reversed same-author pair not detected"
        );
    }

    /// Completeness (MR): drop any event from a read that is not the
    /// agent's last — the *next* read still shows everything, so instead
    /// drop from the last read; the event was visible in the previous read
    /// by the same agent, so MR fires.
    #[test]
    fn planted_mr_is_found(schedule in arb_schedule(2)) {
        let trace = linearizable_trace(&schedule);
        // Find an agent with ≥2 reads whose earlier read is non-empty.
        let mut target: Option<(AgentId, usize)> = None;
        for agent in trace.agents() {
            let reads: Vec<usize> = trace
                .ops()
                .iter()
                .enumerate()
                .filter(|(_, op)| op.agent == agent && op.is_read())
                .map(|(i, _)| i)
                .collect();
            if reads.len() >= 2 {
                let first_len =
                    trace.ops()[reads[reads.len() - 2]].read_seq().unwrap().len();
                if first_len > 0 {
                    target = Some((agent, *reads.last().unwrap()));
                    break;
                }
            }
        }
        prop_assume!(target.is_some());
        let (agent, last_read) = target.unwrap();
        let mut ops = trace.ops().to_vec();
        if let OpKind::Read { seq } = &mut ops[last_read].kind {
            prop_assume!(!seq.is_empty());
            seq.remove(0);
        }
        let mutated = TestTrace::new(ops);
        let obs = checkers::check_monotonic_reads(&mutated);
        prop_assert!(!obs.is_empty(), "vanished event not detected");
        prop_assert!(obs.iter().any(|o| o.agent == agent));
    }

    /// Completeness (content divergence): give two agents' overlapping
    /// reads disjoint suffixes — the checker must fire for that pair.
    #[test]
    fn planted_content_divergence_is_found(schedule in arb_schedule(2)) {
        let trace = linearizable_trace(&schedule);
        let r0: Vec<usize> = trace.ops().iter().enumerate()
            .filter(|(_, op)| op.agent == AgentId(0) && op.is_read())
            .map(|(i, _)| i).collect();
        let r1: Vec<usize> = trace.ops().iter().enumerate()
            .filter(|(_, op)| op.agent == AgentId(1) && op.is_read())
            .map(|(i, _)| i).collect();
        prop_assume!(!r0.is_empty() && !r1.is_empty());
        let mut ops = trace.ops().to_vec();
        if let OpKind::Read { seq } = &mut ops[r0[0]].kind {
            seq.push((90, 1)); // phantom event only agent 0 sees
        }
        if let OpKind::Read { seq } = &mut ops[r1[0]].kind {
            seq.push((91, 1)); // phantom event only agent 1 sees
        }
        let mutated = TestTrace::new(ops);
        prop_assert!(!checkers::check_content_divergence(&mutated).is_empty());
    }

    /// Divergence-window sweep agrees with the presence checker whenever
    /// the reads overlap in time (simultaneous divergence ⇒ presence).
    #[test]
    fn window_divergence_implies_presence(schedule in arb_schedule(3)) {
        let trace = linearizable_trace(&schedule);
        for w in all_pair_windows(&trace, WindowKind::Content) {
            if w.any_divergence() {
                prop_assert!(!checkers::check_content_divergence(&trace).is_empty());
            }
        }
    }
}
