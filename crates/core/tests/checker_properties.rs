//! Soundness and completeness properties of the §III checkers.
//!
//! Strategy: generate a *linearizable execution* — a global log of writes
//! with every read returning the exact current prefix — which by
//! construction admits none of the paper's anomalies. All checkers must
//! stay silent on it (soundness: no false positives). Then plant a specific
//! corruption (drop a client's own write, reverse a pair, make an event
//! vanish, …) and assert the corresponding checker fires (completeness for
//! the planted class).
//!
//! Schedules are drawn from a seeded [`TestRng`] so every case replays
//! exactly (the offline build has no property-testing framework).

use conprobe_core::checkers::{self, WfrMode};
use conprobe_core::testutil::TestRng;
use conprobe_core::trace::{AgentId, OpKind, OpRecord, TestTrace, Timestamp};
use conprobe_core::window::{all_pair_windows, WindowKind};

type K = (u32, u32); // (author, seq)

/// A schedule of interleaved writes/reads for `agents` agents.
#[derive(Debug, Clone)]
enum Step {
    Write(u32),
    Read(u32),
}

fn gen_schedule(rng: &mut TestRng, agents: u32) -> Vec<Step> {
    let len = rng.range_usize(1, 40);
    (0..len)
        .map(|_| {
            let a = rng.range(0, u64::from(agents)) as u32;
            if rng.chance(0.5) {
                Step::Write(a)
            } else {
                Step::Read(a)
            }
        })
        .collect()
}

/// Builds a linearizable trace: operations execute instantaneously in
/// schedule order, each read returning the full current write sequence.
fn linearizable_trace(schedule: &[Step]) -> TestTrace<K> {
    let mut log: Vec<K> = Vec::new();
    let mut seqs = std::collections::HashMap::<u32, u32>::new();
    let mut ops = Vec::new();
    for (i, step) in schedule.iter().enumerate() {
        let at = Timestamp::from_millis(i as i64 * 10);
        match step {
            Step::Write(a) => {
                let seq = seqs.entry(*a).or_insert(0);
                *seq += 1;
                let id = (*a, *seq);
                log.push(id);
                ops.push(OpRecord {
                    agent: AgentId(*a),
                    invoke: at,
                    response: at,
                    kind: OpKind::Write { id },
                });
            }
            Step::Read(a) => {
                ops.push(OpRecord {
                    agent: AgentId(*a),
                    invoke: at,
                    response: at,
                    kind: OpKind::Read { seq: log.clone() },
                });
            }
        }
    }
    TestTrace::new(ops)
}

const CASES: usize = 300;

/// Soundness: a linearizable execution triggers no checker at all.
#[test]
fn linearizable_executions_are_clean() {
    let mut rng = TestRng::new(0xC8EC_0001);
    for case in 0..CASES {
        let trace = linearizable_trace(&gen_schedule(&mut rng, 3));
        assert!(checkers::check_read_your_writes(&trace).is_empty(), "case {case}");
        assert!(checkers::check_monotonic_writes(&trace).is_empty(), "case {case}");
        assert!(checkers::check_monotonic_reads(&trace).is_empty(), "case {case}");
        assert!(
            checkers::check_writes_follow_reads(&trace, &WfrMode::General).is_empty(),
            "case {case}"
        );
        assert!(checkers::check_content_divergence(&trace).is_empty(), "case {case}");
        assert!(checkers::check_order_divergence(&trace).is_empty(), "case {case}");
        for kind in [WindowKind::Content, WindowKind::Order] {
            for w in all_pair_windows(&trace, kind) {
                assert!(!w.any_divergence(), "case {case}");
            }
        }
    }
}

/// Completeness (RYW): erase one of a client's own completed writes
/// from one of its later reads — the RYW checker must fire.
#[test]
fn planted_ryw_is_found() {
    let mut rng = TestRng::new(0xC8EC_0002);
    let mut exercised = 0;
    for case in 0..CASES {
        let trace = linearizable_trace(&gen_schedule(&mut rng, 3));
        // Find a read whose agent has a previous write in it.
        let candidates: Vec<usize> = trace
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                op.read_seq().map(|s| s.iter().any(|(a, _)| *a == op.agent.0)).unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            continue;
        }
        exercised += 1;
        let victim = candidates[rng.range_usize(0, candidates.len())];
        let mut ops = trace.ops().to_vec();
        let agent = ops[victim].agent;
        if let OpKind::Read { seq } = &mut ops[victim].kind {
            let pos = seq.iter().position(|(a, _)| *a == agent.0).unwrap();
            seq.remove(pos);
        }
        let mutated = TestTrace::new(ops);
        let obs = checkers::check_read_your_writes(&mutated);
        assert!(!obs.is_empty(), "case {case}: erased own write not detected");
        assert!(obs.iter().any(|o| o.agent == agent), "case {case}");
    }
    assert!(exercised > CASES / 4, "too few exercised cases: {exercised}");
}

/// Completeness (MW): reverse the first two same-author events inside
/// one read — the MW checker must fire.
#[test]
fn planted_mw_is_found() {
    let mut rng = TestRng::new(0xC8EC_0003);
    let mut exercised = 0;
    for case in 0..CASES {
        let trace = linearizable_trace(&gen_schedule(&mut rng, 2));
        let candidates: Vec<usize> = trace
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                op.read_seq()
                    .map(|s| {
                        // Two events by the same author present?
                        s.iter().filter(|(a, _)| *a == 0).count() >= 2
                    })
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            continue;
        }
        exercised += 1;
        let victim = candidates[rng.range_usize(0, candidates.len())];
        let mut ops = trace.ops().to_vec();
        if let OpKind::Read { seq } = &mut ops[victim].kind {
            let idx: Vec<usize> = seq
                .iter()
                .enumerate()
                .filter(|(_, (a, _))| *a == 0)
                .map(|(i, _)| i)
                .take(2)
                .collect();
            seq.swap(idx[0], idx[1]);
        }
        let mutated = TestTrace::new(ops);
        assert!(
            !checkers::check_monotonic_writes(&mutated).is_empty(),
            "case {case}: reversed same-author pair not detected"
        );
    }
    assert!(exercised > CASES / 4, "too few exercised cases: {exercised}");
}

/// Completeness (MR): drop any event from a read that is not the
/// agent's last — the *next* read still shows everything, so instead
/// drop from the last read; the event was visible in the previous read
/// by the same agent, so MR fires.
#[test]
fn planted_mr_is_found() {
    let mut rng = TestRng::new(0xC8EC_0004);
    let mut exercised = 0;
    for case in 0..CASES {
        let trace = linearizable_trace(&gen_schedule(&mut rng, 2));
        // Find an agent with ≥2 reads whose earlier read is non-empty.
        let mut target: Option<(AgentId, usize)> = None;
        for agent in trace.agents() {
            let reads: Vec<usize> = trace
                .ops()
                .iter()
                .enumerate()
                .filter(|(_, op)| op.agent == agent && op.is_read())
                .map(|(i, _)| i)
                .collect();
            if reads.len() >= 2 {
                let first_len = trace.ops()[reads[reads.len() - 2]].read_seq().unwrap().len();
                if first_len > 0 {
                    target = Some((agent, *reads.last().unwrap()));
                    break;
                }
            }
        }
        let Some((agent, last_read)) = target else { continue };
        let mut ops = trace.ops().to_vec();
        if let OpKind::Read { seq } = &mut ops[last_read].kind {
            if seq.is_empty() {
                continue;
            }
            seq.remove(0);
        }
        exercised += 1;
        let mutated = TestTrace::new(ops);
        let obs = checkers::check_monotonic_reads(&mutated);
        assert!(!obs.is_empty(), "case {case}: vanished event not detected");
        assert!(obs.iter().any(|o| o.agent == agent), "case {case}");
    }
    assert!(exercised > CASES / 4, "too few exercised cases: {exercised}");
}

/// Completeness (content divergence): give two agents' overlapping
/// reads disjoint suffixes — the checker must fire for that pair.
#[test]
fn planted_content_divergence_is_found() {
    let mut rng = TestRng::new(0xC8EC_0005);
    let mut exercised = 0;
    for case in 0..CASES {
        let trace = linearizable_trace(&gen_schedule(&mut rng, 2));
        let r0: Vec<usize> = trace
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| op.agent == AgentId(0) && op.is_read())
            .map(|(i, _)| i)
            .collect();
        let r1: Vec<usize> = trace
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| op.agent == AgentId(1) && op.is_read())
            .map(|(i, _)| i)
            .collect();
        if r0.is_empty() || r1.is_empty() {
            continue;
        }
        exercised += 1;
        let mut ops = trace.ops().to_vec();
        if let OpKind::Read { seq } = &mut ops[r0[0]].kind {
            seq.push((90, 1)); // phantom event only agent 0 sees
        }
        if let OpKind::Read { seq } = &mut ops[r1[0]].kind {
            seq.push((91, 1)); // phantom event only agent 1 sees
        }
        let mutated = TestTrace::new(ops);
        assert!(
            !checkers::check_content_divergence(&mutated).is_empty(),
            "case {case}: disjoint suffixes not detected"
        );
    }
    assert!(exercised > CASES / 4, "too few exercised cases: {exercised}");
}

/// Divergence-window sweep agrees with the presence checker whenever
/// the reads overlap in time (simultaneous divergence ⇒ presence).
#[test]
fn window_divergence_implies_presence() {
    let mut rng = TestRng::new(0xC8EC_0006);
    for case in 0..CASES {
        let trace = linearizable_trace(&gen_schedule(&mut rng, 3));
        for w in all_pair_windows(&trace, WindowKind::Content) {
            if w.any_divergence() {
                assert!(!checkers::check_content_divergence(&trace).is_empty(), "case {case}");
            }
        }
    }
}
