//! The `cpw1` TCP server: catalog services on real sockets.
//!
//! [`WireServer::start`] binds one listener per agent region, hosts a
//! [`LiveCluster`] (the wall-clock bridge around the deterministic
//! replica cores), and serves frames with optional per-region artificial
//! latency shaped from the sim's WAN latency matrix. Architecture:
//!
//! * one *accept* thread per region listener (non-blocking accept + stop
//!   polling, so shutdown needs no signal machinery);
//! * one *handler* thread per connection, each with its own deterministic
//!   latency-sampling stream;
//! * one *ticker* thread advancing the cluster's replication queue and
//!   anti-entropy schedule on wall-clock time;
//! * an optional *stop-file* watcher — the workspace forbids `unsafe`, so
//!   POSIX signal handlers are out; a stop file (or a `stop` frame from
//!   any client) is the graceful-drain trigger, and `Ctrl-C` still works
//!   the ungraceful way.
//!
//! Graceful drain: once the stop flag rises, accept threads close their
//! listeners, handlers finish the request they are serving (every
//! response is written with a single `write_all` of a complete encoded
//! frame — a drained connection never ends mid-frame), and
//! [`WireServer::join`] flushes a final metrics dump through
//! [`fsio`-style atomic writes](conprobe_obs) before returning.

use crate::frame::{decode, Frame, PROTO_VERSION};
use crate::load::wire_latency_bounds_nanos;
use conprobe_obs::MetricsRegistry;
use conprobe_services::live::{LiveCluster, LiveConfig, StaleWindow};
use conprobe_services::ServiceKind;
use conprobe_sim::net::{LatencyMatrix, Region};
use conprobe_sim::{LocalTime, SimRng};
use conprobe_store::{Post, PostId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`WireServer::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Which catalog service to host.
    pub kind: ServiceKind,
    /// Seed for replication-delay and latency-shaping streams.
    pub seed: u64,
    /// Optional seeded staleness window (see [`StaleWindow`]).
    pub stale_window: Option<StaleWindow>,
    /// Multiplier on WAN delays sampled from the paper latency matrix
    /// per request. `0.0` disables artificial latency (loopback-speed
    /// serving — what the load benchmark uses); `1.0` emulates the
    /// paper's full WAN RTTs.
    pub latency_scale: f64,
    /// Probability of dropping (not answering) a request, emulating a
    /// lost response on a lossy WAN. The client's retry layer recovers.
    pub drop_prob: f64,
    /// Base TCP port; region `i` binds `base_port + i`. `0` picks
    /// ephemeral ports (tests and same-host CI).
    pub base_port: u16,
    /// Graceful-drain trigger: the server stops when this file appears.
    pub stop_file: Option<PathBuf>,
}

impl ServeConfig {
    /// Loopback defaults: ephemeral ports, no artificial latency or loss.
    pub fn loopback(kind: ServiceKind, seed: u64) -> Self {
        ServeConfig {
            kind,
            seed,
            stale_window: None,
            latency_scale: 0.0,
            drop_prob: 0.0,
            base_port: 0,
            stop_file: None,
        }
    }
}

struct Shared {
    cluster: LiveCluster,
    started: Instant,
    stop: AtomicBool,
    metrics: MetricsRegistry,
    matrix: LatencyMatrix,
    latency_scale: f64,
    drop_prob: f64,
    seed: u64,
    service_token: &'static str,
    conn_seq: AtomicU64,
    /// Connection handlers spawned by the accept threads; joined on
    /// shutdown so the final metrics dump sees every frame counted.
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn now_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

/// A running wire server. Dropping it without [`WireServer::join`] leaks
/// the serving threads; `join` performs the graceful drain.
pub struct WireServer {
    shared: Arc<Shared>,
    addrs: Vec<(Region, SocketAddr)>,
    accepters: Vec<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds the per-region listeners and starts serving.
    pub fn start(config: &ServeConfig) -> std::io::Result<WireServer> {
        let shared = Arc::new(Shared {
            cluster: LiveCluster::new(&LiveConfig {
                kind: config.kind,
                seed: config.seed,
                stale_window: config.stale_window,
            }),
            started: Instant::now(),
            stop: AtomicBool::new(false),
            metrics: MetricsRegistry::new(),
            matrix: LatencyMatrix::paper_wan(),
            latency_scale: config.latency_scale,
            drop_prob: config.drop_prob,
            seed: config.seed,
            service_token: conprobe_harness::journal::service_token(config.kind),
            conn_seq: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
        });
        let mut addrs = Vec::new();
        let mut accepters = Vec::new();
        for (i, region) in Region::AGENTS.iter().enumerate() {
            let port = if config.base_port == 0 { 0 } else { config.base_port + i as u16 };
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            listener.set_nonblocking(true)?;
            addrs.push((*region, listener.local_addr()?));
            let shared = Arc::clone(&shared);
            let region = *region;
            accepters.push(std::thread::spawn(move || accept_loop(shared, region, listener)));
        }
        let ticker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::Acquire) {
                    shared.cluster.tick(shared.now_nanos());
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let watcher = config.stop_file.clone().map(|path| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::Acquire) {
                    if path.exists() {
                        shared.stop.store(true, Ordering::Release);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            })
        });
        Ok(WireServer {
            shared,
            addrs,
            accepters,
            ticker: Some(ticker),
            watcher: Some(watcher.unwrap_or_else(|| std::thread::spawn(|| ()))),
        })
    }

    /// The bound address for each agent region.
    pub fn addrs(&self) -> &[(Region, SocketAddr)] {
        &self.addrs
    }

    /// The bound address serving clients of `region`.
    pub fn addr_for(&self, region: Region) -> SocketAddr {
        self.addrs
            .iter()
            .find(|(r, _)| *r == region)
            .map(|(_, a)| *a)
            .expect("no listener for region")
    }

    /// Raises the stop flag (same effect as a `stop` frame or the stop
    /// file appearing).
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// True once a drain has been requested (by any trigger).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Blocks until a drain is triggered, then joins every serving
    /// thread and returns the final metrics dump as pretty JSON. In-flight
    /// requests finish first: handlers only stop *between* whole frames.
    pub fn join(self) -> String {
        for handle in self.accepters {
            let _ = handle.join();
        }
        if let Some(t) = self.ticker {
            let _ = t.join();
        }
        if let Some(w) = self.watcher {
            let _ = w.join();
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock().unwrap());
        for handle in handlers {
            let _ = handle.join();
        }
        self.shared.metrics.to_json().to_pretty()
    }
}

fn accept_loop(shared: Arc<Shared>, region: Region, listener: TcpListener) {
    let connections = shared.metrics.counter("wire.server.connections");
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return; // closing the listener refuses further clients
        }
        match listener.accept() {
            Ok((stream, _)) => {
                connections.inc();
                let shared_conn = Arc::clone(&shared);
                let handle = std::thread::spawn(move || handle_conn(shared_conn, region, stream));
                shared.handlers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Serves one connection until EOF, protocol error, or drain. Every
/// response is one `write_all` of a fully encoded frame, so the stream a
/// client observes always ends on a frame boundary.
fn handle_conn(shared: Arc<Shared>, region: Region, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    let mut rng = SimRng::new(shared.seed).split_indexed("wire.conn", conn_id);
    let frames = shared.metrics.counter("wire.server.frames");
    let dropped = shared.metrics.counter("wire.server.dropped_responses");
    let op_nanos = shared.metrics.histogram("wire.server.op_nanos", &wire_latency_bounds_nanos());
    let replica_region = shared.cluster.replica_region(shared.cluster.replica_for(region));
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 64 * 1024];
    loop {
        // Serve every complete frame already buffered.
        loop {
            match decode(&buf) {
                Ok(Some((frame, consumed))) => {
                    buf.drain(..consumed);
                    frames.inc();
                    let began = Instant::now();
                    // Artificial WAN shaping: sleep a sampled agent↔replica
                    // delay (scaled), and optionally drop the response.
                    if shared.latency_scale > 0.0 {
                        let wan = shared.matrix.sample_delay(region, replica_region, &mut rng);
                        let nanos = (wan.as_nanos() as f64 * shared.latency_scale) as u64;
                        std::thread::sleep(Duration::from_nanos(nanos));
                    }
                    if shared.drop_prob > 0.0 && rng.gen_bool(shared.drop_prob) {
                        dropped.inc();
                        continue;
                    }
                    let reply = match respond(&shared, region, frame) {
                        Some(reply) => reply,
                        None => return, // protocol violation: hang up
                    };
                    op_nanos.record(began.elapsed().as_nanos() as u64);
                    if stream.write_all(&reply.encode()).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return, // corrupt stream: hang up
            }
        }
        if shared.stop.load(Ordering::Acquire) {
            // Drain point: all buffered requests above were answered in
            // full; close cleanly between frames.
            return;
        }
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll the stop flag, then read again
            }
            Err(_) => return,
        }
    }
}

/// Computes the response for one request frame. `None` means the peer
/// sent a server-role or out-of-protocol frame and the connection should
/// be dropped.
fn respond(shared: &Shared, region: Region, frame: Frame) -> Option<Frame> {
    let now = shared.now_nanos();
    match frame {
        Frame::Hello { proto: _ } => {
            // The ack always carries our version; the client decides
            // whether it can proceed.
            shared.metrics.counter("wire.server.hellos").inc();
            Some(Frame::HelloAck {
                proto: PROTO_VERSION,
                server_clock_nanos: now as i64,
                service: shared.service_token.to_owned(),
            })
        }
        Frame::Write { author, seq, client_ts_nanos, content } => {
            shared.metrics.counter("wire.server.writes").inc();
            let id = PostId::new(conprobe_store::AuthorId(author), seq);
            let post = Post::new(id, content, LocalTime::from_nanos(client_ts_nanos));
            let acked = shared.cluster.write(region, post, now);
            Some(Frame::WriteAck { id: acked.as_u64() })
        }
        Frame::Read => {
            shared.metrics.counter("wire.server.reads").inc();
            let ids = shared.cluster.read(region, now);
            Some(Frame::ReadOk { ids: ids.into_iter().map(PostId::as_u64).collect() })
        }
        Frame::Stop => {
            shared.metrics.counter("wire.server.stops").inc();
            shared.stop.store(true, Ordering::Release);
            Some(Frame::StopAck)
        }
        // Server-role frames from a client are a protocol violation.
        Frame::HelloAck { .. }
        | Frame::WriteAck { .. }
        | Frame::ReadOk { .. }
        | Frame::Throttled
        | Frame::StopAck => None,
    }
}
