//! The `cpw1` TCP server: catalog services on real sockets.
//!
//! [`WireServer::start`] binds one listener per agent region, hosts a
//! keyspace-sharded [`LiveCluster`] (the wall-clock bridge around the
//! deterministic replica cores), and serves frames with optional
//! per-region artificial latency shaped from the sim's WAN latency
//! matrix. Architecture — a readiness-sweep event loop (the workspace is
//! `std`-only and forbids `unsafe`, so there is no epoll; non-blocking
//! sockets swept in a tight loop get the same effect on loopback):
//!
//! * one *accept* thread per region listener (non-blocking accept + stop
//!   polling, so shutdown needs no signal machinery) handing accepted
//!   streams to the event loops round-robin;
//! * [`ServeConfig::event_loops`] *worker* threads, each owning a set of
//!   non-blocking connections it multiplexes: per sweep it reads every
//!   readable socket to exhaustion, serves **all** buffered complete
//!   frames (pipelining: many in-flight requests per connection,
//!   answered strictly in arrival order), and coalesces the responses
//!   into one output buffer flushed with single large writes — the
//!   write-batching that amortizes syscalls over the pipeline depth;
//! * one *ticker* thread advancing the cluster's replication queue and
//!   anti-entropy schedule on wall-clock time (the cluster's atomic
//!   horizon makes the per-request inline tick nearly free);
//! * an optional *stop-file* watcher — the workspace forbids `unsafe`,
//!   so POSIX signal handlers are out; a stop file (or a `stop` frame
//!   from any client) is the graceful-drain trigger, and `Ctrl-C` still
//!   works the ungraceful way.
//!
//! Graceful drain: once the stop flag rises, accept threads close their
//! listeners, each worker serves the requests already buffered on its
//! connections, then switches the sockets back to blocking and flushes
//! every output buffer to the last byte — a drained connection never
//! ends mid-frame — and [`WireServer::join`] returns the final metrics
//! dump.
//!
//! Request routing: legacy `read`/`write` frames address key 0 (the
//! paper's single-object workload); `read_q`/`write_q` frames carry an
//! explicit key, routed by the cluster's consistent-hash [`ShardRing`]
//! (see `conprobe_services::shard`), plus a request id echoed in the
//! response so pipelined clients can verify per-connection FIFO order.

use crate::frame::{
    append_read_q_ok_iter, append_write_q_ack, decode_raw, parse_payload, Frame, KIND_READ_Q,
    KIND_WRITE_Q, PROTO_VERSION,
};
use crate::load::wire_latency_bounds_nanos;
use conprobe_obs::MetricsRegistry;
use conprobe_services::live::{LiveCluster, LiveConfig, RejoinReport, StaleWindow};
use conprobe_services::ServiceKind;
use conprobe_sim::net::{LatencyMatrix, Region};
use conprobe_sim::{BrownoutMode, LocalTime, SimRng};
use conprobe_store::{Post, PostId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`WireServer::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Which catalog service to host.
    pub kind: ServiceKind,
    /// Seed for replication-delay and latency-shaping streams.
    pub seed: u64,
    /// Optional seeded staleness window (see [`StaleWindow`]).
    pub stale_window: Option<StaleWindow>,
    /// Multiplier on WAN delays sampled from the paper latency matrix
    /// per request. `0.0` disables artificial latency (loopback-speed
    /// serving — what the load benchmark uses); `1.0` emulates the
    /// paper's full WAN RTTs.
    pub latency_scale: f64,
    /// Probability of dropping (not answering) a request, emulating a
    /// lost response on a lossy WAN. The client's retry layer recovers.
    pub drop_prob: f64,
    /// Base TCP port; region `i` binds `base_port + i`. `0` picks
    /// ephemeral ports (tests and same-host CI).
    pub base_port: u16,
    /// Graceful-drain trigger: the server stops when this file appears.
    pub stop_file: Option<PathBuf>,
    /// Keyspace shards in the hosted [`LiveCluster`] (clamped to ≥ 1).
    pub shards: usize,
    /// Event-loop worker threads multiplexing the connections (clamped
    /// to ≥ 1). One is right for one core; more only helps when the
    /// host actually has spare cores.
    pub event_loops: usize,
    /// Bounded accept backlog: above this many live connections the
    /// server sheds new clients with a typed `busy` frame instead of
    /// queueing them. `0` disables shedding (unbounded).
    pub max_connections: usize,
    /// Slow-client eviction: a connection whose response bytes stay
    /// unflushable for longer than this budget is dropped so one
    /// trickle-reading client cannot pin worker output buffers.
    /// `Duration::ZERO` disables eviction.
    pub stall_budget: Duration,
}

impl ServeConfig {
    /// Loopback defaults: ephemeral ports, no artificial latency or
    /// loss, a sharded keyspace on one event loop.
    pub fn loopback(kind: ServiceKind, seed: u64) -> Self {
        ServeConfig {
            kind,
            seed,
            stale_window: None,
            latency_scale: 0.0,
            drop_prob: 0.0,
            base_port: 0,
            stop_file: None,
            shards: 16,
            event_loops: 1,
            max_connections: 0,
            stall_budget: Duration::ZERO,
        }
    }
}

/// Typed serve-path errors: a misconfigured probe or chaos target fails
/// with a readable message instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No listener is bound for this region.
    UnknownRegion(Region),
    /// Replica index out of range for the hosted topology.
    UnknownReplica(usize),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownRegion(r) => write!(f, "no listener for region {r}"),
            ServeError::UnknownReplica(i) => write!(f, "no replica with index {i}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Backoff hint carried by shed `busy` frames.
const BUSY_RETRY_MILLIS: u32 = 50;

/// Per-replica brownout switches the fault driver toggles at runtime.
#[derive(Default)]
struct BrownoutState {
    /// Throttle storm: the front door answers legacy reads/writes with
    /// `Frame::Throttled` while set.
    throttle: AtomicBool,
    /// Added service delay in nanoseconds (folded into the WAN-shaping
    /// release schedule); `0` means no delay brownout.
    delay_nanos: AtomicU64,
}

struct Shared {
    cluster: LiveCluster,
    started: Instant,
    stop: AtomicBool,
    metrics: MetricsRegistry,
    matrix: LatencyMatrix,
    latency_scale: f64,
    drop_prob: f64,
    seed: u64,
    service_token: &'static str,
    conn_seq: AtomicU64,
    /// One inbox per event-loop worker; accept threads drop new
    /// connections in round-robin and workers adopt them each sweep.
    inboxes: Vec<Mutex<Vec<Conn>>>,
    /// Live (accepted, not yet dropped) connections — the shed gate.
    live_conns: AtomicU64,
    /// Accept cap behind the `busy` shed; `0` = unbounded.
    max_connections: usize,
    /// Slow-client eviction budget; `ZERO` = disabled.
    stall_budget: Duration,
    /// Per-replica crash flags. A down replica's listener stays bound
    /// (rebinding the port would race TIME_WAIT) but refuses clients:
    /// new accepts are dropped immediately and live connections evicted,
    /// so the client sees a clean EOF and its reconnect policy backs
    /// off until the replica rejoins.
    replica_down: Vec<AtomicBool>,
    /// Per-replica brownout switches.
    brownouts: Vec<BrownoutState>,
}

impl Shared {
    fn now_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

/// A running wire server. Dropping it without [`WireServer::join`] leaks
/// the serving threads; `join` performs the graceful drain.
pub struct WireServer {
    shared: Arc<Shared>,
    addrs: Vec<(Region, SocketAddr)>,
    accepters: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds the per-region listeners and starts serving.
    pub fn start(config: &ServeConfig) -> std::io::Result<WireServer> {
        let event_loops = config.event_loops.max(1);
        let cluster = LiveCluster::new(&LiveConfig {
            kind: config.kind,
            seed: config.seed,
            stale_window: config.stale_window,
            shards: config.shards,
        });
        let replicas = cluster.replica_count();
        let shared = Arc::new(Shared {
            cluster,
            started: Instant::now(),
            stop: AtomicBool::new(false),
            metrics: MetricsRegistry::new(),
            matrix: LatencyMatrix::paper_wan(),
            latency_scale: config.latency_scale,
            drop_prob: config.drop_prob,
            seed: config.seed,
            service_token: conprobe_harness::journal::service_token(config.kind),
            conn_seq: AtomicU64::new(0),
            inboxes: (0..event_loops).map(|_| Mutex::new(Vec::new())).collect(),
            live_conns: AtomicU64::new(0),
            max_connections: config.max_connections,
            stall_budget: config.stall_budget,
            replica_down: (0..replicas).map(|_| AtomicBool::new(false)).collect(),
            brownouts: (0..replicas).map(|_| BrownoutState::default()).collect(),
        });
        let mut addrs = Vec::new();
        let mut accepters = Vec::new();
        for (i, region) in Region::AGENTS.iter().enumerate() {
            let port = if config.base_port == 0 { 0 } else { config.base_port + i as u16 };
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            listener.set_nonblocking(true)?;
            addrs.push((*region, listener.local_addr()?));
            let shared = Arc::clone(&shared);
            let region = *region;
            accepters.push(std::thread::spawn(move || accept_loop(shared, region, listener)));
        }
        let workers = (0..event_loops)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared, w))
            })
            .collect();
        let ticker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::Acquire) {
                    shared.cluster.tick(shared.now_nanos());
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let watcher = config.stop_file.clone().map(|path| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::Acquire) {
                    if path.exists() {
                        shared.stop.store(true, Ordering::Release);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            })
        });
        Ok(WireServer {
            shared,
            addrs,
            accepters,
            workers,
            ticker: Some(ticker),
            watcher: Some(watcher.unwrap_or_else(|| std::thread::spawn(|| ()))),
        })
    }

    /// The bound address for each agent region.
    pub fn addrs(&self) -> &[(Region, SocketAddr)] {
        &self.addrs
    }

    /// The bound address serving clients of `region`.
    pub fn addr_for(&self, region: Region) -> Result<SocketAddr, ServeError> {
        self.addrs
            .iter()
            .find(|(r, _)| *r == region)
            .map(|(_, a)| *a)
            .ok_or(ServeError::UnknownRegion(region))
    }

    /// Crashes replica `idx` mid-run: its in-memory state is wiped and
    /// its front door goes dark — new connections are refused and live
    /// ones evicted — while the listener keeps the port reserved so the
    /// later restart never races `TIME_WAIT` rebinding.
    pub fn kill_replica(&self, idx: usize) -> Result<(), ServeError> {
        let down = self.shared.replica_down.get(idx).ok_or(ServeError::UnknownReplica(idx))?;
        down.store(true, Ordering::Release);
        let changes_before = self.shared.cluster.pbft_view_changes();
        self.shared.cluster.crash_replica(idx);
        self.shared.metrics.counter("wire.server.replica_kills").inc();
        let rotations = self.shared.cluster.pbft_view_changes() - changes_before;
        for _ in 0..rotations {
            self.shared.metrics.counter("wire.server.view_changes").inc();
        }
        Ok(())
    }

    /// PBFT-arm consensus status as `(view, leader, view_changes)`, or
    /// `None` for every other service kind.
    pub fn pbft_status(&self) -> Option<(u64, usize, u64)> {
        let leader = self.shared.cluster.pbft_leader()?;
        Some((self.shared.cluster.pbft_view(), leader, self.shared.cluster.pbft_view_changes()))
    }

    /// Restarts a crashed replica: a quorum-arm replica rejoins via
    /// `cpj1` state transfer from its peers, a weak-arm replica rejoins
    /// cold (replication and anti-entropy converge it); only then does
    /// its front door reopen.
    pub fn restart_replica(&self, idx: usize) -> Result<RejoinReport, ServeError> {
        let down = self.shared.replica_down.get(idx).ok_or(ServeError::UnknownReplica(idx))?;
        let report = self.shared.cluster.recover_replica(idx);
        down.store(false, Ordering::Release);
        self.shared.metrics.counter("wire.server.replica_restarts").inc();
        Ok(report)
    }

    /// Sets (or with `None` clears) replica `idx`'s brownout. A
    /// throttle storm makes the legacy front door answer reads/writes
    /// with `Frame::Throttled`; a delay brownout adds fixed service
    /// latency on every connection pinned to the replica.
    pub fn set_brownout(&self, idx: usize, mode: Option<BrownoutMode>) -> Result<(), ServeError> {
        let state = self.shared.brownouts.get(idx).ok_or(ServeError::UnknownReplica(idx))?;
        match mode {
            None => {
                state.throttle.store(false, Ordering::Release);
                state.delay_nanos.store(0, Ordering::Release);
            }
            Some(BrownoutMode::ThrottleStorm) => state.throttle.store(true, Ordering::Release),
            Some(BrownoutMode::Delay(d)) => {
                state.delay_nanos.store(d.as_nanos(), Ordering::Release)
            }
        }
        Ok(())
    }

    /// Replica count of the hosted cluster (kill/restart index space).
    pub fn replica_count(&self) -> usize {
        self.shared.replica_down.len()
    }

    /// Keyspace shards in the hosted cluster.
    pub fn shard_count(&self) -> usize {
        self.shared.cluster.shard_count()
    }

    /// Raises the stop flag (same effect as a `stop` frame or the stop
    /// file appearing).
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// True once a drain has been requested (by any trigger).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Blocks until a drain is triggered, then joins every serving
    /// thread and returns the final metrics dump as pretty JSON.
    /// In-flight requests finish first: workers answer every request
    /// already buffered and flush every response in full before closing.
    pub fn join(self) -> String {
        for handle in self.accepters {
            let _ = handle.join();
        }
        for handle in self.workers {
            let _ = handle.join();
        }
        if let Some(t) = self.ticker {
            let _ = t.join();
        }
        if let Some(w) = self.watcher {
            let _ = w.join();
        }
        self.shared.metrics.to_json().to_pretty()
    }
}

fn accept_loop(shared: Arc<Shared>, region: Region, listener: TcpListener) {
    let connections = shared.metrics.counter("wire.server.connections");
    let busy_sheds = shared.metrics.counter("wire.server.busy_sheds");
    let refused_down = shared.metrics.counter("wire.server.refused_down");
    let replica_idx = shared.cluster.replica_for(region);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return; // closing the listener refuses further clients
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                // A crashed replica's front door is dark: accept and
                // immediately drop, so the client sees EOF and its
                // reconnect policy backs off until the rejoin.
                if shared.replica_down[replica_idx].load(Ordering::Acquire) {
                    refused_down.inc();
                    continue;
                }
                // Bounded backlog: over the connection budget, shed the
                // client with a typed `busy` frame (retryable, carries a
                // backoff hint) instead of silently queueing it. The
                // accepted stream is still blocking here, so the tiny
                // frame flushes synchronously before the drop.
                if shared.max_connections > 0
                    && shared.live_conns.load(Ordering::Acquire) >= shared.max_connections as u64
                {
                    busy_sheds.inc();
                    let mut shed = Vec::with_capacity(32);
                    Frame::Busy { retry_after_millis: BUSY_RETRY_MILLIS }.encode_into(&mut shed);
                    let _ = stream.write_all(&shed);
                    let _ = stream.flush();
                    continue;
                }
                connections.inc();
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                shared.live_conns.fetch_add(1, Ordering::AcqRel);
                let conn = Conn {
                    stream,
                    region,
                    replica_region: shared.cluster.replica_region(replica_idx),
                    replica_idx,
                    inbuf: Vec::new(),
                    inpos: 0,
                    outbuf: Vec::new(),
                    outpos: 0,
                    rng: SimRng::new(shared.seed).split_indexed("wire.conn", conn_id),
                    release_at: None,
                    stalled_since: None,
                };
                let inbox = &shared.inboxes[(conn_id as usize) % shared.inboxes.len()];
                inbox.lock().unwrap().push(conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// One multiplexed connection owned by an event-loop worker.
struct Conn {
    stream: TcpStream,
    region: Region,
    replica_region: Region,
    /// Index of the replica this connection is pinned to (crash flags
    /// and brownout switches key on it).
    replica_idx: usize,
    /// Inbound bytes; `inpos..` is the unconsumed tail (consuming a
    /// frame advances `inpos` instead of memmoving the buffer).
    inbuf: Vec<u8>,
    inpos: usize,
    /// Coalesced responses awaiting flush; `outpos..` is unsent.
    outbuf: Vec<u8>,
    outpos: usize,
    rng: SimRng,
    /// WAN shaping: the instant the next buffered request may be served.
    release_at: Option<Instant>,
    /// When response bytes first failed to flush; cleared on a full
    /// flush. Drives the slow-client stall budget.
    stalled_since: Option<Instant>,
}

/// Soft cap on unserved inbound bytes per connection per sweep; frames
/// already buffered are always served, this only pauses further reads so
/// one fire-hose connection cannot starve its loop-mates.
const READ_BACKLOG_CAP: usize = 1 << 20;

/// Outcome of one sweep over one connection.
enum Sweep {
    /// Bytes moved or frames served — keep the loop hot.
    Progress,
    /// Nothing to do.
    Idle,
    /// EOF, protocol violation, or I/O error — drop the connection.
    Closed,
}

/// Per-worker handles to the shared metrics (resolved once, not per op).
struct Counters {
    frames: conprobe_obs::Counter,
    hellos: conprobe_obs::Counter,
    writes: conprobe_obs::Counter,
    reads: conprobe_obs::Counter,
    stops: conprobe_obs::Counter,
    dropped: conprobe_obs::Counter,
    slow_evictions: conprobe_obs::Counter,
    throttled: conprobe_obs::Counter,
    op_nanos: conprobe_obs::Histogram,
}

fn worker_loop(shared: Arc<Shared>, worker: usize) {
    let ctrs = Counters {
        frames: shared.metrics.counter("wire.server.frames"),
        hellos: shared.metrics.counter("wire.server.hellos"),
        writes: shared.metrics.counter("wire.server.writes"),
        reads: shared.metrics.counter("wire.server.reads"),
        stops: shared.metrics.counter("wire.server.stops"),
        dropped: shared.metrics.counter("wire.server.dropped_responses"),
        slow_evictions: shared.metrics.counter("wire.server.slow_evictions"),
        throttled: shared.metrics.counter("wire.server.throttled"),
        op_nanos: shared.metrics.histogram("wire.server.op_nanos", &wire_latency_bounds_nanos()),
    };
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 256 * 1024];
    let mut idle_sweeps: u32 = 0;
    loop {
        let stopping = shared.stop.load(Ordering::Acquire);
        {
            let mut inbox = shared.inboxes[worker].lock().unwrap();
            conns.append(&mut inbox);
        }
        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            match sweep_conn(&shared, &ctrs, &mut conns[i], &mut scratch, stopping) {
                Sweep::Progress => {
                    progressed = true;
                    i += 1;
                }
                Sweep::Idle => i += 1,
                Sweep::Closed => {
                    shared.live_conns.fetch_sub(1, Ordering::AcqRel);
                    conns.swap_remove(i);
                }
            }
        }
        if stopping {
            // Drain point: the sweep above answered everything buffered;
            // push the remaining response bytes out synchronously so no
            // client ever observes a stream ending mid-frame.
            for conn in conns.drain(..) {
                shared.live_conns.fetch_sub(1, Ordering::AcqRel);
                drain_flush(conn);
            }
            return;
        }
        if progressed {
            idle_sweeps = 0;
        } else {
            // Yield first: on a saturated core the client thread likely
            // holds the next request, and a yield hands it the CPU at
            // context-switch cost instead of a 50µs timer wait. Only a
            // genuinely idle server (yields keep coming back with no
            // work) backs off to sleeping.
            idle_sweeps = idle_sweeps.saturating_add(1);
            if idle_sweeps > 256 {
                std::thread::sleep(Duration::from_micros(50));
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// One event-loop pass over one connection: read to exhaustion, serve
/// every buffered complete frame in arrival order, flush what the socket
/// will take.
fn sweep_conn(
    shared: &Shared,
    ctrs: &Counters,
    conn: &mut Conn,
    scratch: &mut [u8],
    stopping: bool,
) -> Sweep {
    // A freshly crashed replica evicts its live connections: clients see
    // a clean close, retry, and hit the refuse-at-accept path until the
    // rejoin.
    if shared.replica_down[conn.replica_idx].load(Ordering::Acquire) {
        return Sweep::Closed;
    }
    let mut progressed = false;
    let mut eof = false;
    if !stopping {
        while conn.inbuf.len() - conn.inpos < READ_BACKLOG_CAP {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&scratch[..n]);
                    progressed = true;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Sweep::Closed,
            }
        }
    }
    // Serve every complete frame already buffered, strictly in arrival
    // order — the per-connection FIFO guarantee pipelined clients check
    // via request ids.
    loop {
        let raw = match decode_raw(&conn.inbuf[conn.inpos..]) {
            Ok(Some(raw)) => raw,
            Ok(None) => break,
            Err(_) => return Sweep::Closed, // corrupt stream: hang up
        };
        // Artificial WAN shaping: each request waits out a sampled
        // agent↔replica delay (plus any delay-brownout surcharge on the
        // replica) before being served. The event loop keeps the request
        // buffered and revisits on later sweeps instead of sleeping, so
        // shaping one connection never stalls the others.
        let brownout_nanos = shared.brownouts[conn.replica_idx].delay_nanos.load(Ordering::Acquire);
        if shared.latency_scale > 0.0 || brownout_nanos > 0 {
            match conn.release_at {
                None => {
                    let mut nanos = brownout_nanos;
                    if shared.latency_scale > 0.0 {
                        let wan = shared.matrix.sample_delay(
                            conn.region,
                            conn.replica_region,
                            &mut conn.rng,
                        );
                        nanos += (wan.as_nanos() as f64 * shared.latency_scale) as u64;
                    }
                    conn.release_at = Some(Instant::now() + Duration::from_nanos(nanos));
                    break;
                }
                Some(t) if Instant::now() < t => break,
                Some(_) => conn.release_at = None,
            }
        }
        let payload_at = conn.inpos + crate::frame::HEADER_LEN;
        let payload_end = conn.inpos + raw.consumed;
        conn.inpos += raw.consumed;
        ctrs.frames.inc();
        let began = Instant::now();
        let now = began.duration_since(shared.started).as_nanos() as u64;
        if shared.drop_prob > 0.0 && conn.rng.gen_bool(shared.drop_prob) {
            ctrs.dropped.inc();
            continue;
        }
        let payload = &conn.inbuf[payload_at..payload_end];
        let served = match raw.kind {
            KIND_READ_Q => {
                ctrs.reads.inc();
                let req = u32::from_le_bytes(payload[..4].try_into().unwrap());
                let key = u32::from_le_bytes(payload[4..8].try_into().unwrap());
                let ids = shared.cluster.read_keyed(conn.region, key, now);
                append_read_q_ok_iter(&mut conn.outbuf, req, ids.iter().map(|id| id.as_u64()));
                true
            }
            KIND_WRITE_Q => {
                ctrs.writes.inc();
                let req = u32::from_le_bytes(payload[..4].try_into().unwrap());
                let key = u32::from_le_bytes(payload[4..8].try_into().unwrap());
                let author = u32::from_le_bytes(payload[8..12].try_into().unwrap());
                let seq = u32::from_le_bytes(payload[12..16].try_into().unwrap());
                let ts = i64::from_le_bytes(payload[16..24].try_into().unwrap());
                let content = match std::str::from_utf8(&payload[24..]) {
                    Ok(s) => s.to_owned(),
                    Err(_) => return Sweep::Closed,
                };
                let id = PostId::new(conprobe_store::AuthorId(author), seq);
                let post = Post::new(id, content, LocalTime::from_nanos(ts));
                let acked = shared.cluster.write_keyed(conn.region, key, post, now);
                append_write_q_ack(&mut conn.outbuf, req, acked.as_u64());
                true
            }
            _ => {
                let frame = match parse_payload(raw.kind, payload) {
                    Ok(frame) => frame,
                    Err(_) => return Sweep::Closed,
                };
                match respond_legacy(shared, ctrs, conn, frame, now) {
                    Some(reply) => {
                        reply.encode_into(&mut conn.outbuf);
                        true
                    }
                    None => return Sweep::Closed, // protocol violation
                }
            }
        };
        if served {
            ctrs.op_nanos.record(began.elapsed().as_nanos() as u64);
            progressed = true;
        }
    }
    // Reclaim fully consumed input; compact a large consumed prefix so
    // the buffer does not grow without bound under sustained pipelining.
    if conn.inpos == conn.inbuf.len() {
        conn.inbuf.clear();
        conn.inpos = 0;
    } else if conn.inpos > 64 * 1024 {
        conn.inbuf.drain(..conn.inpos);
        conn.inpos = 0;
    }
    match flush_outbuf(conn) {
        Ok(wrote) => progressed |= wrote,
        Err(()) => return Sweep::Closed,
    }
    // Slow-client stall budget: a connection whose response bytes sit
    // unflushable past the budget (a trickle reader, or a peer that
    // stopped reading entirely) is evicted rather than pinning worker
    // buffers indefinitely.
    if conn.outpos < conn.outbuf.len() {
        if !shared.stall_budget.is_zero() {
            match conn.stalled_since {
                None => conn.stalled_since = Some(Instant::now()),
                Some(since) if since.elapsed() > shared.stall_budget => {
                    ctrs.slow_evictions.inc();
                    return Sweep::Closed;
                }
                Some(_) => {}
            }
        }
    } else {
        conn.stalled_since = None;
    }
    if eof && conn.inpos == conn.inbuf.len() && conn.outpos == conn.outbuf.len() {
        return Sweep::Closed;
    }
    if progressed {
        Sweep::Progress
    } else {
        Sweep::Idle
    }
}

/// Writes as much of the batched response buffer as the socket accepts.
fn flush_outbuf(conn: &mut Conn) -> Result<bool, ()> {
    let mut wrote = false;
    while conn.outpos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                conn.outpos += n;
                wrote = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    if conn.outpos == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.outpos = 0;
    } else if conn.outpos > 64 * 1024 {
        conn.outbuf.drain(..conn.outpos);
        conn.outpos = 0;
    }
    Ok(wrote)
}

/// Final synchronous flush at drain: every byte of every answered
/// response reaches the socket before the connection closes.
fn drain_flush(mut conn: Conn) {
    if conn.outpos < conn.outbuf.len() {
        let _ = conn.stream.set_nonblocking(false);
        let _ = conn.stream.write_all(&conn.outbuf[conn.outpos..]);
        let _ = conn.stream.flush();
    }
}

/// Computes the response for one legacy (un-keyed) request frame. `None`
/// means the peer sent a server-role or out-of-protocol frame and the
/// connection should be dropped. A throttle-storm brownout on the
/// connection's replica answers reads and writes with
/// [`Frame::Throttled`] — the legacy path only, mirroring the sim's
/// front-door brownout (the keyed fast path stays unshaped).
fn respond_legacy(
    shared: &Shared,
    ctrs: &Counters,
    conn: &Conn,
    frame: Frame,
    now: u64,
) -> Option<Frame> {
    let region = conn.region;
    let throttling = shared.brownouts[conn.replica_idx].throttle.load(Ordering::Acquire);
    match frame {
        Frame::Hello { proto: _ } => {
            // The ack always carries our version; the client decides
            // whether it can proceed.
            ctrs.hellos.inc();
            Some(Frame::HelloAck {
                proto: PROTO_VERSION,
                server_clock_nanos: now as i64,
                service: shared.service_token.to_owned(),
            })
        }
        Frame::Write { author, seq, client_ts_nanos, content } => {
            ctrs.writes.inc();
            if throttling {
                ctrs.throttled.inc();
                return Some(Frame::Throttled);
            }
            let id = PostId::new(conprobe_store::AuthorId(author), seq);
            let post = Post::new(id, content, LocalTime::from_nanos(client_ts_nanos));
            let acked = shared.cluster.write(region, post, now);
            Some(Frame::WriteAck { id: acked.as_u64() })
        }
        Frame::Read => {
            ctrs.reads.inc();
            if throttling {
                ctrs.throttled.inc();
                return Some(Frame::Throttled);
            }
            let ids = shared.cluster.read(region, now);
            Some(Frame::ReadOk { ids: ids.into_iter().map(PostId::as_u64).collect() })
        }
        Frame::Stop => {
            ctrs.stops.inc();
            shared.stop.store(true, Ordering::Release);
            Some(Frame::StopAck)
        }
        // Server-role frames from a client are a protocol violation,
        // keyed frames are handled on the raw path before parsing, and
        // the dispatch family belongs to a dispatch coordinator, not a
        // service server.
        Frame::HelloAck { .. }
        | Frame::WriteAck { .. }
        | Frame::ReadOk { .. }
        | Frame::Throttled
        | Frame::StopAck
        | Frame::WriteQ { .. }
        | Frame::WriteQAck { .. }
        | Frame::ReadQ { .. }
        | Frame::ReadQOk { .. }
        | Frame::WorkReq { .. }
        | Frame::WorkGrant { .. }
        | Frame::WorkFin
        | Frame::ResultPush { .. }
        | Frame::ResultAck
        | Frame::Busy { .. } => None,
    }
}
