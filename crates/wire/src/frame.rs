//! The `cpw1` wire protocol: length-prefixed, FNV-checksummed binary
//! frames over TCP.
//!
//! Every frame is
//!
//! ```text
//! magic  4 bytes  b"cpw1"            (protocol + major version)
//! kind   1 byte   message discriminant
//! len    4 bytes  payload length, little-endian u32
//! sum    8 bytes  FNV-1a 64 of the payload, little-endian
//! payload len bytes
//! ```
//!
//! and the decoder is *incremental*: fed any byte prefix it either yields
//! a complete frame and the bytes consumed, asks for more input, or
//! rejects the stream — it never panics and never allocates for a frame
//! it has already decided to reject (the length field is validated
//! against [`MAX_PAYLOAD`] and each kind's own size contract *before* any
//! payload handling). Same discipline as `conprobe-json`'s parser, same
//! fuzz-style test corpus.
//!
//! Protocol evolution: the magic carries the major version (`cpw1`); the
//! `hello`/`hello_ack` exchange carries a minor [`PROTO_VERSION`] so
//! compatible revisions can negotiate without re-framing.

use std::fmt;

/// Frame magic: protocol name + major version.
pub const MAGIC: [u8; 4] = *b"cpw1";

/// Minor protocol version carried in `hello`/`hello_ack`. Version 2
/// added the pipelined, keyed frame family (`write_q`/`read_q` and
/// their acks): requests carry a client-chosen request id echoed in the
/// response, plus a keyspace key the server maps onto a shard. Version 3
/// added the campaign dispatch family (`work_req`/`work_grant`/
/// `work_fin`/`result_push`/`result_ack`) used between a `dispatch`
/// coordinator and its `worker` peers. Version 4 added the `busy`
/// load-shed frame: an overloaded server answers (or greets) a client
/// with `busy` instead of queueing it, and the client retries with
/// backoff.
pub const PROTO_VERSION: u16 = 4;

/// Frame header size: magic + kind + len + checksum.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 8;

/// Hard cap on payload size. A read of every post a 3-agent campaign can
/// produce fits in a few kilobytes; a megabyte means a corrupt or hostile
/// length field, and is rejected before any allocation.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// FNV-1a 64-bit — the same checksum the campaign journal uses.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

const KIND_HELLO: u8 = 0;
const KIND_HELLO_ACK: u8 = 1;
const KIND_WRITE: u8 = 2;
const KIND_WRITE_ACK: u8 = 3;
const KIND_READ: u8 = 4;
const KIND_READ_OK: u8 = 5;
const KIND_THROTTLED: u8 = 6;
const KIND_STOP: u8 = 7;
const KIND_STOP_ACK: u8 = 8;
pub(crate) const KIND_WRITE_Q: u8 = 9;
pub(crate) const KIND_WRITE_Q_ACK: u8 = 10;
pub(crate) const KIND_READ_Q: u8 = 11;
pub(crate) const KIND_READ_Q_OK: u8 = 12;
const KIND_WORK_REQ: u8 = 13;
const KIND_WORK_GRANT: u8 = 14;
const KIND_WORK_FIN: u8 = 15;
const KIND_RESULT_PUSH: u8 = 16;
const KIND_RESULT_ACK: u8 = 17;
pub(crate) const KIND_BUSY: u8 = 18;
const KIND_MAX: u8 = KIND_BUSY;

/// One `cpw1` message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server greeting; doubles as the Cristian clock probe.
    Hello {
        /// The client's minor protocol version.
        proto: u16,
    },
    /// Server → client: version, hosted service token, and the server's
    /// clock reading (nanoseconds on the server's monotonic timeline) at
    /// the moment the hello was handled — the `agent_reading` of a
    /// [`ProbeSample`](conprobe_harness::clocksync::ProbeSample).
    HelloAck {
        /// The server's minor protocol version.
        proto: u16,
        /// Nanoseconds on the server's monotonic clock.
        server_clock_nanos: i64,
        /// Journal-style token of the hosted service (e.g. `blogger`).
        service: String,
    },
    /// Client → server: create a post.
    Write {
        /// Writing author (agent) id.
        author: u32,
        /// Author-local sequence number.
        seq: u32,
        /// The client's local timestamp for the post.
        client_ts_nanos: i64,
        /// Post body.
        content: String,
    },
    /// Server → client: the write was accepted; echoes the packed
    /// [`PostId`](conprobe_store::PostId).
    WriteAck {
        /// `PostId::as_u64()` of the created post.
        id: u64,
    },
    /// Client → server: read the feed.
    Read,
    /// Server → client: the feed, as packed post ids in feed order.
    ReadOk {
        /// `PostId::as_u64()` for each post, in returned order.
        ids: Vec<u64>,
    },
    /// Server → client: rejected by the rate limiter.
    Throttled,
    /// Client → server: begin a graceful drain of the whole server.
    Stop,
    /// Server → client: drain initiated.
    StopAck,
    /// Client → server (v2): a pipelined, keyed write. Many may be in
    /// flight on one connection; the server answers them in arrival
    /// order, each ack echoing `req`.
    WriteQ {
        /// Client-chosen request id, echoed in the ack.
        req: u32,
        /// Keyspace key; the server routes it to a shard.
        key: u32,
        /// Writing author (agent) id.
        author: u32,
        /// Author-local sequence number.
        seq: u32,
        /// The client's local timestamp for the post.
        client_ts_nanos: i64,
        /// Post body.
        content: String,
    },
    /// Server → client (v2): ack for a [`Frame::WriteQ`].
    WriteQAck {
        /// The request id of the write being acknowledged.
        req: u32,
        /// `PostId::as_u64()` of the created post.
        id: u64,
    },
    /// Client → server (v2): a pipelined, keyed feed read.
    ReadQ {
        /// Client-chosen request id, echoed in the response.
        req: u32,
        /// Keyspace key; the server routes it to a shard.
        key: u32,
    },
    /// Server → client (v2): the keyed feed for a [`Frame::ReadQ`].
    ReadQOk {
        /// The request id of the read being answered.
        req: u32,
        /// `PostId::as_u64()` for each post, in returned order.
        ids: Vec<u64>,
    },
    /// Worker → dispatcher (v2): request one unit of campaign work.
    WorkReq {
        /// The worker's self-assigned id (used only for progress labels).
        worker: u32,
    },
    /// Dispatcher → worker (v2): a leased work unit. The worker derives
    /// the instance config from its own identical campaign parameters;
    /// `seed` lets it verify both sides derived the same plan.
    WorkGrant {
        /// Campaign instance index to run.
        instance: u32,
        /// The instance's root seed, as derived by the dispatcher.
        seed: u64,
        /// Journal cell the result belongs to (e.g. `blogger/test1`).
        cell: String,
    },
    /// Dispatcher → worker (v2): no work remains; disconnect.
    WorkFin,
    /// Worker → dispatcher (v2): a finished unit's journal record —
    /// the exact JSON payload the worker would have written to a local
    /// campaign journal, pushed verbatim so the dispatcher's journal is
    /// byte-compatible with a single-process run.
    ResultPush {
        /// The journal record payload (JSON text).
        record: String,
    },
    /// Dispatcher → worker (v2): the pushed record is durably journaled;
    /// the worker may request the next unit.
    ResultAck,
    /// Server → client (v4): load shed. The server is over its accept
    /// backlog or connection budget and refuses to queue this client;
    /// the connection is closed right after the frame flushes. Clients
    /// treat it as retryable and back off at least `retry_after_millis`
    /// before reconnecting.
    Busy {
        /// Server's backoff hint, milliseconds.
        retry_after_millis: u32,
    },
}

/// A rejected byte stream. One variant per way a frame can be malformed;
/// incomplete input is *not* an error (the decoder returns `Ok(None)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream does not begin with the `cpw1` magic.
    BadMagic,
    /// Unknown message discriminant.
    UnknownKind(u8),
    /// Length field exceeds [`MAX_PAYLOAD`] (rejected before allocation).
    Oversized(u32),
    /// Length field contradicts the kind's payload contract.
    BadLength {
        /// The offending frame kind.
        kind: u8,
        /// The declared payload length.
        len: u32,
    },
    /// Payload checksum mismatch.
    BadChecksum,
    /// A string field is not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "stream does not start with the cpw1 magic"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized(len) => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::BadLength { kind, len } => {
                write!(f, "payload length {len} is invalid for frame kind {kind}")
            }
            WireError::BadChecksum => write!(f, "payload checksum mismatch"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

impl Frame {
    fn kind_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::HelloAck { .. } => KIND_HELLO_ACK,
            Frame::Write { .. } => KIND_WRITE,
            Frame::WriteAck { .. } => KIND_WRITE_ACK,
            Frame::Read => KIND_READ,
            Frame::ReadOk { .. } => KIND_READ_OK,
            Frame::Throttled => KIND_THROTTLED,
            Frame::Stop => KIND_STOP,
            Frame::StopAck => KIND_STOP_ACK,
            Frame::WriteQ { .. } => KIND_WRITE_Q,
            Frame::WriteQAck { .. } => KIND_WRITE_Q_ACK,
            Frame::ReadQ { .. } => KIND_READ_Q,
            Frame::ReadQOk { .. } => KIND_READ_Q_OK,
            Frame::WorkReq { .. } => KIND_WORK_REQ,
            Frame::WorkGrant { .. } => KIND_WORK_GRANT,
            Frame::WorkFin => KIND_WORK_FIN,
            Frame::ResultPush { .. } => KIND_RESULT_PUSH,
            Frame::ResultAck => KIND_RESULT_ACK,
            Frame::Busy { .. } => KIND_BUSY,
        }
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            Frame::Hello { proto } => proto.to_le_bytes().to_vec(),
            Frame::HelloAck { proto, server_clock_nanos, service } => {
                let mut p = Vec::with_capacity(10 + service.len());
                p.extend_from_slice(&proto.to_le_bytes());
                p.extend_from_slice(&server_clock_nanos.to_le_bytes());
                p.extend_from_slice(service.as_bytes());
                p
            }
            Frame::Write { author, seq, client_ts_nanos, content } => {
                let mut p = Vec::with_capacity(16 + content.len());
                p.extend_from_slice(&author.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&client_ts_nanos.to_le_bytes());
                p.extend_from_slice(content.as_bytes());
                p
            }
            Frame::WriteAck { id } => id.to_le_bytes().to_vec(),
            Frame::Read | Frame::Throttled | Frame::Stop | Frame::StopAck => Vec::new(),
            Frame::ReadOk { ids } => {
                let mut p = Vec::with_capacity(8 * ids.len());
                for id in ids {
                    p.extend_from_slice(&id.to_le_bytes());
                }
                p
            }
            Frame::WriteQ { req, key, author, seq, client_ts_nanos, content } => {
                let mut p = Vec::with_capacity(24 + content.len());
                p.extend_from_slice(&req.to_le_bytes());
                p.extend_from_slice(&key.to_le_bytes());
                p.extend_from_slice(&author.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&client_ts_nanos.to_le_bytes());
                p.extend_from_slice(content.as_bytes());
                p
            }
            Frame::WriteQAck { req, id } => {
                let mut p = Vec::with_capacity(12);
                p.extend_from_slice(&req.to_le_bytes());
                p.extend_from_slice(&id.to_le_bytes());
                p
            }
            Frame::ReadQ { req, key } => {
                let mut p = Vec::with_capacity(8);
                p.extend_from_slice(&req.to_le_bytes());
                p.extend_from_slice(&key.to_le_bytes());
                p
            }
            Frame::ReadQOk { req, ids } => {
                let mut p = Vec::with_capacity(4 + 8 * ids.len());
                p.extend_from_slice(&req.to_le_bytes());
                for id in ids {
                    p.extend_from_slice(&id.to_le_bytes());
                }
                p
            }
            Frame::WorkReq { worker } => worker.to_le_bytes().to_vec(),
            Frame::WorkGrant { instance, seed, cell } => {
                let mut p = Vec::with_capacity(12 + cell.len());
                p.extend_from_slice(&instance.to_le_bytes());
                p.extend_from_slice(&seed.to_le_bytes());
                p.extend_from_slice(cell.as_bytes());
                p
            }
            Frame::WorkFin | Frame::ResultAck => Vec::new(),
            Frame::ResultPush { record } => record.as_bytes().to_vec(),
            Frame::Busy { retry_after_millis } => retry_after_millis.to_le_bytes().to_vec(),
        }
    }

    /// Encodes the frame into a self-contained byte string.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 32);
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoded frame to `out` — the write-batching entry
    /// point: an event loop coalesces many responses into one buffer and
    /// flushes them with a single `write`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        append_frame_with(out, self.kind_byte(), |p| p.extend_from_slice(&self.payload()));
    }
}

/// Appends one framed message to `out`: header, then whatever payload
/// `fill` writes, with the length and FNV checksum backpatched after the
/// payload is in place. This is the allocation-free encode path the hot
/// loops use (`fill` writes straight into the batch buffer).
pub(crate) fn append_frame_with(out: &mut Vec<u8>, kind: u8, fill: impl FnOnce(&mut Vec<u8>)) {
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 12]); // len + checksum, backpatched
    let payload_at = out.len();
    fill(out);
    let payload_len = out.len() - payload_at;
    debug_assert!(payload_len <= MAX_PAYLOAD, "outbound frame exceeds the payload cap");
    let sum = fnv64(&out[payload_at..]);
    out[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[len_at + 4..len_at + 12].copy_from_slice(&sum.to_le_bytes());
}

/// Appends a framed `read_q_ok` response straight from an id slice — no
/// intermediate `Frame` or `Vec<u64>` on the server's hot read path.
pub fn append_read_q_ok(out: &mut Vec<u8>, req: u32, ids: &[u64]) {
    append_read_q_ok_iter(out, req, ids.iter().copied());
}

/// Iterator flavour of [`append_read_q_ok`]: the length is backpatched
/// after the ids are written, so the caller can stream ids from any
/// source (the server streams `PostId`s out of a shared snapshot) with
/// no intermediate collection.
pub fn append_read_q_ok_iter(out: &mut Vec<u8>, req: u32, ids: impl IntoIterator<Item = u64>) {
    append_frame_with(out, KIND_READ_Q_OK, |p| {
        p.extend_from_slice(&req.to_le_bytes());
        for id in ids {
            p.extend_from_slice(&id.to_le_bytes());
        }
    });
}

/// Appends a framed `write_q_ack` response.
pub fn append_write_q_ack(out: &mut Vec<u8>, req: u32, id: u64) {
    append_frame_with(out, KIND_WRITE_Q_ACK, |p| {
        p.extend_from_slice(&req.to_le_bytes());
        p.extend_from_slice(&id.to_le_bytes());
    });
}

/// Appends a framed `read_q` request.
pub fn append_read_q(out: &mut Vec<u8>, req: u32, key: u32) {
    append_frame_with(out, KIND_READ_Q, |p| {
        p.extend_from_slice(&req.to_le_bytes());
        p.extend_from_slice(&key.to_le_bytes());
    });
}

/// Appends a framed `write_q` request.
pub fn append_write_q(
    out: &mut Vec<u8>,
    req: u32,
    key: u32,
    author: u32,
    seq: u32,
    client_ts_nanos: i64,
    content: &str,
) {
    append_frame_with(out, KIND_WRITE_Q, |p| {
        p.extend_from_slice(&req.to_le_bytes());
        p.extend_from_slice(&key.to_le_bytes());
        p.extend_from_slice(&author.to_le_bytes());
        p.extend_from_slice(&seq.to_le_bytes());
        p.extend_from_slice(&client_ts_nanos.to_le_bytes());
        p.extend_from_slice(content.as_bytes());
    });
}

/// Validates a declared payload length against the kind's contract,
/// *before* the payload bytes are read or buffered.
fn check_length(kind: u8, len: u32) -> Result<(), WireError> {
    let ok = match kind {
        KIND_HELLO => len == 2,
        KIND_HELLO_ACK => len >= 10,
        KIND_WRITE => len >= 16,
        KIND_WRITE_ACK => len == 8,
        KIND_READ | KIND_THROTTLED | KIND_STOP | KIND_STOP_ACK => len == 0,
        KIND_READ_OK => len.is_multiple_of(8),
        KIND_WRITE_Q => len >= 24,
        KIND_WRITE_Q_ACK => len == 12,
        KIND_READ_Q => len == 8,
        KIND_READ_Q_OK => len >= 4 && (len - 4).is_multiple_of(8),
        KIND_WORK_REQ => len == 4,
        KIND_WORK_GRANT => len >= 12,
        KIND_WORK_FIN | KIND_RESULT_ACK => len == 0,
        KIND_RESULT_PUSH => true,
        KIND_BUSY => len == 4,
        other => return Err(WireError::UnknownKind(other)),
    };
    if ok {
        Ok(())
    } else {
        Err(WireError::BadLength { kind, len })
    }
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn le_i64(b: &[u8]) -> i64 {
    le_u64(b) as i64
}

/// Incrementally decodes the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a complete frame; drop `consumed`
///   bytes and call again for the next one.
/// * `Ok(None)` — `buf` is a (possibly empty) prefix of a well-formed
///   frame; read more bytes.
/// * `Err(_)` — the stream is corrupt at the front; the connection should
///   be dropped.
///
/// Never panics on any input (see the fuzz tests), and rejects oversized
/// or contract-violating length fields from the 9-byte header alone —
/// before buffering, allocating for, or checksumming any payload.
pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    match decode_raw(buf)? {
        None => Ok(None),
        Some(raw) => {
            let frame = parse_payload(raw.kind, &buf[raw.payload.clone()])?;
            Ok(Some((frame, raw.consumed)))
        }
    }
}

/// A validated frame located in (not copied out of) the caller's buffer:
/// the hot-path view [`decode_raw`] returns. The payload checksum has
/// already been verified; `payload` indexes the caller's buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// The frame discriminant (one of the `KIND_*` values).
    pub kind: u8,
    /// Byte range of the payload within the decoded buffer.
    pub payload: std::ops::Range<usize>,
    /// Total bytes the frame occupies (drop this many and decode again).
    pub consumed: usize,
}

/// Incremental decode without materializing a [`Frame`]: header and
/// checksum validation only, returning where the payload sits in `buf`.
/// Pipelined reapers use this to count and verify thousands of responses
/// per second without allocating a `Vec<u64>` per feed; pass the payload
/// range to [`parse_payload`] when the typed frame is actually needed.
/// Same contract as [`decode`]: `Ok(None)` wants more input, errors mean
/// the stream is corrupt at the front.
pub fn decode_raw(buf: &[u8]) -> Result<Option<RawFrame>, WireError> {
    // Validate the magic on however much of it has arrived, so garbage is
    // rejected at the first byte rather than after a 17-byte read.
    let magic_avail = buf.len().min(4);
    if buf[..magic_avail] != MAGIC[..magic_avail] {
        return Err(WireError::BadMagic);
    }
    if buf.len() < 5 {
        return Ok(None);
    }
    // Kind and (once present) length are validated as soon as their
    // bytes arrive; an oversized frame never gets to buffer a payload.
    let kind = buf[4];
    if !(KIND_HELLO..=KIND_MAX).contains(&kind) {
        return Err(WireError::UnknownKind(kind));
    }
    if buf.len() < 9 {
        return Ok(None);
    }
    let len = le_u32(&buf[5..9]);
    if len as usize > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    check_length(kind, len)?;
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let sum = le_u64(&buf[9..17]);
    let payload = &buf[HEADER_LEN..total];
    if fnv64(payload) != sum {
        return Err(WireError::BadChecksum);
    }
    Ok(Some(RawFrame { kind, payload: HEADER_LEN..total, consumed: total }))
}

/// Parses a checksum-verified payload (located by [`decode_raw`]) into a
/// typed [`Frame`]. Only UTF-8 validation can still fail here.
pub fn parse_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let frame = match kind {
        KIND_HELLO => Frame::Hello { proto: le_u16(payload) },
        KIND_HELLO_ACK => Frame::HelloAck {
            proto: le_u16(&payload[..2]),
            server_clock_nanos: le_i64(&payload[2..10]),
            service: std::str::from_utf8(&payload[10..])
                .map_err(|_| WireError::BadUtf8)?
                .to_owned(),
        },
        KIND_WRITE => Frame::Write {
            author: le_u32(&payload[..4]),
            seq: le_u32(&payload[4..8]),
            client_ts_nanos: le_i64(&payload[8..16]),
            content: std::str::from_utf8(&payload[16..])
                .map_err(|_| WireError::BadUtf8)?
                .to_owned(),
        },
        KIND_WRITE_ACK => Frame::WriteAck { id: le_u64(payload) },
        KIND_READ => Frame::Read,
        KIND_READ_OK => Frame::ReadOk { ids: payload.chunks_exact(8).map(le_u64).collect() },
        KIND_THROTTLED => Frame::Throttled,
        KIND_STOP => Frame::Stop,
        KIND_STOP_ACK => Frame::StopAck,
        KIND_WRITE_Q => Frame::WriteQ {
            req: le_u32(&payload[..4]),
            key: le_u32(&payload[4..8]),
            author: le_u32(&payload[8..12]),
            seq: le_u32(&payload[12..16]),
            client_ts_nanos: le_i64(&payload[16..24]),
            content: std::str::from_utf8(&payload[24..])
                .map_err(|_| WireError::BadUtf8)?
                .to_owned(),
        },
        KIND_WRITE_Q_ACK => {
            Frame::WriteQAck { req: le_u32(&payload[..4]), id: le_u64(&payload[4..12]) }
        }
        KIND_READ_Q => Frame::ReadQ { req: le_u32(&payload[..4]), key: le_u32(&payload[4..8]) },
        KIND_READ_Q_OK => Frame::ReadQOk {
            req: le_u32(&payload[..4]),
            ids: payload[4..].chunks_exact(8).map(le_u64).collect(),
        },
        KIND_WORK_REQ => Frame::WorkReq { worker: le_u32(payload) },
        KIND_WORK_GRANT => Frame::WorkGrant {
            instance: le_u32(&payload[..4]),
            seed: le_u64(&payload[4..12]),
            cell: std::str::from_utf8(&payload[12..]).map_err(|_| WireError::BadUtf8)?.to_owned(),
        },
        KIND_WORK_FIN => Frame::WorkFin,
        KIND_RESULT_PUSH => Frame::ResultPush {
            record: std::str::from_utf8(payload).map_err(|_| WireError::BadUtf8)?.to_owned(),
        },
        KIND_RESULT_ACK => Frame::ResultAck,
        KIND_BUSY => Frame::Busy { retry_after_millis: le_u32(payload) },
        _ => unreachable!("check_length vetted the kind"),
    };
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Frame> {
        vec![
            Frame::Hello { proto: PROTO_VERSION },
            Frame::HelloAck {
                proto: PROTO_VERSION,
                server_clock_nanos: -42,
                service: "blogger".into(),
            },
            Frame::HelloAck { proto: 9, server_clock_nanos: i64::MAX, service: String::new() },
            Frame::Write { author: 2, seq: 1, client_ts_nanos: 5_000_000, content: "post".into() },
            Frame::Write {
                author: 0,
                seq: u32::MAX,
                client_ts_nanos: i64::MIN,
                content: "".into(),
            },
            Frame::WriteAck { id: 0x0000_0002_0000_0001 },
            Frame::Read,
            Frame::ReadOk { ids: vec![] },
            Frame::ReadOk { ids: vec![1, u64::MAX, 0x1234_5678_9abc_def0] },
            Frame::Throttled,
            Frame::Stop,
            Frame::StopAck,
            Frame::WriteQ {
                req: 7,
                key: 0xdead_beef,
                author: 2,
                seq: 9,
                client_ts_nanos: -1,
                content: "pipelined".into(),
            },
            Frame::WriteQ {
                req: u32::MAX,
                key: 0,
                author: 0,
                seq: 0,
                client_ts_nanos: i64::MAX,
                content: String::new(),
            },
            Frame::WriteQAck { req: 7, id: 0x0000_0002_0000_0009 },
            Frame::ReadQ { req: 8, key: 3 },
            Frame::ReadQOk { req: 8, ids: vec![] },
            Frame::ReadQOk { req: u32::MAX, ids: vec![u64::MAX, 0, 42] },
            Frame::WorkReq { worker: 3 },
            Frame::WorkGrant {
                instance: 5,
                seed: 0xfeed_beef_cafe_f00d,
                cell: "blogger/test1".into(),
            },
            Frame::WorkGrant { instance: u32::MAX, seed: 0, cell: String::new() },
            Frame::WorkFin,
            Frame::ResultPush { record: "{\"cell\":\"blogger/test1\",\"instance\":5}".into() },
            Frame::ResultPush { record: String::new() },
            Frame::ResultAck,
            Frame::Busy { retry_after_millis: 250 },
            Frame::Busy { retry_after_millis: u32::MAX },
        ]
    }

    #[test]
    fn round_trips_every_frame_kind() {
        for frame in corpus() {
            let bytes = frame.encode();
            let (decoded, consumed) = decode(&bytes).unwrap().expect("complete frame");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame, "round-trip mismatch");
        }
    }

    #[test]
    fn decodes_back_to_back_frames_from_one_buffer() {
        let mut stream = Vec::new();
        for frame in corpus() {
            stream.extend_from_slice(&frame.encode());
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while let Some((frame, consumed)) = decode(&stream[offset..]).unwrap() {
            decoded.push(frame);
            offset += consumed;
        }
        assert_eq!(offset, stream.len());
        assert_eq!(decoded, corpus());
    }

    #[test]
    fn every_prefix_of_a_valid_frame_asks_for_more_input() {
        for frame in corpus() {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                match decode(&bytes[..cut]) {
                    Ok(None) => {}
                    other => panic!(
                        "prefix {cut}/{} of {frame:?} should want more input, got {other:?}",
                        bytes.len()
                    ),
                }
            }
        }
    }

    #[test]
    fn single_byte_mutations_never_panic_and_never_misparse_silently() {
        for frame in corpus() {
            let bytes = frame.encode();
            for pos in 0..bytes.len() {
                for flip in [0x01u8, 0x80, 0xff] {
                    let mut mutated = bytes.clone();
                    mutated[pos] ^= flip;
                    // Must not panic; and when a frame *is* produced it
                    // must be internally consistent (checksummed payload).
                    if let Ok(Some((decoded, consumed))) = decode(&mutated) {
                        assert!(consumed <= mutated.len());
                        let reencoded = decoded.encode();
                        let (again, _) = decode(&reencoded).unwrap().expect("re-decode");
                        assert_eq!(again, decoded);
                    }
                }
            }
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // Deterministic LCG, same idiom as conprobe-json's fuzz corpus.
        let mut state: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for _ in 0..2_000 {
            let len = usize::from(next()) % 64;
            let mut bytes: Vec<u8> = (0..len).map(|_| next()).collect();
            let _ = decode(&bytes);
            // Also with a valid magic stapled on, to reach the deeper
            // header/payload paths.
            let mut with_magic = MAGIC.to_vec();
            with_magic.append(&mut bytes);
            let _ = decode(&with_magic);
        }
    }

    /// An incremental consumer: owns a buffer, is fed arbitrary chunks,
    /// yields every complete frame — the exact discipline the event loop
    /// and the pipelined reaper run per connection.
    struct Incremental {
        buf: Vec<u8>,
        frames: Vec<Frame>,
    }

    impl Incremental {
        fn new() -> Self {
            Incremental { buf: Vec::new(), frames: Vec::new() }
        }

        fn feed(&mut self, chunk: &[u8]) -> Result<(), WireError> {
            self.buf.extend_from_slice(chunk);
            while let Some((frame, consumed)) = decode(&self.buf)? {
                self.frames.push(frame);
                self.buf.drain(..consumed);
            }
            Ok(())
        }
    }

    #[test]
    fn pipelined_stream_survives_a_split_at_every_byte_boundary() {
        // Many concatenated frames — the pipelined wire image — cut into
        // two reads at every possible boundary: the decoder must
        // reassemble the identical frame sequence every time.
        let mut stream = Vec::new();
        for frame in corpus() {
            stream.extend_from_slice(&frame.encode());
        }
        for cut in 0..=stream.len() {
            let mut inc = Incremental::new();
            inc.feed(&stream[..cut]).expect("clean prefix");
            inc.feed(&stream[cut..]).expect("clean suffix");
            assert!(inc.buf.is_empty(), "cut at {cut} left {} bytes undecoded", inc.buf.len());
            assert_eq!(inc.frames, corpus(), "cut at {cut} misparsed the stream");
        }
    }

    #[test]
    fn pipelined_stream_survives_byte_at_a_time_delivery() {
        let mut stream = Vec::new();
        for frame in corpus() {
            stream.extend_from_slice(&frame.encode());
        }
        let mut inc = Incremental::new();
        for &b in &stream {
            inc.feed(&[b]).expect("clean stream");
        }
        assert_eq!(inc.frames, corpus());
    }

    #[test]
    fn corrupt_chunk_surfaces_a_typed_error_and_keeps_decoded_frames() {
        // The accumulator idiom under chaos: a mid-stream byte flip must
        // come back as a `WireError` from `feed`, never a panic, and the
        // frames decoded before the corruption stay available.
        let clean: Vec<u8> = corpus().iter().take(3).flat_map(|f| f.encode()).collect();
        let mut inc = Incremental::new();
        inc.feed(&clean).expect("clean stream");
        let decoded_before = inc.frames.len();
        assert_eq!(decoded_before, 3);
        let mut corrupt = Frame::Read.encode();
        corrupt[0] ^= 0xff; // magic destroyed
        assert_eq!(inc.feed(&corrupt), Err(WireError::BadMagic));
        assert_eq!(inc.frames.len(), decoded_before, "pre-corruption frames survive");
        // A checksum-corrupted frame is also a typed error, at any flip
        // offset inside the payload.
        let victim =
            Frame::Write { author: 1, seq: 2, client_ts_nanos: 3, content: "xyz".into() }.encode();
        for pos in HEADER_LEN..victim.len() {
            let mut mutated = victim.clone();
            mutated[pos] ^= 0x55;
            let mut inc = Incremental::new();
            assert_eq!(inc.feed(&mutated), Err(WireError::BadChecksum), "flip at {pos}");
        }
    }

    #[test]
    fn interleaved_partial_frames_across_two_connections_stay_isolated() {
        // Two connections' streams delivered in interleaved partial
        // chunks (as one event-loop sweep sees them): each per-connection
        // decoder must reassemble its own stream, unperturbed by the
        // scheduling of the other.
        let stream_a: Vec<u8> = corpus().iter().flat_map(|f| f.encode()).collect();
        let frames_b = vec![
            Frame::ReadQ { req: 1, key: 9 },
            Frame::WriteQ {
                req: 2,
                key: 9,
                author: 1,
                seq: 1,
                client_ts_nanos: 5,
                content: "other conn".into(),
            },
            Frame::Read,
        ];
        let stream_b: Vec<u8> = frames_b.iter().flat_map(|f| f.encode()).collect();
        // Deterministically vary the chunk sizes so partial headers and
        // partial payloads of both streams are in flight at once.
        for chunk_a in [1usize, 3, 7, 16, 29] {
            for chunk_b in [2usize, 5, 11, 23] {
                let mut inc_a = Incremental::new();
                let mut inc_b = Incremental::new();
                let (mut off_a, mut off_b) = (0, 0);
                while off_a < stream_a.len() || off_b < stream_b.len() {
                    if off_a < stream_a.len() {
                        let end = (off_a + chunk_a).min(stream_a.len());
                        inc_a.feed(&stream_a[off_a..end]).expect("clean stream a");
                        off_a = end;
                    }
                    if off_b < stream_b.len() {
                        let end = (off_b + chunk_b).min(stream_b.len());
                        inc_b.feed(&stream_b[off_b..end]).expect("clean stream b");
                        off_b = end;
                    }
                }
                assert_eq!(inc_a.frames, corpus(), "chunks ({chunk_a},{chunk_b})");
                assert_eq!(inc_b.frames, frames_b, "chunks ({chunk_a},{chunk_b})");
            }
        }
    }

    #[test]
    fn raw_decode_agrees_with_typed_decode_on_every_corpus_frame() {
        for frame in corpus() {
            let bytes = frame.encode();
            let raw = decode_raw(&bytes).unwrap().expect("complete frame");
            assert_eq!(raw.consumed, bytes.len());
            assert_eq!(parse_payload(raw.kind, &bytes[raw.payload.clone()]).unwrap(), frame);
        }
    }

    #[test]
    fn append_helpers_match_the_enum_encoding() {
        let mut out = Vec::new();
        append_read_q(&mut out, 3, 17);
        assert_eq!(out, Frame::ReadQ { req: 3, key: 17 }.encode());
        out.clear();
        append_read_q_ok(&mut out, 3, &[1, 2, u64::MAX]);
        assert_eq!(out, Frame::ReadQOk { req: 3, ids: vec![1, 2, u64::MAX] }.encode());
        out.clear();
        append_write_q(&mut out, 4, 17, 2, 9, -5, "body");
        assert_eq!(
            out,
            Frame::WriteQ {
                req: 4,
                key: 17,
                author: 2,
                seq: 9,
                client_ts_nanos: -5,
                content: "body".into()
            }
            .encode()
        );
        out.clear();
        append_write_q_ack(&mut out, 4, 99);
        assert_eq!(out, Frame::WriteQAck { req: 4, id: 99 }.encode());
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header_alone() {
        // Header declares a 256 MiB payload; only the 17 header bytes
        // exist. Rejection must come from the length field, not an
        // attempted buffer fill.
        let mut bytes = MAGIC.to_vec();
        bytes.push(2); // write
        bytes.extend_from_slice(&(256u32 << 20).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(decode(&bytes), Err(WireError::Oversized(256 << 20)));
        // Same header truncated to 9 bytes (magic+kind+len): still
        // rejected — no waiting for a payload that should never come.
        assert_eq!(decode(&bytes[..9]), Err(WireError::Oversized(256 << 20)));
    }

    #[test]
    fn length_contract_violations_are_rejected_before_the_payload_arrives() {
        // A `read` frame declaring a payload is nonsense even though the
        // length is small.
        let mut bytes = MAGIC.to_vec();
        bytes.push(4); // read
        bytes.extend_from_slice(&3u32.to_le_bytes());
        assert_eq!(decode(&bytes), Err(WireError::BadLength { kind: 4, len: 3 }));
        // `read_ok` payloads must be whole u64s.
        let mut bytes = MAGIC.to_vec();
        bytes.push(5); // read_ok
        bytes.extend_from_slice(&12u32.to_le_bytes());
        assert_eq!(decode(&bytes), Err(WireError::BadLength { kind: 5, len: 12 }));
    }

    #[test]
    fn corrupt_checksum_is_rejected() {
        let mut bytes =
            Frame::Write { author: 1, seq: 2, client_ts_nanos: 3, content: "x".into() }.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a payload byte; header checksum now lies
        assert_eq!(decode(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn garbage_magic_is_rejected_at_the_first_wrong_byte() {
        assert_eq!(decode(b"xpw1....."), Err(WireError::BadMagic));
        assert_eq!(decode(b"c"), Ok(None));
        assert_eq!(decode(b"cq"), Err(WireError::BadMagic));
        assert_eq!(decode(b""), Ok(None));
    }

    #[test]
    fn unknown_kind_is_rejected_as_soon_as_the_kind_byte_arrives() {
        let mut bytes = MAGIC.to_vec();
        bytes.push(99);
        assert_eq!(decode(&bytes), Err(WireError::UnknownKind(99)));
    }
}
