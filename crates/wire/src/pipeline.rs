//! Multiplexed, pipelined `cpw1` client connections for load generation.
//!
//! [`PipeConn`] is the client half of the wire layer's event-loop story:
//! a non-blocking connection that keeps up to `depth` keyed requests in
//! flight, batches their frames into one output buffer (flushed with
//! single large writes), and reaps responses incrementally with
//! [`decode_raw`](crate::frame::decode_raw) — no allocation per
//! response. One generator thread sweeps thousands of these, which is
//! how `conprobe load` drives tens of thousands of concurrent
//! connections from a handful of threads.
//!
//! The server answers each connection's requests strictly in arrival
//! order, so the reaper verifies FIFO: every `read_q_ok`/`write_q_ack`
//! must echo the request id at the head of the in-flight queue. A
//! mismatch is an *ordering error* — counted, never silently averaged
//! away — and tears the connection down.

use crate::frame::{
    append_read_q, decode_raw, parse_payload, Frame, HEADER_LEN, KIND_BUSY, KIND_READ_Q_OK,
    KIND_WRITE_Q_ACK, PROTO_VERSION,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One request awaiting its response.
struct Inflight {
    req: u32,
    sent: Instant,
}

/// Why a connection was torn down (all fatal to the connection, none to
/// the run — the generator reconnects or retires the slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeFault {
    /// Socket error, EOF, or handshake failure.
    Io,
    /// The response stream failed frame validation.
    Decode,
    /// A response echoed a request id out of FIFO order.
    Ordering,
    /// The oldest in-flight request outlived the stall timeout.
    Stall,
    /// The server shed this connection with a typed `busy` frame: not an
    /// error, a backpressure signal. The generator reconnects after the
    /// server's wait hint instead of immediately.
    Busy,
}

/// What one sweep of [`PipeConn::pump`] accomplished.
#[derive(Debug, Default, Clone, Copy)]
pub struct PumpResult {
    /// Responses reaped this sweep, with their queue-to-response
    /// latencies (capped to a small inline buffer's worth per sweep by
    /// the caller's read batching — excess carries to the next sweep).
    pub completed: usize,
    /// Bytes moved in either direction (the loop's progress signal).
    pub progressed: bool,
    /// Set when the connection died this sweep.
    pub fault: Option<PipeFault>,
    /// On a [`PipeFault::Busy`] fault: the server's minimum-wait hint,
    /// milliseconds, from the shed frame's payload.
    pub busy_wait_millis: Option<u32>,
}

/// A non-blocking pipelined connection issuing keyed reads.
pub struct PipeConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    inpos: usize,
    outbuf: Vec<u8>,
    outpos: usize,
    inflight: VecDeque<Inflight>,
    next_req: u32,
    awaiting_hello: bool,
    /// Completion latencies reaped by the last pump, nanoseconds.
    latencies: Vec<u64>,
    /// Pacing: the earliest instant this connection may issue again.
    pub next_issue_at: Instant,
    /// Errors charged to this connection (the per-connection counter the
    /// load report surfaces so a few sick connections aren't hidden in
    /// the aggregate).
    pub errors: u64,
}

impl PipeConn {
    /// Connects (blocking), then switches to non-blocking and queues the
    /// protocol handshake as the first pipelined exchange.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<PipeConn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let mut outbuf = Vec::with_capacity(4096);
        Frame::Hello { proto: PROTO_VERSION }.encode_into(&mut outbuf);
        Ok(PipeConn {
            stream,
            inbuf: Vec::with_capacity(4096),
            inpos: 0,
            outbuf,
            outpos: 0,
            inflight: VecDeque::new(),
            next_req: 0,
            awaiting_hello: true,
            latencies: Vec::new(),
            next_issue_at: Instant::now(),
            errors: 0,
        })
    }

    /// Requests currently awaiting responses.
    pub fn inflight(&self) -> usize {
        self.inflight.len() + usize::from(self.awaiting_hello)
    }

    /// Queues one keyed read (no I/O yet; `pump` flushes). Returns the
    /// request id it will be answered under.
    pub fn issue_read(&mut self, key: u32) -> u32 {
        let req = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        append_read_q(&mut self.outbuf, req, key);
        self.inflight.push_back(Inflight { req, sent: Instant::now() });
        req
    }

    /// Latencies (nanos) of the responses reaped by the last `pump`.
    pub fn take_latencies(&mut self) -> std::vec::Drain<'_, u64> {
        self.latencies.drain(..)
    }

    /// One event-loop sweep: flush queued frames, read whatever the
    /// socket has, reap completed responses in FIFO order. `stall_after`
    /// bounds how long the oldest in-flight request may go unanswered
    /// (a lossy server drops responses; the slot must not leak forever).
    pub fn pump(&mut self, scratch: &mut [u8], stall_after: Duration) -> PumpResult {
        let mut result = PumpResult::default();
        // Flush as much of the batched request buffer as the socket takes.
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return self.fail(result, PipeFault::Io),
                Ok(n) => {
                    self.outpos += n;
                    result.progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return self.fail(result, PipeFault::Io),
            }
        }
        if self.outpos == self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
        } else if self.outpos > 64 * 1024 {
            self.outbuf.drain(..self.outpos);
            self.outpos = 0;
        }
        // Read to exhaustion.
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return self.fail(result, PipeFault::Io),
                Ok(n) => {
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    result.progressed = true;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return self.fail(result, PipeFault::Io),
            }
        }
        // Reap complete responses.
        loop {
            let raw = match decode_raw(&self.inbuf[self.inpos..]) {
                Ok(Some(raw)) => raw,
                Ok(None) => break,
                Err(_) => return self.fail(result, PipeFault::Decode),
            };
            let payload_at = self.inpos + HEADER_LEN;
            let payload_end = self.inpos + raw.consumed;
            self.inpos += raw.consumed;
            let payload = &self.inbuf[payload_at..payload_end];
            if raw.kind == KIND_BUSY {
                // Load shed (possible both at the handshake and, in
                // principle, mid-stream): a backpressure signal, not an
                // error — `errors` stays untouched; the caller backs off
                // for the hinted wait and reconnects.
                result.busy_wait_millis =
                    payload.get(..4).map(|b| u32::from_le_bytes(b.try_into().unwrap()));
                result.fault = Some(PipeFault::Busy);
                return result;
            }
            if self.awaiting_hello {
                match parse_payload(raw.kind, payload) {
                    Ok(Frame::HelloAck { proto, .. }) if proto == PROTO_VERSION => {
                        self.awaiting_hello = false;
                        result.progressed = true;
                        continue;
                    }
                    _ => return self.fail(result, PipeFault::Io),
                }
            }
            if raw.kind != KIND_READ_Q_OK && raw.kind != KIND_WRITE_Q_ACK {
                return self.fail(result, PipeFault::Decode);
            }
            let req = u32::from_le_bytes(payload[..4].try_into().unwrap());
            let head = match self.inflight.pop_front() {
                Some(head) => head,
                None => return self.fail(result, PipeFault::Ordering),
            };
            if head.req != req {
                return self.fail(result, PipeFault::Ordering);
            }
            self.latencies.push(head.sent.elapsed().as_nanos() as u64);
            result.completed += 1;
            result.progressed = true;
        }
        if self.inpos == self.inbuf.len() {
            self.inbuf.clear();
            self.inpos = 0;
        } else if self.inpos > 64 * 1024 {
            self.inbuf.drain(..self.inpos);
            self.inpos = 0;
        }
        // Stall detection: a lossy or wedged server must not pin this
        // slot forever.
        if let Some(oldest) = self.inflight.front() {
            if oldest.sent.elapsed() >= stall_after {
                return self.fail(result, PipeFault::Stall);
            }
        }
        result
    }

    fn fail(&mut self, mut result: PumpResult, fault: PipeFault) -> PumpResult {
        self.errors += 1;
        result.fault = Some(fault);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{append_read_q_ok, append_write_q_ack, decode};
    use std::net::TcpListener;

    /// A hand-driven single-connection server double: accepts once,
    /// then answers under caller control. The client's queued hello is
    /// flushed here (the server double reads blockingly, so the frame
    /// must be on the wire before `ack_hello`).
    fn pair() -> (PipeConn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut conn = PipeConn::connect(addr, Duration::from_secs(2)).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nodelay(true).unwrap();
        let mut scratch = [0u8; 4096];
        let r = conn.pump(&mut scratch, Duration::from_secs(5));
        assert_eq!(r.fault, None, "flushing the hello must not fault");
        (conn, server)
    }

    fn read_requests(server: &mut TcpStream, buf: &mut Vec<u8>, want: usize) -> Vec<Frame> {
        let mut scratch = [0u8; 4096];
        let mut frames = Vec::new();
        while frames.len() < want {
            match decode(buf).unwrap() {
                Some((frame, consumed)) => {
                    buf.drain(..consumed);
                    frames.push(frame);
                }
                None => {
                    let n = server.read(&mut scratch).unwrap();
                    assert!(n > 0, "client hung up early");
                    buf.extend_from_slice(&scratch[..n]);
                }
            }
        }
        frames
    }

    fn ack_hello(server: &mut TcpStream, buf: &mut Vec<u8>) {
        match read_requests(server, buf, 1).remove(0) {
            Frame::Hello { proto } => assert_eq!(proto, PROTO_VERSION),
            other => panic!("expected hello, got {other:?}"),
        }
        let ack = Frame::HelloAck {
            proto: PROTO_VERSION,
            server_clock_nanos: 0,
            service: "blogger".into(),
        };
        server.write_all(&ack.encode()).unwrap();
    }

    fn pump_until(
        conn: &mut PipeConn,
        completed: &mut usize,
        want: usize,
        deadline: Duration,
    ) -> Option<PipeFault> {
        let mut scratch = [0u8; 4096];
        let begin = Instant::now();
        while *completed < want {
            let r = conn.pump(&mut scratch, Duration::from_secs(5));
            *completed += r.completed;
            if r.fault.is_some() {
                return r.fault;
            }
            assert!(begin.elapsed() < deadline, "timed out at {completed}/{want}");
            if !r.progressed {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        None
    }

    #[test]
    fn pipelines_many_requests_and_reaps_them_in_order() {
        let (mut conn, mut server) = pair();
        let mut server_buf = Vec::new();
        ack_hello(&mut server, &mut server_buf);
        for i in 0..32u32 {
            assert_eq!(conn.issue_read(i % 4), i);
        }
        assert_eq!(conn.inflight(), 33); // 32 reads + the pending hello
                                         // Flush the client side, then answer every request in one batch.
        let mut scratch = [0u8; 4096];
        let _ = conn.pump(&mut scratch, Duration::from_secs(5));
        let reqs = read_requests(&mut server, &mut server_buf, 32);
        let mut batch = Vec::new();
        for frame in reqs {
            match frame {
                Frame::ReadQ { req, key } => append_read_q_ok(&mut batch, req, &[u64::from(key)]),
                other => panic!("expected read_q, got {other:?}"),
            }
        }
        server.write_all(&batch).unwrap();
        let mut completed = 0;
        assert_eq!(pump_until(&mut conn, &mut completed, 32, Duration::from_secs(5)), None);
        assert_eq!(conn.inflight(), 0);
        assert_eq!(conn.take_latencies().len(), 32);
        assert_eq!(conn.errors, 0);
    }

    #[test]
    fn an_out_of_order_response_is_an_ordering_error() {
        let (mut conn, mut server) = pair();
        let mut server_buf = Vec::new();
        ack_hello(&mut server, &mut server_buf);
        conn.issue_read(0);
        conn.issue_read(0);
        let mut scratch = [0u8; 4096];
        let _ = conn.pump(&mut scratch, Duration::from_secs(5));
        let _ = read_requests(&mut server, &mut server_buf, 2);
        // Answer req 1 before req 0: a FIFO violation.
        let mut batch = Vec::new();
        append_read_q_ok(&mut batch, 1, &[]);
        append_read_q_ok(&mut batch, 0, &[]);
        server.write_all(&batch).unwrap();
        let mut completed = 0;
        let fault = pump_until(&mut conn, &mut completed, 2, Duration::from_secs(5));
        assert_eq!(fault, Some(PipeFault::Ordering));
        assert_eq!(conn.errors, 1);
    }

    #[test]
    fn a_corrupt_response_stream_is_a_decode_error() {
        let (mut conn, mut server) = pair();
        let mut server_buf = Vec::new();
        ack_hello(&mut server, &mut server_buf);
        conn.issue_read(7);
        let mut scratch = [0u8; 4096];
        let _ = conn.pump(&mut scratch, Duration::from_secs(5));
        let _ = read_requests(&mut server, &mut server_buf, 1);
        server.write_all(b"garbage that is definitely not cpw1").unwrap();
        let mut completed = 0;
        let fault = pump_until(&mut conn, &mut completed, 1, Duration::from_secs(5));
        assert_eq!(fault, Some(PipeFault::Decode));
    }

    #[test]
    fn a_busy_shed_is_a_typed_backpressure_fault_not_an_error() {
        let (mut conn, mut server) = pair();
        // The server sheds at the handshake: busy frame, then hang up —
        // exactly what the bounded accept backlog does.
        server.write_all(&Frame::Busy { retry_after_millis: 75 }.encode()).unwrap();
        drop(server);
        let mut scratch = [0u8; 4096];
        let begin = Instant::now();
        loop {
            let r = conn.pump(&mut scratch, Duration::from_secs(5));
            match r.fault {
                Some(PipeFault::Busy) => {
                    assert_eq!(r.busy_wait_millis, Some(75), "the wait hint rides along");
                    break;
                }
                Some(other) => panic!("expected the busy fault, got {other:?}"),
                None => assert!(begin.elapsed() < Duration::from_secs(5), "busy never surfaced"),
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(conn.errors, 0, "backpressure is not an error");
    }

    #[test]
    fn an_unanswered_request_eventually_stalls_out() {
        let (mut conn, mut server) = pair();
        let mut server_buf = Vec::new();
        ack_hello(&mut server, &mut server_buf);
        conn.issue_read(0);
        let mut scratch = [0u8; 4096];
        let begin = Instant::now();
        loop {
            let r = conn.pump(&mut scratch, Duration::from_millis(50));
            match r.fault {
                Some(PipeFault::Stall) => break,
                Some(other) => panic!("unexpected fault {other:?}"),
                None => {
                    assert!(begin.elapsed() < Duration::from_secs(5), "stall never fired");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        // An ack for the write_q kind is also a valid reap path.
        let mut batch = Vec::new();
        append_write_q_ack(&mut batch, 0, 9);
        drop(batch);
        drop(server);
    }
}
