//! Closed-loop load generator for `cpw1` servers.
//!
//! The generator multiplexes [`LoadConfig::connections`] non-blocking
//! pipelined connections ([`crate::pipeline::PipeConn`]) over a few
//! sweeper threads, keeping up to [`LoadConfig::pipeline`] keyed reads
//! in flight per connection — a closed loop at every depth, so offered
//! load adapts to service capacity and the measured latency histogram is
//! honest (latency is queue-to-response, including the client's own
//! batching). Requests spread round-robin over [`LoadConfig::keys`]
//! keyspace keys, exercising the server's consistent-hash shard routing.
//!
//! An optional ops/sec target turns the loop into a paced open-ish load
//! for soak tests; left unset, the generator reports the sustained
//! ceiling, which is what `bench_wire_throughput` records in
//! `BENCH_repro.json`. A warm-up window runs the identical workload
//! before the measured interval so connection setup, allocator steady
//! state, and socket buffer sizing never pollute the numbers.
//!
//! Error accounting is deliberately paranoid: I/O, decode, ordering and
//! stall faults are counted separately *and* per connection
//! (`conns_with_errors` / `max_conn_errors`), so a handful of sick
//! connections cannot hide inside an aggregate average.

use crate::client::WireClient;
use crate::pipeline::{PipeConn, PipeFault};
use conprobe_harness::transport::{EndpointError, ServiceEndpoint};
use conprobe_obs::{latency_bounds_nanos, Histogram, MetricsRegistry};

/// Histogram bounds for wire-op latencies: sub-millisecond buckets
/// (loopback RTTs are tens of microseconds) in front of the standard
/// 1 ms–30 s latency ladder.
pub fn wire_latency_bounds_nanos() -> Vec<u64> {
    const US: u64 = 1_000;
    let mut bounds = vec![10 * US, 20 * US, 50 * US, 100 * US, 200 * US, 500 * US];
    bounds.extend(latency_bounds_nanos());
    bounds
}
use conprobe_services::ClientOp;
use conprobe_sim::LocalTime;
use conprobe_store::{AuthorId, Post, PostId};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Configuration for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The endpoint to load.
    pub addr: SocketAddr,
    /// Concurrent connections, multiplexed across [`LoadConfig::threads`]
    /// sweeper threads (tens of thousands are fine — connections are
    /// non-blocking sockets, not threads).
    pub connections: usize,
    /// In-flight pipelined requests per connection (≥ 1). Depth 1 is the
    /// classic request-then-response closed loop.
    pub pipeline: usize,
    /// Sweeper threads the connections are distributed over. One is
    /// right on a single-core host.
    pub threads: usize,
    /// Keyspace keys the reads cycle through (round-robin), exercising
    /// the server's shard routing. 1 pins everything to key 0.
    pub keys: u32,
    /// Wall-clock duration of the measured loop.
    pub duration: Duration,
    /// Identical workload run before measurement begins; counters and
    /// histograms only see the measured window.
    pub warmup: Duration,
    /// Optional pacing target, total ops/sec across all connections.
    /// `None` runs flat out.
    pub target_ops_per_sec: Option<u64>,
    /// Posts seeded before the read loop (spread round-robin over the
    /// key set, so per-key read payloads are stable over the run).
    pub seed_posts: u32,
    /// Per-call socket timeout (seeding) and in-flight stall bound.
    pub timeout: Duration,
}

impl LoadConfig {
    /// Flat-out loopback defaults: the pre-pipelining configuration
    /// (8 connections, depth 1, one key) with a short warm-up.
    pub fn loopback(addr: SocketAddr) -> Self {
        LoadConfig {
            addr,
            connections: 8,
            pipeline: 1,
            threads: 1,
            keys: 1,
            duration: Duration::from_secs(5),
            warmup: Duration::from_millis(250),
            target_ops_per_sec: None,
            seed_posts: 32,
            timeout: Duration::from_secs(5),
        }
    }
}

/// What the load run measured (the measured window only — warm-up ops
/// are discarded).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Completed operations across all connections.
    pub ops: u64,
    /// Failed operations (transport, decode, ordering, stall — total).
    pub errors: u64,
    /// Measured wall-clock seconds.
    pub elapsed_secs: f64,
    /// `ops / elapsed_secs`.
    pub ops_per_sec: f64,
    /// Latency percentiles in nanoseconds: upper bucket bounds from the
    /// histogram.
    pub p50_nanos: u64,
    /// 99th percentile upper bucket bound.
    pub p99_nanos: u64,
    /// 99.9th percentile upper bucket bound — the tail the p99 hides.
    pub p999_nanos: u64,
    /// True when the p50 rank landed in the histogram's open-ended
    /// overflow bucket: the reported bound is the largest finite bucket
    /// bound, an *underestimate* of the true percentile.
    pub p50_saturated: bool,
    /// Overflow-saturation flag for [`LoadReport::p99_nanos`].
    pub p99_saturated: bool,
    /// Overflow-saturation flag for [`LoadReport::p999_nanos`]. The tail
    /// percentile saturates first — check this before quoting p999.
    pub p999_saturated: bool,
    /// Responses that violated per-connection FIFO order.
    pub ordering_errors: u64,
    /// Responses that failed frame validation.
    pub decode_errors: u64,
    /// Connections the server shed with a `busy` frame. Backpressure,
    /// not failure: counted apart from `errors`, and the slot reconnects
    /// only after the server's wait hint.
    pub busy_sheds: u64,
    /// Connections that suffered at least one error.
    pub conns_with_errors: u64,
    /// Errors on the single worst connection.
    pub max_conn_errors: u64,
}

/// Percentile `q` as an upper bucket bound, plus a saturation flag.
///
/// When the rank lands in the open-ended overflow bucket there is no
/// finite bound to report: the function falls back to the largest finite
/// bucket bound and returns `true` — the value is a floor on the true
/// percentile, not an estimate of it. Callers must surface that flag
/// rather than quoting the fallback as a measurement.
fn percentile(hist: &Histogram, q: f64) -> (u64, bool) {
    let buckets = hist.snapshot();
    let total: u64 = buckets.iter().map(|(_, c)| c).sum();
    if total == 0 {
        return (0, false);
    }
    let rank = (total as f64 * q).ceil() as u64;
    let mut seen = 0;
    let mut last_finite = 0;
    for &(bound, count) in &buckets {
        seen += count;
        if bound != u64::MAX {
            last_finite = bound;
        }
        if seen >= rank {
            return if bound == u64::MAX { (last_finite, true) } else { (bound, false) };
        }
    }
    (last_finite, true)
}

/// Per-thread tallies folded into the report at the end.
#[derive(Default)]
struct Tally {
    ops: u64,
    errors: u64,
    ordering: u64,
    decode: u64,
    busy: u64,
    conns_with_errors: u64,
    max_conn_errors: u64,
}

/// Runs the load loop and records per-op latencies into `metrics`
/// (`wire.load.latency_nanos` histogram, `wire.load.ops` /
/// `wire.load.errors` / `wire.load.ordering_errors` /
/// `wire.load.decode_errors` / `wire.load.busy_sheds` counters).
pub fn run_load(
    config: &LoadConfig,
    metrics: &MetricsRegistry,
) -> Result<LoadReport, EndpointError> {
    let hist = metrics.histogram("wire.load.latency_nanos", &wire_latency_bounds_nanos());
    let ops = metrics.counter("wire.load.ops");
    let errors = metrics.counter("wire.load.errors");
    let ordering_ctr = metrics.counter("wire.load.ordering_errors");
    let decode_ctr = metrics.counter("wire.load.decode_errors");
    let busy_ctr = metrics.counter("wire.load.busy_sheds");

    // Seed a fixed read corpus, spread round-robin over the key set so
    // every key's read payload is stable over the run.
    {
        let keys = config.keys.max(1);
        let mut seeder = WireClient::connect(config.addr, config.timeout)?;
        for seq in 1..=config.seed_posts {
            let id = PostId::new(AuthorId(u32::MAX), seq);
            seeder.set_key(Some((seq - 1) % keys));
            seeder.call(ClientOp::Write(Post::new(
                id,
                format!("seed {id}"),
                LocalTime::from_nanos(0),
            )))?;
        }
    }

    let connections = config.connections.max(1);
    let threads = config.threads.clamp(1, connections);
    let depth = config.pipeline.max(1);
    let keys = config.keys.max(1);
    let warmup_end = Instant::now() + config.warmup;
    let deadline = warmup_end + config.duration;
    // Per-connection pacing interval, if a target was set.
    let pace = config.target_ops_per_sec.map(|t| {
        let per_conn = (t / connections as u64).max(1);
        Duration::from_nanos(1_000_000_000 / per_conn)
    });

    let mut handles = Vec::new();
    for t in 0..threads {
        // Distribute the connection count across sweepers.
        let mine = connections / threads + usize::from(t < connections % threads);
        let config = config.clone();
        let hist = hist.clone();
        let ops = ops.clone();
        let errors = errors.clone();
        let ordering_ctr = ordering_ctr.clone();
        let decode_ctr = decode_ctr.clone();
        let busy_ctr = busy_ctr.clone();
        handles.push(std::thread::spawn(move || {
            sweep_connections(SweeperArgs {
                config: &config,
                conns: mine,
                depth,
                keys,
                pace,
                warmup_end,
                deadline,
                hist: &hist,
                ops: &ops,
                errors: &errors,
                ordering_ctr: &ordering_ctr,
                decode_ctr: &decode_ctr,
                busy_ctr: &busy_ctr,
            })
        }));
    }
    let mut tally = Tally::default();
    for handle in handles {
        if let Ok(t) = handle.join() {
            tally.ops += t.ops;
            tally.errors += t.errors;
            tally.ordering += t.ordering;
            tally.decode += t.decode;
            tally.busy += t.busy;
            tally.conns_with_errors += t.conns_with_errors;
            tally.max_conn_errors = tally.max_conn_errors.max(t.max_conn_errors);
        }
    }

    let elapsed_secs = config.duration.as_secs_f64();
    let (p50_nanos, p50_saturated) = percentile(&hist, 0.50);
    let (p99_nanos, p99_saturated) = percentile(&hist, 0.99);
    let (p999_nanos, p999_saturated) = percentile(&hist, 0.999);
    Ok(LoadReport {
        ops: tally.ops,
        errors: tally.errors,
        elapsed_secs,
        ops_per_sec: tally.ops as f64 / elapsed_secs.max(1e-9),
        p50_nanos,
        p99_nanos,
        p999_nanos,
        p50_saturated,
        p99_saturated,
        p999_saturated,
        ordering_errors: tally.ordering,
        decode_errors: tally.decode,
        busy_sheds: tally.busy,
        conns_with_errors: tally.conns_with_errors,
        max_conn_errors: tally.max_conn_errors,
    })
}

struct SweeperArgs<'a> {
    config: &'a LoadConfig,
    conns: usize,
    depth: usize,
    keys: u32,
    pace: Option<Duration>,
    warmup_end: Instant,
    deadline: Instant,
    hist: &'a Histogram,
    ops: &'a conprobe_obs::Counter,
    errors: &'a conprobe_obs::Counter,
    ordering_ctr: &'a conprobe_obs::Counter,
    decode_ctr: &'a conprobe_obs::Counter,
    busy_ctr: &'a conprobe_obs::Counter,
}

/// One sweeper thread: owns `conns` pipelined connections and runs the
/// warm-up + measured loop over them.
fn sweep_connections(args: SweeperArgs<'_>) -> Tally {
    let mut tally = Tally::default();
    let mut conns: Vec<Option<PipeConn>> = Vec::with_capacity(args.conns);
    // Errors per connection *slot*, surviving reconnects — the
    // per-connection counter the report surfaces.
    let mut slot_errors: Vec<u64> = vec![0; args.conns];
    // Earliest instant each empty slot may re-dial: a busy shed backs
    // off by the server's wait hint; plain connect failures retry on a
    // short fixed delay instead of hammering a refusing listener.
    let mut retry_at: Vec<Instant> = vec![Instant::now(); args.conns];
    let mut key_cursor: u32 = 0;
    for slot in slot_errors.iter_mut() {
        match PipeConn::connect(args.config.addr, args.config.timeout) {
            Ok(conn) => conns.push(Some(conn)),
            Err(_) => {
                tally.errors += 1;
                *slot += 1;
                conns.push(None);
            }
        }
    }
    let mut scratch = vec![0u8; 256 * 1024];
    let mut idle_sweeps: u32 = 0;
    loop {
        let now = Instant::now();
        let measuring = now >= args.warmup_end;
        let issuing = now < args.deadline;
        let mut progressed = false;
        let mut all_drained = true;
        for (slot_idx, slot) in conns.iter_mut().enumerate() {
            if slot.is_none() {
                // An empty slot (shed, faulted, or never connected)
                // re-dials once its backoff expires — previously a slot
                // that failed its initial connect was dead for the run.
                if !issuing || now < retry_at[slot_idx] {
                    continue;
                }
                match PipeConn::connect(args.config.addr, args.config.timeout) {
                    Ok(conn) => {
                        *slot = Some(conn);
                        progressed = true;
                    }
                    Err(_) => {
                        retry_at[slot_idx] = now + Duration::from_millis(20);
                        continue;
                    }
                }
            }
            let Some(conn) = slot else { continue };
            if issuing {
                while conn.inflight() < args.depth {
                    if let Some(interval) = args.pace {
                        if now < conn.next_issue_at {
                            break;
                        }
                        conn.next_issue_at += interval;
                    }
                    conn.issue_read(key_cursor % args.keys);
                    key_cursor = key_cursor.wrapping_add(1);
                }
            }
            let result = conn.pump(&mut scratch, args.config.timeout);
            progressed |= result.progressed;
            if result.completed > 0 && measuring {
                let n = result.completed as u64;
                tally.ops += n;
                args.ops.add(n);
                for nanos in conn.take_latencies() {
                    args.hist.record(nanos);
                }
            } else {
                conn.take_latencies();
            }
            if let Some(fault) = result.fault {
                let backoff = if fault == PipeFault::Busy {
                    // Backpressure, not failure: honour the server's
                    // wait hint before re-dialing.
                    tally.busy += 1;
                    args.busy_ctr.inc();
                    Duration::from_millis(u64::from(result.busy_wait_millis.unwrap_or(50)))
                } else {
                    tally.errors += 1;
                    args.errors.inc();
                    match fault {
                        PipeFault::Ordering => {
                            tally.ordering += 1;
                            args.ordering_ctr.inc();
                        }
                        PipeFault::Decode => {
                            tally.decode += 1;
                            args.decode_ctr.inc();
                        }
                        PipeFault::Io | PipeFault::Stall | PipeFault::Busy => {}
                    }
                    slot_errors[slot_idx] += 1;
                    Duration::ZERO
                };
                // Tear down; the empty-slot path re-dials after the
                // backoff (a lossy server leaks in-flight slots
                // otherwise).
                *slot = None;
                retry_at[slot_idx] = now + backoff;
                progressed = true;
                continue;
            }
            if conn.inflight() > 0 {
                all_drained = false;
            }
        }
        // Done once drained, or give up on stragglers after the stall bound.
        let done =
            !issuing && (all_drained || Instant::now() > args.deadline + args.config.timeout);
        if done {
            tally.conns_with_errors = slot_errors.iter().filter(|&&e| e > 0).count() as u64;
            tally.max_conn_errors = slot_errors.iter().copied().max().unwrap_or(0);
            return tally;
        }
        if progressed {
            idle_sweeps = 0;
        } else {
            // Mirror the server's backoff: yield to hand the core to the
            // serving thread (the responses we are waiting on), sleep
            // only once yielding stops producing progress.
            idle_sweeps = idle_sweeps.saturating_add(1);
            if idle_sweeps > 256 {
                std::thread::sleep(Duration::from_micros(50));
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: &[u64]) -> Histogram {
        MetricsRegistry::new().histogram("t", bounds)
    }

    #[test]
    fn percentile_within_ladder_is_exact_bound_unsaturated() {
        let h = hist(&[10, 100]);
        for v in [1, 2, 3] {
            h.record(v);
        }
        assert_eq!(percentile(&h, 0.50), (10, false));
        assert_eq!(percentile(&h, 0.999), (10, false));
        h.record(50);
        assert_eq!(percentile(&h, 0.999), (100, false));
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        assert_eq!(percentile(&hist(&[10, 100]), 0.999), (0, false));
    }

    #[test]
    fn tail_rank_in_overflow_bucket_is_flagged_saturated() {
        // One in-ladder sample, one past the last finite bound: the p50
        // is honest, the p999 falls back to the largest finite bound and
        // must say so.
        let h = hist(&[10, 100]);
        h.record(5);
        h.record(5_000);
        assert_eq!(percentile(&h, 0.50), (10, false));
        assert_eq!(percentile(&h, 0.999), (100, true));
    }

    #[test]
    fn all_samples_in_overflow_saturate_every_percentile() {
        // The previously-silent case: every sample beyond the ladder.
        // The old code reported the largest finite bound (100 ns here)
        // for every percentile with no indication anything was wrong.
        let h = hist(&[10, 100]);
        for _ in 0..3 {
            h.record(7_000);
        }
        assert_eq!(percentile(&h, 0.50), (100, true));
        assert_eq!(percentile(&h, 0.99), (100, true));
        assert_eq!(percentile(&h, 0.999), (100, true));
    }

    #[test]
    fn wire_ladder_saturates_past_thirty_seconds() {
        let bounds = wire_latency_bounds_nanos();
        let h = hist(&bounds);
        h.record(31_000_000_000); // 31 s > the ladder's 30 s ceiling
        let (bound, saturated) = percentile(&h, 0.50);
        assert_eq!(bound, *bounds.last().unwrap());
        assert!(saturated);
    }
}
