//! Closed-loop load generator for `cpw1` servers.
//!
//! N connection threads hammer one endpoint with reads (after seeding a
//! small fixed corpus of posts), each operation strictly
//! request-then-response — a *closed loop*, so offered load adapts to
//! service capacity and the measured latency histogram is honest. An
//! optional ops/sec target turns the loop into a paced open-ish load for
//! soak tests; left unset, the generator reports the sustained ceiling,
//! which is what `bench_wire_throughput` records in `BENCH_repro.json`.

use crate::client::WireClient;
use conprobe_harness::transport::{EndpointError, ServiceEndpoint};
use conprobe_obs::{latency_bounds_nanos, Histogram, MetricsRegistry};

/// Histogram bounds for wire-op latencies: sub-millisecond buckets
/// (loopback RTTs are tens of microseconds) in front of the standard
/// 1 ms–30 s latency ladder.
pub fn wire_latency_bounds_nanos() -> Vec<u64> {
    const US: u64 = 1_000;
    let mut bounds = vec![10 * US, 20 * US, 50 * US, 100 * US, 200 * US, 500 * US];
    bounds.extend(latency_bounds_nanos());
    bounds
}
use conprobe_services::ClientOp;
use conprobe_sim::LocalTime;
use conprobe_store::{AuthorId, Post, PostId};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The endpoint to load.
    pub addr: SocketAddr,
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Wall-clock duration of the measurement loop.
    pub duration: Duration,
    /// Optional pacing target, total ops/sec across all connections.
    /// `None` runs flat out.
    pub target_ops_per_sec: Option<u64>,
    /// Posts seeded before the read loop (read payload size).
    pub seed_posts: u32,
    /// Per-call socket timeout.
    pub timeout: Duration,
}

impl LoadConfig {
    /// Flat-out loopback defaults.
    pub fn loopback(addr: SocketAddr) -> Self {
        LoadConfig {
            addr,
            connections: 8,
            duration: Duration::from_secs(5),
            target_ops_per_sec: None,
            seed_posts: 32,
            timeout: Duration::from_secs(5),
        }
    }
}

/// What the load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Completed operations across all connections.
    pub ops: u64,
    /// Failed operations (transport errors).
    pub errors: u64,
    /// Measured wall-clock seconds.
    pub elapsed_secs: f64,
    /// `ops / elapsed_secs`.
    pub ops_per_sec: f64,
    /// Latency percentiles in nanoseconds: (p50, p99) upper bucket
    /// bounds from the histogram.
    pub p50_nanos: u64,
    /// 99th percentile upper bucket bound.
    pub p99_nanos: u64,
}

fn percentile(hist: &Histogram, q: f64) -> u64 {
    let buckets = hist.snapshot();
    let total: u64 = buckets.iter().map(|(_, c)| c).sum();
    if total == 0 {
        return 0;
    }
    let rank = (total as f64 * q).ceil() as u64;
    let mut seen = 0;
    let mut last_finite = 0;
    for &(bound, count) in &buckets {
        seen += count;
        if bound != u64::MAX {
            last_finite = bound;
        }
        if seen >= rank {
            // The final bucket is open-ended; fall back to the largest
            // finite bound rather than reporting u64::MAX.
            return if bound == u64::MAX { last_finite } else { bound };
        }
    }
    last_finite
}

/// Runs the load loop and records per-op latencies into
/// `metrics` (`wire.load.latency_nanos` histogram, `wire.load.ops` /
/// `wire.load.errors` counters).
pub fn run_load(
    config: &LoadConfig,
    metrics: &MetricsRegistry,
) -> Result<LoadReport, EndpointError> {
    let hist = metrics.histogram("wire.load.latency_nanos", &wire_latency_bounds_nanos());
    let ops = metrics.counter("wire.load.ops");
    let errors = metrics.counter("wire.load.errors");

    // Seed a fixed read corpus so read payloads are stable over the run.
    {
        let mut seeder = WireClient::connect(config.addr, config.timeout)?;
        for seq in 1..=config.seed_posts {
            let id = PostId::new(AuthorId(u32::MAX), seq);
            seeder.call(ClientOp::Write(Post::new(
                id,
                format!("seed {id}"),
                LocalTime::from_nanos(0),
            )))?;
        }
    }

    let total_ops = Arc::new(AtomicU64::new(0));
    let total_errors = Arc::new(AtomicU64::new(0));
    let begin = Instant::now();
    let deadline = begin + config.duration;
    // Per-connection pacing interval, if a target was set.
    let pace = config.target_ops_per_sec.map(|t| {
        let per_conn = (t / config.connections.max(1) as u64).max(1);
        Duration::from_nanos(1_000_000_000 / per_conn)
    });

    let mut threads = Vec::new();
    for _ in 0..config.connections.max(1) {
        let config = config.clone();
        let hist = hist.clone();
        let ops = ops.clone();
        let errors = errors.clone();
        let total_ops = Arc::clone(&total_ops);
        let total_errors = Arc::clone(&total_errors);
        threads.push(std::thread::spawn(move || {
            let mut client = match WireClient::connect(config.addr, config.timeout) {
                Ok(c) => c,
                Err(_) => {
                    total_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            };
            let mut next_at = Instant::now();
            while Instant::now() < deadline {
                if let Some(interval) = pace {
                    let now = Instant::now();
                    if now < next_at {
                        std::thread::sleep(next_at - now);
                    }
                    next_at += interval;
                }
                let began = Instant::now();
                match client.call(ClientOp::Read) {
                    Ok(_) => {
                        hist.record(began.elapsed().as_nanos() as u64);
                        ops.inc();
                        total_ops.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        errors.inc();
                        total_errors.fetch_add(1, Ordering::Relaxed);
                        // Transport error: reconnect and keep going.
                        match WireClient::connect(config.addr, config.timeout) {
                            Ok(c) => client = c,
                            Err(_) => return,
                        }
                    }
                }
            }
        }));
    }
    for t in threads {
        let _ = t.join();
    }

    let elapsed_secs = begin.elapsed().as_secs_f64();
    let done = total_ops.load(Ordering::Relaxed);
    Ok(LoadReport {
        ops: done,
        errors: total_errors.load(Ordering::Relaxed),
        elapsed_secs,
        ops_per_sec: done as f64 / elapsed_secs.max(1e-9),
        p50_nanos: percentile(&hist, 0.50),
        p99_nanos: percentile(&hist, 0.99),
    })
}
