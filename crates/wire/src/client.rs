//! The TCP client side of `cpw1` — a blocking
//! [`ServiceEndpoint`](conprobe_harness::transport::ServiceEndpoint).
//!
//! This is the live counterpart of the harness's in-sim
//! [`SimRpc`](conprobe_harness::transport::SimRpc): the probe agents and
//! the load generator are written against the `ServiceEndpoint` trait and
//! never see a socket, so the sim and live measurement paths share one
//! agent logic with only the transport swapped.

use crate::frame::{decode, Frame, PROTO_VERSION};
use conprobe_harness::transport::{EndpointError, ServiceEndpoint};
use conprobe_services::{ClientOp, OpResult};
use conprobe_store::PostId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn io_err(context: &str, e: std::io::Error) -> EndpointError {
    EndpointError(format!("{context}: {e}"))
}

/// A connected `cpw1` client.
///
/// One request is in flight at a time (the protocol has no correlation
/// ids; ordering on the TCP stream is the correlation). The constructor
/// performs the `hello` handshake and verifies the minor protocol
/// version, so a connected client is always version-compatible.
pub struct WireClient {
    stream: TcpStream,
    /// Undecoded bytes read off the socket.
    buf: Vec<u8>,
    service: String,
    last_server_clock_nanos: i64,
}

impl WireClient {
    /// Connects, handshakes, and verifies protocol versions. `timeout`
    /// bounds the connect and every subsequent read.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, EndpointError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| io_err(&format!("connect {addr}"), e))?;
        stream.set_nodelay(true).map_err(|e| io_err("set_nodelay", e))?;
        stream.set_read_timeout(Some(timeout)).map_err(|e| io_err("set_read_timeout", e))?;
        let mut client = WireClient {
            stream,
            buf: Vec::new(),
            service: String::new(),
            last_server_clock_nanos: 0,
        };
        let clock = client.hello()?;
        client.last_server_clock_nanos = clock;
        Ok(client)
    }

    /// The journal-style token of the service the server hosts
    /// (`blogger`, `gplus`, …), learned during the handshake.
    pub fn service(&self) -> &str {
        &self.service
    }

    fn send(&mut self, frame: &Frame) -> Result<(), EndpointError> {
        self.stream.write_all(&frame.encode()).map_err(|e| io_err("send frame", e))
    }

    fn recv(&mut self) -> Result<Frame, EndpointError> {
        let mut scratch = [0u8; 64 * 1024];
        loop {
            match decode(&self.buf).map_err(|e| EndpointError(format!("wire decode: {e}")))? {
                Some((frame, consumed)) => {
                    self.buf.drain(..consumed);
                    return Ok(frame);
                }
                None => match self.stream.read(&mut scratch) {
                    Ok(0) => return Err(EndpointError("server closed the connection".into())),
                    Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                    Err(e) => return Err(io_err("read", e)),
                },
            }
        }
    }

    fn roundtrip(&mut self, frame: Frame) -> Result<Frame, EndpointError> {
        self.send(&frame)?;
        self.recv()
    }

    /// One `hello` round trip: returns the server's clock reading
    /// (nanoseconds on its monotonic timeline) and refreshes the cached
    /// service token. This is the Cristian probe primitive: wrap the call
    /// between two local clock readings to form a
    /// [`ProbeSample`](conprobe_harness::clocksync::ProbeSample).
    pub fn hello(&mut self) -> Result<i64, EndpointError> {
        match self.roundtrip(Frame::Hello { proto: PROTO_VERSION })? {
            Frame::HelloAck { proto, server_clock_nanos, service } => {
                if proto != PROTO_VERSION {
                    return Err(EndpointError(format!(
                        "protocol version mismatch: client {PROTO_VERSION}, server {proto}"
                    )));
                }
                self.service = service;
                self.last_server_clock_nanos = server_clock_nanos;
                Ok(server_clock_nanos)
            }
            other => Err(EndpointError(format!("expected hello_ack, got {other:?}"))),
        }
    }

    /// Asks the server to begin a graceful drain; returns once the server
    /// acknowledged.
    pub fn stop_server(&mut self) -> Result<(), EndpointError> {
        match self.roundtrip(Frame::Stop)? {
            Frame::StopAck => Ok(()),
            other => Err(EndpointError(format!("expected stop_ack, got {other:?}"))),
        }
    }
}

impl ServiceEndpoint for WireClient {
    fn call(&mut self, op: ClientOp) -> Result<OpResult, EndpointError> {
        let request = match op {
            ClientOp::Write(post) => Frame::Write {
                author: post.id.author.0,
                seq: post.id.seq,
                client_ts_nanos: post.client_ts.as_nanos(),
                content: post.content,
            },
            ClientOp::Read => Frame::Read,
            ClientOp::Inspect => {
                // Replica introspection is a white-box, sim-only facility.
                return Err(EndpointError("inspect is not part of the wire protocol".into()));
            }
        };
        match self.roundtrip(request)? {
            Frame::WriteAck { id } => Ok(OpResult::WriteAck(PostId::from_u64(id))),
            Frame::ReadOk { ids } => {
                Ok(OpResult::ReadOk(ids.into_iter().map(PostId::from_u64).collect()))
            }
            Frame::Throttled => Ok(OpResult::Throttled),
            other => Err(EndpointError(format!("unexpected response frame {other:?}"))),
        }
    }

    fn server_clock(&mut self) -> Result<i64, EndpointError> {
        self.hello()
    }
}
