//! The TCP client side of `cpw1` — a blocking
//! [`ServiceEndpoint`](conprobe_harness::transport::ServiceEndpoint).
//!
//! This is the live counterpart of the harness's in-sim
//! [`SimRpc`](conprobe_harness::transport::SimRpc): the probe agents and
//! the load generator are written against the `ServiceEndpoint` trait and
//! never see a socket, so the sim and live measurement paths share one
//! agent logic with only the transport swapped.

use crate::frame::{decode, Frame, PROTO_VERSION};
use conprobe_harness::transport::{EndpointError, ServiceEndpoint};
use conprobe_services::{ClientOp, OpResult};
use conprobe_sim::SimRng;
use conprobe_store::PostId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn io_err(context: &str, e: std::io::Error) -> EndpointError {
    EndpointError(format!("{context}: {e}"))
}

/// Reconnect budget for a dropped connection: up to `attempts`
/// re-dials per failed operation, spaced by capped exponential backoff
/// (`base_delay * 2^i`, clamped to `max_delay`) with seeded jitter so a
/// fleet of agents losing the same server does not re-dial in lockstep.
///
/// Every `cpw1` request is safe to resend on a fresh connection: writes
/// are deduplicated server-side by post id (the ack is re-issued),
/// reads and hellos are pure, and `stop` is a level trigger — so the
/// client re-sends the in-flight frame after each reconnect.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Maximum reconnect attempts per failed operation.
    pub attempts: u32,
    /// Backoff before the first reconnect attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the jitter stream (deterministic per client).
    pub seed: u64,
}

impl ReconnectPolicy {
    /// No reconnection: the first connection error is the caller's
    /// problem (the pre-hardening behaviour).
    pub fn disabled() -> Self {
        ReconnectPolicy {
            attempts: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0,
        }
    }

    /// The probe agents' default: a handful of quick retries bounded
    /// well under the read cadence.
    pub fn probe_default(seed: u64) -> Self {
        ReconnectPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
            seed,
        }
    }

    /// The backoff before reconnect attempt `attempt` (0-based):
    /// `min(base * 2^attempt, max)`, scaled by a jitter factor in
    /// `[0.5, 1.0)` drawn from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> Duration {
        let exp = self.base_delay.saturating_mul(2u32.saturating_pow(attempt));
        let capped = exp.min(self.max_delay).max(self.base_delay);
        capped.mul_f64(0.5 + rng.gen_unit() * 0.5)
    }
}

/// A connected `cpw1` client.
///
/// One request is in flight at a time (the protocol has no correlation
/// ids; ordering on the TCP stream is the correlation). The constructor
/// performs the `hello` handshake and verifies the minor protocol
/// version, so a connected client is always version-compatible. With a
/// [`ReconnectPolicy`], a send or receive failure transparently
/// re-dials, re-handshakes and re-sends the in-flight frame.
pub struct WireClient {
    stream: TcpStream,
    /// Undecoded bytes read off the socket.
    buf: Vec<u8>,
    addr: SocketAddr,
    timeout: Duration,
    policy: ReconnectPolicy,
    jitter: SimRng,
    reconnects: u64,
    service: String,
    last_server_clock_nanos: i64,
    /// Keyed mode: `Some(key)` routes ops through the sharded
    /// `read_q`/`write_q` frames for this keyspace key; `None` (the
    /// default) speaks the legacy un-keyed frames (key 0 server-side).
    key: Option<u32>,
    /// Request-id stream for keyed frames.
    next_req: u32,
    /// Set when the server shed this client with a `busy` frame: the
    /// minimum wait the next reconnect must respect.
    busy_hint_millis: Option<u32>,
    /// How many times the server shed this client with a `busy` frame.
    busy_sheds: u64,
}

impl WireClient {
    /// Connects, handshakes, and verifies protocol versions. `timeout`
    /// bounds the connect and every subsequent read. The client never
    /// reconnects (see [`WireClient::connect_with_policy`]).
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, EndpointError> {
        Self::connect_with_policy(addr, timeout, ReconnectPolicy::disabled())
    }

    /// Like [`WireClient::connect`], but a dropped connection is
    /// re-dialed under `policy` and the in-flight frame re-sent.
    pub fn connect_with_policy(
        addr: SocketAddr,
        timeout: Duration,
        policy: ReconnectPolicy,
    ) -> Result<Self, EndpointError> {
        let stream = Self::dial(addr, timeout)?;
        let jitter = SimRng::new(policy.seed).split("wire.client.backoff");
        let mut client = WireClient {
            stream,
            buf: Vec::new(),
            addr,
            timeout,
            policy,
            jitter,
            reconnects: 0,
            service: String::new(),
            last_server_clock_nanos: 0,
            key: None,
            next_req: 0,
            busy_hint_millis: None,
            busy_sheds: 0,
        };
        if let Err(first) = client.handshake() {
            // A load-shedding server answers the dial itself with `busy`
            // and hangs up; that is retryable under the same policy as a
            // mid-operation drop.
            let mut last_err = first;
            for attempt in 0..client.policy.attempts {
                match client.reconnect(attempt) {
                    Ok(()) => return Ok(client),
                    Err(e) => last_err = e,
                }
            }
            return Err(last_err);
        }
        Ok(client)
    }

    fn dial(addr: SocketAddr, timeout: Duration) -> Result<TcpStream, EndpointError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| io_err(&format!("connect {addr}"), e))?;
        stream.set_nodelay(true).map_err(|e| io_err("set_nodelay", e))?;
        stream.set_read_timeout(Some(timeout)).map_err(|e| io_err("set_read_timeout", e))?;
        Ok(stream)
    }

    /// The journal-style token of the service the server hosts
    /// (`blogger`, `gplus`, …), learned during the handshake.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// How many times this client re-dialed a dropped connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// How many times the server shed this client with a `busy` frame.
    pub fn busy_sheds(&self) -> u64 {
        self.busy_sheds
    }

    /// Switches keyed mode: `Some(key)` makes every subsequent
    /// [`ServiceEndpoint::call`] address that keyspace key through the
    /// sharded `read_q`/`write_q` frames (the response's echoed request
    /// id is verified); `None` restores the legacy un-keyed frames.
    pub fn set_key(&mut self, key: Option<u32>) {
        self.key = key;
    }

    /// The keyspace key of keyed mode, if enabled.
    pub fn key(&self) -> Option<u32> {
        self.key
    }

    fn send(&mut self, frame: &Frame) -> Result<(), EndpointError> {
        self.stream.write_all(&frame.encode()).map_err(|e| io_err("send frame", e))
    }

    fn recv(&mut self) -> Result<Frame, EndpointError> {
        let mut scratch = [0u8; 64 * 1024];
        loop {
            match decode(&self.buf).map_err(|e| EndpointError(format!("wire decode: {e}")))? {
                Some((Frame::Busy { retry_after_millis }, consumed)) => {
                    // Load shed: the server refuses this connection and
                    // closes it. Surface a retryable error; the next
                    // reconnect honours the server's wait hint.
                    self.buf.drain(..consumed);
                    self.busy_hint_millis = Some(retry_after_millis);
                    self.busy_sheds += 1;
                    return Err(EndpointError(format!(
                        "server busy: retry after {retry_after_millis}ms"
                    )));
                }
                Some((frame, consumed)) => {
                    self.buf.drain(..consumed);
                    return Ok(frame);
                }
                None => match self.stream.read(&mut scratch) {
                    Ok(0) => return Err(EndpointError("server closed the connection".into())),
                    Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                    Err(e) => return Err(io_err("read", e)),
                },
            }
        }
    }

    /// One non-retrying `hello` exchange on the current stream; validates
    /// the version and refreshes the service token and clock cache.
    fn handshake(&mut self) -> Result<i64, EndpointError> {
        self.send(&Frame::Hello { proto: PROTO_VERSION })?;
        match self.recv()? {
            Frame::HelloAck { proto, server_clock_nanos, service } => {
                if proto != PROTO_VERSION {
                    return Err(EndpointError(format!(
                        "protocol version mismatch: client {PROTO_VERSION}, server {proto}"
                    )));
                }
                self.service = service;
                self.last_server_clock_nanos = server_clock_nanos;
                Ok(server_clock_nanos)
            }
            other => Err(EndpointError(format!("expected hello_ack, got {other:?}"))),
        }
    }

    /// Tears down the dead stream, waits out the backoff for `attempt`
    /// (at least the server's `busy` wait hint, if one was received),
    /// re-dials and re-handshakes. Any half-received bytes are dropped
    /// with the old connection — the new stream starts on a frame
    /// boundary by construction.
    fn reconnect(&mut self, attempt: u32) -> Result<(), EndpointError> {
        let mut delay = self.policy.backoff(attempt, &mut self.jitter);
        if let Some(hint) = self.busy_hint_millis.take() {
            delay = delay.max(Duration::from_millis(u64::from(hint)));
        }
        std::thread::sleep(delay);
        self.stream = Self::dial(self.addr, self.timeout)?;
        self.buf.clear();
        self.reconnects += 1;
        self.handshake()?;
        Ok(())
    }

    fn try_roundtrip(&mut self, frame: &Frame) -> Result<Frame, EndpointError> {
        self.send(frame)?;
        self.recv()
    }

    fn roundtrip(&mut self, frame: Frame) -> Result<Frame, EndpointError> {
        let mut last_err = match self.try_roundtrip(&frame) {
            Ok(reply) => return Ok(reply),
            Err(e) => e,
        };
        if self.policy.attempts == 0 {
            return Err(last_err);
        }
        for attempt in 0..self.policy.attempts {
            match self.reconnect(attempt).and_then(|()| self.try_roundtrip(&frame)) {
                Ok(reply) => return Ok(reply),
                Err(e) => last_err = e,
            }
        }
        Err(EndpointError(format!(
            "giving up after {} reconnect attempt(s): {last_err}",
            self.policy.attempts
        )))
    }

    /// One `hello` round trip: returns the server's clock reading
    /// (nanoseconds on its monotonic timeline) and refreshes the cached
    /// service token. This is the Cristian probe primitive: wrap the call
    /// between two local clock readings to form a
    /// [`ProbeSample`](conprobe_harness::clocksync::ProbeSample).
    pub fn hello(&mut self) -> Result<i64, EndpointError> {
        match self.roundtrip(Frame::Hello { proto: PROTO_VERSION })? {
            Frame::HelloAck { proto, server_clock_nanos, service } => {
                if proto != PROTO_VERSION {
                    return Err(EndpointError(format!(
                        "protocol version mismatch: client {PROTO_VERSION}, server {proto}"
                    )));
                }
                self.service = service;
                self.last_server_clock_nanos = server_clock_nanos;
                Ok(server_clock_nanos)
            }
            other => Err(EndpointError(format!("expected hello_ack, got {other:?}"))),
        }
    }

    /// One keyed operation: the sharded frame family, with the echoed
    /// request id verified (a blocking client has exactly one request in
    /// flight, so any other id means the stream is confused).
    fn call_keyed(&mut self, key: u32, op: ClientOp) -> Result<OpResult, EndpointError> {
        let req = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        let request = match op {
            ClientOp::Write(post) => Frame::WriteQ {
                req,
                key,
                author: post.id.author.0,
                seq: post.id.seq,
                client_ts_nanos: post.client_ts.as_nanos(),
                content: post.content,
            },
            ClientOp::Read => Frame::ReadQ { req, key },
            ClientOp::Inspect => {
                return Err(EndpointError("inspect is not part of the wire protocol".into()));
            }
        };
        match self.roundtrip(request)? {
            Frame::WriteQAck { req: got, id } if got == req => {
                Ok(OpResult::WriteAck(PostId::from_u64(id)))
            }
            Frame::ReadQOk { req: got, ids } if got == req => {
                Ok(OpResult::ReadOk(ids.into_iter().map(PostId::from_u64).collect()))
            }
            Frame::WriteQAck { req: got, .. } | Frame::ReadQOk { req: got, .. } => Err(
                EndpointError(format!("request id mismatch: sent {req}, response echoes {got}")),
            ),
            other => Err(EndpointError(format!("unexpected response frame {other:?}"))),
        }
    }

    /// Asks the server to begin a graceful drain; returns once the server
    /// acknowledged.
    pub fn stop_server(&mut self) -> Result<(), EndpointError> {
        match self.roundtrip(Frame::Stop)? {
            Frame::StopAck => Ok(()),
            other => Err(EndpointError(format!("expected stop_ack, got {other:?}"))),
        }
    }
}

impl ServiceEndpoint for WireClient {
    fn call(&mut self, op: ClientOp) -> Result<OpResult, EndpointError> {
        if let Some(key) = self.key {
            return self.call_keyed(key, op);
        }
        let request = match op {
            ClientOp::Write(post) => Frame::Write {
                author: post.id.author.0,
                seq: post.id.seq,
                client_ts_nanos: post.client_ts.as_nanos(),
                content: post.content,
            },
            ClientOp::Read => Frame::Read,
            ClientOp::Inspect => {
                // Replica introspection is a white-box, sim-only facility.
                return Err(EndpointError("inspect is not part of the wire protocol".into()));
            }
        };
        match self.roundtrip(request)? {
            Frame::WriteAck { id } => Ok(OpResult::WriteAck(PostId::from_u64(id))),
            Frame::ReadOk { ids } => {
                Ok(OpResult::ReadOk(ids.into_iter().map(PostId::from_u64).collect()))
            }
            Frame::Throttled => Ok(OpResult::Throttled),
            other => Err(EndpointError(format!("unexpected response frame {other:?}"))),
        }
    }

    fn server_clock(&mut self) -> Result<i64, EndpointError> {
        self.hello()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// A miniature `cpw1` responder for exercising the reconnect path:
    /// accepts up to `conns` connections, *drops every `drop_every`-th
    /// one at accept* (the flaky half), and closes every surviving
    /// connection after serving `frames_per_conn` frames (so each
    /// operation beyond the handshake forces a reconnect). Returns the
    /// number of frames served.
    fn flaky_listener(
        drop_every: u64,
        frames_per_conn: u64,
        conns: u64,
    ) -> (SocketAddr, std::thread::JoinHandle<u64>, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut accepted = 0u64;
            let mut served = 0u64;
            while accepted < conns {
                let (mut stream, _) = match listener.accept() {
                    Ok(conn) => conn,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    Err(_) => break,
                };
                stream.set_nonblocking(false).expect("blocking conn");
                accepted += 1;
                if drop_every > 0 && accepted.is_multiple_of(drop_every) {
                    continue; // flaky: close the fresh connection unserved
                }
                let _ = stream.set_nodelay(true);
                let mut buf = Vec::new();
                let mut scratch = [0u8; 4096];
                let mut frames = 0u64;
                'conn: while frames < frames_per_conn {
                    loop {
                        match decode(&buf) {
                            Ok(Some((frame, consumed))) => {
                                buf.drain(..consumed);
                                frames += 1;
                                served += 1;
                                let reply = match frame {
                                    Frame::Hello { .. } => Frame::HelloAck {
                                        proto: PROTO_VERSION,
                                        server_clock_nanos: 1,
                                        service: "blogger".into(),
                                    },
                                    Frame::Write { author, seq, .. } => Frame::WriteAck {
                                        id: PostId::new(conprobe_store::AuthorId(author), seq)
                                            .as_u64(),
                                    },
                                    Frame::Read => Frame::ReadOk { ids: Vec::new() },
                                    Frame::Stop => Frame::StopAck,
                                    _ => break 'conn,
                                };
                                if stream.write_all(&reply.encode()).is_err() {
                                    break 'conn;
                                }
                                if frames >= frames_per_conn {
                                    break 'conn;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => break 'conn,
                        }
                    }
                    match stream.read(&mut scratch) {
                        Ok(0) => break,
                        Ok(n) => buf.extend_from_slice(&scratch[..n]),
                        Err(_) => break,
                    }
                }
            }
            served
        });
        (addr, handle, stop)
    }

    fn quick_policy() -> ReconnectPolicy {
        ReconnectPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            seed: 42,
        }
    }

    #[test]
    fn reconnect_rides_out_dropped_connections_and_resends_in_flight_ops() {
        // Every connection serves the handshake plus exactly one
        // operation, and every second dial is dropped unserved: every op
        // after the first needs at least one reconnect, half of which
        // fail and must be retried under the backoff budget.
        let (addr, server, stop) = flaky_listener(2, 2, 40);
        let mut client =
            WireClient::connect_with_policy(addr, Duration::from_secs(2), quick_policy())
                .expect("initial connect");
        assert_eq!(client.service(), "blogger");
        for i in 0..5u32 {
            match client.call(ClientOp::Read).expect("read survives the flaky listener") {
                OpResult::ReadOk(ids) => assert!(ids.is_empty(), "op {i}"),
                other => panic!("expected ReadOk, got {other:?}"),
            }
        }
        assert!(
            client.reconnects() >= 5,
            "every post-handshake op forced at least one reconnect, got {}",
            client.reconnects()
        );
        assert_eq!(client.service(), "blogger", "the re-handshake refreshes the token");
        drop(client);
        stop.store(true, Ordering::Release);
        let served = server.join().expect("listener thread");
        assert!(served >= 10, "handshakes + ops were served across incarnations: {served}");
    }

    #[test]
    fn without_a_policy_the_first_drop_is_fatal() {
        // One connection, handshake only: the first call hits EOF and
        // the policy-free client reports it without re-dialing.
        let (addr, server, _stop) = flaky_listener(0, 1, 1);
        let mut client = WireClient::connect(addr, Duration::from_secs(2)).expect("connect");
        let err = client.call(ClientOp::Read).expect_err("no reconnect without a policy");
        assert!(!err.0.contains("giving up"), "no budget language on the fast path: {}", err.0);
        assert_eq!(client.reconnects(), 0);
        let _ = server.join();
    }

    #[test]
    fn exhausted_reconnect_budget_reports_the_attempts() {
        // One good connection, then the listener goes away for good: the
        // next op burns the whole budget against a dead address.
        let (addr, server, _stop) = flaky_listener(0, 2, 1);
        let mut client =
            WireClient::connect_with_policy(addr, Duration::from_secs(2), quick_policy())
                .expect("connect");
        client.call(ClientOp::Read).expect("first op served");
        let _ = server.join(); // listener closed: further dials are refused
        let err = client.call(ClientOp::Read).expect_err("budget must run out");
        assert!(err.0.contains("giving up after 4 reconnect attempt(s)"), "{}", err.0);
    }

    /// Sheds the first `sheds` dials with a `busy` frame (5 ms hint) and
    /// an immediate close — the server's load-shedding behaviour — then
    /// serves one connection normally for `frames` frames.
    fn shedding_listener(sheds: u32, frames: u64) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            for _ in 0..sheds {
                let (mut conn, _) = listener.accept().expect("accept to shed");
                let _ = conn.write_all(&Frame::Busy { retry_after_millis: 5 }.encode());
                let _ = conn.flush();
            }
            let (mut conn, _) = listener.accept().expect("accept to serve");
            let mut buf = Vec::new();
            let mut scratch = [0u8; 4096];
            let mut served = 0u64;
            while served < frames {
                match decode(&buf) {
                    Ok(Some((frame, consumed))) => {
                        buf.drain(..consumed);
                        served += 1;
                        let reply = match frame {
                            Frame::Hello { .. } => Frame::HelloAck {
                                proto: PROTO_VERSION,
                                server_clock_nanos: 1,
                                service: "blogger".into(),
                            },
                            Frame::Read => Frame::ReadOk { ids: Vec::new() },
                            _ => return,
                        };
                        if conn.write_all(&reply.encode()).is_err() {
                            return;
                        }
                    }
                    Ok(None) => match conn.read(&mut scratch) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&scratch[..n]),
                    },
                    Err(_) => return,
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn busy_shed_is_retryable_and_honours_the_wait_hint() {
        let (addr, server) = shedding_listener(2, 2);
        let started = std::time::Instant::now();
        let mut client =
            WireClient::connect_with_policy(addr, Duration::from_secs(2), quick_policy())
                .expect("the policy rides out the busy sheds");
        assert_eq!(client.busy_sheds(), 2, "both sheds were observed");
        assert!(
            started.elapsed() >= Duration::from_millis(10),
            "each reconnect waited at least the 5ms busy hint: {:?}",
            started.elapsed()
        );
        match client.call(ClientOp::Read).expect("post-shed op") {
            OpResult::ReadOk(ids) => assert!(ids.is_empty()),
            other => panic!("expected ReadOk, got {other:?}"),
        }
        drop(client);
        server.join().expect("listener thread");
    }

    #[test]
    fn busy_shed_without_a_policy_is_fatal() {
        let (addr, server) = shedding_listener(1, 0);
        let err = match WireClient::connect(addr, Duration::from_secs(2)) {
            Ok(_) => panic!("no retry budget, the shed is the caller's problem"),
            Err(e) => e,
        };
        assert!(err.0.contains("server busy: retry after 5ms"), "{}", err.0);
        drop(server); // the serving accept never happens; don't join
    }

    #[test]
    fn backoff_is_capped_and_jittered() {
        let policy = ReconnectPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            seed: 7,
        };
        let mut rng = SimRng::new(7).split("test");
        for attempt in 0..8 {
            let d = policy.backoff(attempt, &mut rng);
            let uncapped = policy.base_delay * 2u32.pow(attempt);
            let cap = uncapped.min(policy.max_delay);
            assert!(d >= cap.mul_f64(0.5), "attempt {attempt}: {d:?} under jitter floor");
            assert!(d <= cap, "attempt {attempt}: {d:?} over the cap");
        }
        // The jitter stream is seeded: same seed, same delays.
        let once: Vec<Duration> = {
            let mut rng = SimRng::new(9).split("t");
            (0..4).map(|a| policy.backoff(a, &mut rng)).collect()
        };
        let again: Vec<Duration> = {
            let mut rng = SimRng::new(9).split("t");
            (0..4).map(|a| policy.backoff(a, &mut rng)).collect()
        };
        assert_eq!(once, again);
    }
}
