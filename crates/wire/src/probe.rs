//! Live probe agents: the paper's measurement methodology over real
//! sockets.
//!
//! [`run_probe`] runs one test instance (Test 1 or Test 2, the same
//! designs `harness::runner` executes in simulation) against remote
//! `cpw1` endpoints:
//!
//! 1. each agent thread keeps a *deliberately skewed* local clock — a
//!    seeded constant offset on the process monotonic clock, emulating
//!    the paper's NTP-disabled VMs (and letting us score the estimator
//!    against known ground truth);
//! 2. each agent runs `hello` clock probes and feeds the samples to the
//!    unmodified [`clocksync`](conprobe_harness::clocksync) estimator —
//!    Cristian's method over real RTTs;
//! 3. agents start at one agreed *server-timeline* instant (each sleeps
//!    until its own skewed clock reaches the mapped deadline — exactly
//!    the coordinator's synchronized-start trick);
//! 4. the read/write cadence of the chosen test design runs against the
//!    [`ServiceEndpoint`](conprobe_harness::transport::ServiceEndpoint),
//!    logging local invoke/response times;
//! 5. records are mapped onto the server timeline via the estimated
//!    deltas and merged into a standard
//!    [`TestTrace`](conprobe_core::TestTrace) — which then flows through
//!    the *unmodified* `analyze()` checkers, journal, metrics and report
//!    pipeline.
//!
//! The output is a full [`TestResult`], so campaign-side machinery
//! (journaling, `--resume`, anomaly tables) works on live traces
//! untouched.

use crate::client::{ReconnectPolicy, WireClient};
use conprobe_core::trace::{AgentId, OpRecord, Timestamp};
use conprobe_core::{analyze, trace::OpKind, TestTrace};
use conprobe_harness::clocksync::{estimate, ProbeSample};
use conprobe_harness::coordinator::AgentHealth;
use conprobe_harness::proto::{test1_post, LocalOpRecord, TestKind};
use conprobe_harness::runner::{checker_config_for, FaultLedger, TestConfig, TestResult};
use conprobe_harness::transport::{EndpointError, ServiceEndpoint};
use conprobe_services::{ClientOp, OpResult, ServiceKind};
use conprobe_sim::net::Region;
use conprobe_sim::{LocalTime, NodeId, SimRng};
use conprobe_store::{Post, PostId};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

/// Configuration for one live probe instance.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// The service the server claims to host (verified on connect).
    pub service: ServiceKind,
    /// Test design to run.
    pub kind: TestKind,
    /// One `(region, address)` endpoint per agent, in agent-index order.
    pub endpoints: Vec<(Region, SocketAddr)>,
    /// Background read period.
    pub read_period: Duration,
    /// Test 2: reads at `read_period` before switching to `slow_period`.
    pub fast_reads: u32,
    /// Test 2: read period after the fast phase.
    pub slow_period: Duration,
    /// Test 2: reads after which an agent is complete.
    pub reads_target: u32,
    /// Clock probes per agent before the test.
    pub probes_per_agent: u32,
    /// Delay between the clock-sync phase and the synchronized start.
    pub start_margin: Duration,
    /// Hard per-agent cap on the measurement phase.
    pub max_duration: Duration,
    /// Seed for the agents' artificial clock offsets.
    pub seed: u64,
    /// Per-call socket timeout.
    pub timeout: Duration,
    /// Keyspace key the probe's reads and writes address. `None` speaks
    /// the legacy un-keyed frames (key 0 server-side); `Some(k)` routes
    /// every operation through the sharded `read_q`/`write_q` frames.
    /// Each key is one isolated logical object, so a keyed probe
    /// measures exactly the per-object semantics the paper's tests
    /// define — the shard map changes *where* the object lives, never
    /// what the analysis sees.
    pub key: Option<u32>,
}

impl ProbeConfig {
    /// A cadence scaled for fast loopback runs: the paper's schedule
    /// shape with millisecond periods, so a full instance takes a couple
    /// of seconds instead of minutes.
    pub fn loopback(
        service: ServiceKind,
        kind: TestKind,
        endpoints: Vec<(Region, SocketAddr)>,
        seed: u64,
    ) -> Self {
        ProbeConfig {
            service,
            kind,
            endpoints,
            read_period: Duration::from_millis(30),
            fast_reads: 15,
            slow_period: Duration::from_millis(60),
            reads_target: 30,
            probes_per_agent: 5,
            start_margin: Duration::from_millis(300),
            max_duration: Duration::from_secs(30),
            seed,
            timeout: Duration::from_secs(5),
            key: None,
        }
    }
}

/// A skewed agent clock: process-monotonic nanoseconds plus a constant
/// seeded offset. Constant offsets keep `response ≥ invoke` intact under
/// the per-agent delta correction, so merged traces are always
/// well-formed.
struct AgentClock {
    epoch: Instant,
    offset_nanos: i64,
}

impl AgentClock {
    fn now(&self) -> LocalTime {
        LocalTime::from_nanos(self.epoch.elapsed().as_nanos() as i64 + self.offset_nanos)
    }

    /// Sleeps until the local clock reaches `deadline`.
    fn sleep_until(&self, deadline: LocalTime) {
        loop {
            let remaining = deadline.delta_nanos(self.now());
            if remaining <= 0 {
                return;
            }
            std::thread::sleep(Duration::from_nanos(remaining.min(5_000_000) as u64));
        }
    }
}

struct AgentOutput {
    records: Vec<LocalOpRecord>,
    delta_nanos: i64,
    uncertainty_nanos: i64,
    /// `|estimated − true|`: ground truth is known because the offsets
    /// are ours.
    clock_error_nanos: i64,
    reads: u32,
    writes: u32,
    completed: bool,
    /// The connection died past the reconnect budget (or never came up):
    /// the agent is quarantined and whatever records it logged before
    /// the failure are salvaged into the merged trace.
    error: Option<String>,
}

impl AgentOutput {
    /// An agent that produced nothing before failing.
    fn failed(error: String) -> Self {
        AgentOutput {
            records: Vec::new(),
            delta_nanos: 0,
            uncertainty_nanos: 0,
            clock_error_nanos: 0,
            reads: 0,
            writes: 0,
            completed: false,
            error: Some(error),
        }
    }
}

fn map_records(records: &[LocalOpRecord], agent: u32, delta_nanos: i64) -> Vec<OpRecord<PostId>> {
    records
        .iter()
        .map(|r| OpRecord {
            agent: AgentId(agent),
            invoke: Timestamp::from_nanos(r.invoke.as_nanos() + delta_nanos),
            response: Timestamp::from_nanos(r.response.as_nanos() + delta_nanos),
            kind: r.kind.clone(),
        })
        .collect()
}

/// One event on a probe's live tap (see [`run_probe_with_live`]).
#[derive(Debug, Clone)]
pub enum LiveEvent {
    /// An operation just finished, already mapped onto the server
    /// timeline with the agent's estimated clock delta — the same
    /// record the merged trace will contain.
    Op(OpRecord<PostId>),
    /// This agent's stream is over (it completed, hit the deadline, or
    /// was quarantined); it will send no further [`LiveEvent::Op`]s.
    Done(u32),
}

/// Sends every record in `records[*sent..]` down the live tap (mapped
/// onto the server timeline) and advances the cursor. A dropped
/// receiver silently disables the tap: monitoring must never fail a
/// measurement.
fn flush_live(
    live: &Option<std::sync::mpsc::Sender<LiveEvent>>,
    agent: u32,
    delta_nanos: i64,
    records: &[LocalOpRecord],
    sent: &mut usize,
) {
    if let Some(tx) = live {
        for op in map_records(&records[*sent..], agent, delta_nanos) {
            let _ = tx.send(LiveEvent::Op(op));
        }
    }
    *sent = records.len();
}

/// Runs one live probe instance end to end. Returns a full
/// [`TestResult`] whose trace, analysis and journal serialization are
/// indistinguishable from a simulated run's.
///
/// A dead agent connection (past the reconnect budget) does not abort
/// the study: the agent is quarantined in `agent_health`, its partial
/// record log is salvaged into the merged trace, and the result is
/// marked `salvaged`. Only when *every* agent fails is the instance an
/// error.
pub fn run_probe(config: &ProbeConfig) -> Result<TestResult, EndpointError> {
    run_probe_with_live(config, None)
}

/// [`run_probe`] with an optional live tap: every finished operation is
/// also sent down `live` as a [`LiveEvent::Op`] the moment it responds
/// (already on the server timeline), followed by one
/// [`LiveEvent::Done`] per agent. Each agent's own events arrive in
/// invoke order; a monitor merging the per-agent streams by
/// `(invoke, response)` reconstructs the trace order `analyze()` sees,
/// so it can feed a [`StreamingAnalyzer`](conprobe_core::stream) for a
/// running anomaly readout. The tap is observe-only: the returned
/// result is byte-identical with or without it, and a dropped receiver
/// just stops the feed.
pub fn run_probe_with_live(
    config: &ProbeConfig,
    live: Option<std::sync::mpsc::Sender<LiveEvent>>,
) -> Result<TestResult, EndpointError> {
    let total = config.endpoints.len() as u32;
    assert!(total > 0, "probe needs at least one endpoint");
    let epoch = Instant::now();
    let began = Instant::now();
    let sync_barrier = Arc::new(Barrier::new(config.endpoints.len()));
    let start_at_server: Arc<OnceLock<i64>> = Arc::new(OnceLock::new());
    let completions = Arc::new(AtomicU32::new(0));
    let abandoned = Arc::new(AtomicU32::new(0));

    let mut threads = Vec::new();
    for (i, (_region, addr)) in config.endpoints.iter().enumerate() {
        let config = config.clone();
        let addr = *addr;
        let sync_barrier = Arc::clone(&sync_barrier);
        let start_at_server = Arc::clone(&start_at_server);
        let completions = Arc::clone(&completions);
        let abandoned = Arc::clone(&abandoned);
        let live = live.clone();
        threads.push(std::thread::spawn(move || {
            agent_main(
                &config,
                i as u32,
                total,
                addr,
                epoch,
                &sync_barrier,
                &start_at_server,
                &completions,
                &abandoned,
                live,
            )
        }));
    }
    // The agents hold the only remaining senders: the tap closes when
    // the last agent finishes.
    drop(live);

    let mut outputs = Vec::new();
    for t in threads {
        // Agent threads catch their own I/O failures; a panic would be
        // a bug, but even then the study salvages what the others
        // produced instead of unwinding.
        let out = t.join().unwrap_or_else(|_| AgentOutput::failed("probe agent panicked".into()));
        outputs.push(out);
    }

    if outputs.iter().all(|o| o.error.is_some()) {
        let first = outputs.iter().find_map(|o| o.error.as_deref()).unwrap_or("unknown failure");
        return Err(EndpointError(format!("all {total} probe agent(s) failed: {first}")));
    }
    let salvaged = outputs.iter().any(|o| o.error.is_some());

    // Merge onto the server timeline — the live analogue of the
    // coordinator's delta correction.
    let mut ops = Vec::new();
    for (i, out) in outputs.iter().enumerate() {
        ops.extend(map_records(&out.records, i as u32, out.delta_nanos));
    }
    let trace = TestTrace::new(ops);

    // The checkers read the test design (trigger pairs, windows) from a
    // TestConfig; only `kind` and the agent count matter.
    let mut analysis_config = TestConfig::paper(config.service, config.kind);
    analysis_config.agent_regions = config.endpoints.iter().map(|(r, _)| *r).collect();
    let analysis = analyze(&trace, &checker_config_for(&analysis_config));

    let entries: Vec<NodeId> = config
        .endpoints
        .iter()
        .map(|(r, _)| NodeId(cluster_entry_index(config.service, *r)))
        .collect();
    Ok(TestResult {
        analysis,
        trace,
        completed: outputs.iter().all(|o| o.completed),
        reads_per_agent: outputs.iter().map(|o| o.reads).collect(),
        writes_total: outputs.iter().map(|o| o.writes).sum(),
        duration_secs: began.elapsed().as_secs_f64(),
        partitioned: false,
        clock_error_nanos: outputs.iter().map(|o| o.clock_error_nanos).collect(),
        clock_uncertainty_nanos: outputs.iter().map(|o| o.uncertainty_nanos).collect(),
        agent_regions: config.endpoints.iter().map(|(r, _)| *r).collect(),
        whitebox: None,
        fault_ledger: FaultLedger::default(),
        agent_health: outputs
            .iter()
            .enumerate()
            .map(|(i, o)| AgentHealth {
                agent_index: i as u32,
                heartbeats: u64::from(o.reads),
                quarantined: o.error.is_some(),
                log_collected: o.error.is_none() || !o.records.is_empty(),
            })
            .collect(),
        salvaged,
        seed: config.seed,
        sim_events: 0,
        service: config.service,
        agent_entries: entries,
    })
}

/// Issues one operation over the endpoint, logging it (with local
/// invoke/response times) exactly as the sim agent logs its operations.
/// Returns the read sequence for reads, `None` otherwise. A `Throttled`
/// result is a skipped, unlogged operation — the live catalog services
/// don't rate-limit, but the protocol allows it.
fn do_op(
    client: &mut WireClient,
    clock: &AgentClock,
    records: &mut Vec<LocalOpRecord>,
    op: ClientOp,
) -> Result<Option<Vec<PostId>>, EndpointError> {
    let invoke = clock.now();
    let result = client.call(op)?;
    let response = clock.now();
    match result {
        OpResult::WriteAck(id) => {
            records.push(LocalOpRecord { invoke, response, kind: OpKind::Write { id } });
            Ok(None)
        }
        OpResult::ReadOk(seq) => {
            records.push(LocalOpRecord {
                invoke,
                response,
                kind: OpKind::Read { seq: seq.clone() },
            });
            Ok(Some(seq))
        }
        OpResult::Throttled => Ok(None),
    }
}

/// Writes this agent's next post (ids follow the paper's
/// `M(2·agent+seq)` naming via [`test1_post`]).
fn write_next(
    client: &mut WireClient,
    clock: &AgentClock,
    records: &mut Vec<LocalOpRecord>,
    agent_index: u32,
    next_write_seq: &mut u32,
    writes: &mut u32,
) -> Result<(), EndpointError> {
    let id = test1_post(agent_index, *next_write_seq);
    *next_write_seq += 1;
    *writes += 1;
    let post = Post::new(id, format!("post {id}"), clock.now());
    do_op(client, clock, records, ClientOp::Write(post)).map(|_| ())
}

/// The replica index `region` routes to in `service`'s catalog topology —
/// the live stand-in for the sim's front-door node id, reported so the
/// same-entry/remote-visibility classification stays meaningful.
fn cluster_entry_index(service: ServiceKind, region: Region) -> usize {
    conprobe_services::catalog::topology(service).affinity.replica_for(region)
}

/// Connect, verify the hosted service and run the Cristian clock-sync
/// phase — everything that can fail *before* the synchronized start.
fn agent_setup(
    config: &ProbeConfig,
    addr: SocketAddr,
    clock: &AgentClock,
    offset_nanos: i64,
) -> Result<(WireClient, i64, i64, i64), EndpointError> {
    // Transient connection drops ride out on the capped-backoff
    // reconnect budget; only a persistently dead endpoint fails the
    // agent (and then the study quarantines it rather than aborting).
    let mut client = WireClient::connect_with_policy(
        addr,
        config.timeout,
        ReconnectPolicy::probe_default(config.seed),
    )?;
    let expected = conprobe_harness::journal::service_token(config.service);
    if client.service() != expected {
        return Err(EndpointError(format!(
            "server hosts '{}', probe expected '{expected}'",
            client.service()
        )));
    }
    // Keyed probes address one sharded keyspace key for every
    // read/write; clock-sync hellos are key-less either way.
    client.set_key(config.key);

    // Clock sync: Cristian probes over the real wire.
    let mut samples = Vec::new();
    for _ in 0..config.probes_per_agent.max(1) {
        let sent = clock.now();
        let reading = client.server_clock()?;
        let received = clock.now();
        samples.push(ProbeSample { sent, received, agent_reading: LocalTime::from_nanos(reading) });
    }
    // `agent_reading` is the *server's* clock here, so the estimate is
    // `server − agent_local`: add it to a local time to land on the
    // server timeline.
    let est = estimate(&samples);
    // Ground truth: local = mono + offset and the server clock *is* mono
    // (same host epoch difference is absorbed into the estimate when
    // hosts differ), so the true delta is `server_epoch_shift − offset`;
    // on one host the shift is the tiny interval between the two
    // `Instant::now()` calls — call it zero and score the estimator.
    let clock_error_nanos = (est.delta_nanos + offset_nanos).abs();
    Ok((client, est.delta_nanos, est.uncertainty_nanos, clock_error_nanos))
}

#[allow(clippy::too_many_arguments)]
fn agent_main(
    config: &ProbeConfig,
    agent_index: u32,
    total: u32,
    addr: SocketAddr,
    epoch: Instant,
    sync_barrier: &Barrier,
    start_at_server: &OnceLock<i64>,
    completions: &AtomicU32,
    abandoned: &AtomicU32,
    live: Option<std::sync::mpsc::Sender<LiveEvent>>,
) -> AgentOutput {
    // The paper's NTP-disabled clocks: ±2 s seeded offsets, per agent.
    let mut rng =
        SimRng::new(config.seed).split_indexed("wire.agent.clock", u64::from(agent_index));
    let offset_nanos = rng.gen_range(-2_000_000_000_i64..2_000_000_000);
    let clock = AgentClock { epoch, offset_nanos };

    let (mut client, delta_nanos, uncertainty_nanos, clock_error_nanos) =
        match agent_setup(config, addr, &clock, offset_nanos) {
            Ok(v) => v,
            Err(e) => {
                // The barrier MUST still be crossed, or every healthy
                // agent deadlocks waiting for the synchronized start.
                abandoned.fetch_add(1, Ordering::AcqRel);
                sync_barrier.wait();
                if let Some(tx) = &live {
                    let _ = tx.send(LiveEvent::Done(agent_index));
                }
                return AgentOutput::failed(e.0);
            }
        };

    // Synchronized start: the first agent past the barrier publishes one
    // server-timeline start instant; everyone maps it into their own
    // skewed clock and sleeps.
    sync_barrier.wait();
    let start_server = *start_at_server.get_or_init(|| {
        clock.now().as_nanos() + delta_nanos + config.start_margin.as_nanos() as i64
    });
    let start_local = LocalTime::from_nanos(start_server - delta_nanos);
    clock.sleep_until(start_local);

    // The measurement phase: the sim agent's cadence, blocking. I/O
    // errors break out of the cadence instead of unwinding the study —
    // whatever was recorded up to the failure is the salvageable part
    // of this agent's trace.
    let deadline = start_local.offset_by(config.max_duration.as_nanos() as i64);
    let mut records: Vec<LocalOpRecord> = Vec::new();
    let mut reads = 0u32;
    let mut writes = 0u32;
    let mut next_write_seq = 1u32;
    let mut triggered = agent_index == 0; // agent 0 needs no trigger
    let mut completed = false;
    let mut live_sent = 0usize;

    let outcome = (|| -> Result<(), EndpointError> {
        let mut next_read = clock.now();

        // Test 1: agent 0 writes both messages at the start (second as
        // soon as the first acked — which a blocking call gives us for
        // free). Test 2: every agent writes once at the start.
        match config.kind {
            TestKind::Test1 => {
                if agent_index == 0 {
                    for _ in 0..2 {
                        write_next(
                            &mut client,
                            &clock,
                            &mut records,
                            agent_index,
                            &mut next_write_seq,
                            &mut writes,
                        )?;
                    }
                }
            }
            TestKind::Test2 => {
                write_next(
                    &mut client,
                    &clock,
                    &mut records,
                    agent_index,
                    &mut next_write_seq,
                    &mut writes,
                )?;
            }
        }
        flush_live(&live, agent_index, delta_nanos, &records, &mut live_sent);

        loop {
            if clock.now() >= deadline {
                break;
            }
            clock.sleep_until(next_read);
            let seq = do_op(&mut client, &clock, &mut records, ClientOp::Read)?.unwrap_or_default();
            reads += 1;
            match config.kind {
                TestKind::Test1 => {
                    if !triggered && seq.contains(&test1_post(agent_index - 1, 2)) {
                        triggered = true;
                        for _ in 0..2 {
                            write_next(
                                &mut client,
                                &clock,
                                &mut records,
                                agent_index,
                                &mut next_write_seq,
                                &mut writes,
                            )?;
                        }
                    }
                    if !completed && seq.contains(&test1_post(total - 1, 2)) {
                        completed = true;
                        completions.fetch_add(1, Ordering::AcqRel);
                    }
                    // Keep reading until everyone has either seen the
                    // last write or been written off — the coordinator's
                    // Stop, decentralized. Counting the abandoned keeps
                    // the healthy agents from spinning until the hard
                    // deadline when a sibling's connection dies.
                    if completions.load(Ordering::Acquire) + abandoned.load(Ordering::Acquire)
                        >= total
                    {
                        break;
                    }
                    next_read = next_read.offset_by(config.read_period.as_nanos() as i64);
                }
                TestKind::Test2 => {
                    if reads >= config.reads_target {
                        completed = true;
                        break;
                    }
                    let period = if reads < config.fast_reads {
                        config.read_period
                    } else {
                        config.slow_period
                    };
                    next_read = next_read.offset_by(period.as_nanos() as i64);
                }
            }
            flush_live(&live, agent_index, delta_nanos, &records, &mut live_sent);
        }
        Ok(())
    })();

    // Whatever the loop's exit path left unsent (break-outs, errors).
    flush_live(&live, agent_index, delta_nanos, &records, &mut live_sent);
    if let Some(tx) = &live {
        let _ = tx.send(LiveEvent::Done(agent_index));
    }

    let error = outcome.err().map(|e| e.0);
    if error.is_some() && !completed {
        // A completed agent already counts toward the decentralized
        // stop; counting it again would let Test 1 stop one sighting
        // early.
        abandoned.fetch_add(1, Ordering::AcqRel);
    }

    AgentOutput {
        records,
        delta_nanos,
        uncertainty_nanos,
        clock_error_nanos,
        reads,
        writes,
        completed,
        error,
    }
}
