//! `conprobe chaosd` — a deterministic fault-injecting TCP interposer.
//!
//! The sim executes a [`FaultPlan`] by perturbing virtual messages; this
//! module executes the *same plan* against real sockets, so the live
//! probe path can be characterized under the faults the paper's
//! measured outages imply. A [`ChaosProxy`] binds one listener per
//! [`ChaosTarget`] and forwards traffic to the real replica listener,
//! judging every complete `cpw1` frame against the plan's compiled
//! [`LinkEffect`] windows at the wall-clock offset since proxy start:
//!
//! * [`EffectKind::Block`] windows blackhole the frame (both directions
//!   are judged, so a partition is symmetric);
//! * [`EffectKind::Loss`] drops it with the window's probability;
//! * [`EffectKind::ExtraDelay`] holds it for `base + Exp(jitter)`,
//!   releasing FIFO so delay never reorders a connection's stream.
//!
//! On top of the plan, an [`InjectProfile`] adds byte-level adversity
//! that no plan window models: seeded single-bit corruption (the
//! FNV-checksummed decoder must reject it with a typed error), abrupt
//! connection resets, and slow-loris trickle (a frame split into tiny
//! spaced chunks, exercising the server's stall budget).
//!
//! Everything random comes from [`SimRng`] streams split per target and
//! per accepted connection, so a sweep with the same seed injects the
//! same faults at the same frames — the property the repro workflow
//! depends on.
//!
//! Bytes that do not parse as frames (a client speaking garbage) are
//! forwarded verbatim: the interposer degrades to a transparent pipe
//! rather than guessing at alignment, and the endpoint's own decoder
//! produces the typed rejection.
//!
//! [`drive_service_actions`] is the other half of plan execution: it
//! replays the plan's compiled [`ServiceAction`] timeline against a
//! running [`WireServer`] — crash, state-transfer rejoin, brownout —
//! narrating each transition for the CI greps.

use crate::frame::decode_raw;
use crate::server::WireServer;
use conprobe_sim::faults::{EffectKind, FaultPlan, LinkEffect, ServiceAction, ServiceActionKind};
use conprobe_sim::net::Region;
use conprobe_sim::{SimRng, SimTime};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// One proxied listener: clients in `region` connect to the proxy's
/// listener and reach the replica listener at `addr` (whose replica
/// lives in `replica_region`). The plan's link windows are judged
/// against the `region ↔ replica_region` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosTarget {
    /// The client-side region of the proxied link.
    pub region: Region,
    /// The region hosting the replica behind `addr`.
    pub replica_region: Region,
    /// The real replica listener to forward to.
    pub addr: SocketAddr,
}

/// Byte-level adversity injected on top of the plan's link windows.
///
/// The default profile is fully transparent (all probabilities zero);
/// each probability is sampled independently per forwarded frame from
/// the connection's seeded stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectProfile {
    /// Probability of flipping one random bit in a forwarded frame.
    pub corrupt_prob: f64,
    /// Probability of tearing the connection down (both directions)
    /// instead of forwarding the frame.
    pub reset_prob: f64,
    /// Probability of trickling the frame out in `trickle_chunk`-byte
    /// pieces spaced `trickle_gap` apart (slow-loris).
    pub trickle_prob: f64,
    /// Chunk size for trickled frames (clamped to ≥ 1).
    pub trickle_chunk: usize,
    /// Gap between consecutive trickled chunks.
    pub trickle_gap: Duration,
}

impl Default for InjectProfile {
    fn default() -> Self {
        InjectProfile {
            corrupt_prob: 0.0,
            reset_prob: 0.0,
            trickle_prob: 0.0,
            trickle_chunk: 5,
            trickle_gap: Duration::from_millis(1),
        }
    }
}

/// Configuration for [`ChaosProxy::start`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed for every injection stream.
    pub seed: u64,
    /// The fault timeline; its clock starts when the proxy starts.
    pub plan: FaultPlan,
    /// Byte-level injection on top of the plan.
    pub inject: InjectProfile,
    /// Base TCP port; target `i` listens on `base_port + i`. `0` picks
    /// ephemeral ports.
    pub base_port: u16,
}

/// What the interposer did to the traffic, summed over all targets and
/// connections — the deterministic receipt of a chaos run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosLedger {
    /// Frames forwarded upstream/downstream (including corrupted and
    /// trickled ones).
    pub forwarded: u64,
    /// Frames blackholed by a [`EffectKind::Block`] window.
    pub blocked: u64,
    /// Frames dropped by a [`EffectKind::Loss`] sample.
    pub dropped: u64,
    /// Frames that picked up [`EffectKind::ExtraDelay`].
    pub delayed: u64,
    /// Frames with an injected bit flip.
    pub corrupted: u64,
    /// Connections torn down by an injected reset.
    pub resets: u64,
    /// Frames released as slow-loris chunk trains.
    pub trickled: u64,
}

#[derive(Default)]
struct LedgerCells {
    forwarded: AtomicU64,
    blocked: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
    corrupted: AtomicU64,
    resets: AtomicU64,
    trickled: AtomicU64,
}

impl LedgerCells {
    fn snapshot(&self) -> ChaosLedger {
        ChaosLedger {
            forwarded: self.forwarded.load(Ordering::Acquire),
            blocked: self.blocked.load(Ordering::Acquire),
            dropped: self.dropped.load(Ordering::Acquire),
            delayed: self.delayed.load(Ordering::Acquire),
            corrupted: self.corrupted.load(Ordering::Acquire),
            resets: self.resets.load(Ordering::Acquire),
            trickled: self.trickled.load(Ordering::Acquire),
        }
    }
}

/// Everything a pump thread needs, shared per target.
struct TargetCtx {
    target: ChaosTarget,
    target_rng: SimRng,
    conn_seq: AtomicU64,
    effects: Arc<Vec<LinkEffect>>,
    inject: InjectProfile,
    epoch: Instant,
    cells: Arc<LedgerCells>,
    stop: Arc<AtomicBool>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// The running interposer: one proxy listener per target, pump threads
/// per accepted connection, a shared fault ledger.
pub struct ChaosProxy {
    addrs: Vec<(Region, SocketAddr)>,
    stop: Arc<AtomicBool>,
    accepters: Vec<JoinHandle<()>>,
    cells: Arc<LedgerCells>,
}

impl ChaosProxy {
    /// Binds one proxy listener per target and starts forwarding.
    ///
    /// The plan's timeline starts *now*: a window at `t+4s` opens four
    /// wall-clock seconds after this call returns.
    pub fn start(config: &ChaosConfig, targets: &[ChaosTarget]) -> io::Result<ChaosProxy> {
        let effects = Arc::new(config.plan.network_effects());
        let cells = Arc::new(LedgerCells::default());
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let root = SimRng::new(config.seed);
        let mut addrs = Vec::with_capacity(targets.len());
        let mut accepters = Vec::with_capacity(targets.len());
        for (i, target) in targets.iter().enumerate() {
            let port = if config.base_port == 0 { 0 } else { config.base_port + i as u16 };
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            listener.set_nonblocking(true)?;
            addrs.push((target.region, listener.local_addr()?));
            let ctx = Arc::new(TargetCtx {
                target: *target,
                target_rng: root.split_indexed("chaos.region", i as u64),
                conn_seq: AtomicU64::new(0),
                effects: Arc::clone(&effects),
                inject: config.inject,
                epoch,
                cells: Arc::clone(&cells),
                stop: Arc::clone(&stop),
                pumps: Mutex::new(Vec::new()),
            });
            accepters.push(thread::spawn(move || accept_loop(listener, ctx)));
        }
        Ok(ChaosProxy { addrs, stop, accepters, cells })
    }

    /// The proxy-side listener address for each target, in target order.
    pub fn addrs(&self) -> &[(Region, SocketAddr)] {
        &self.addrs
    }

    /// A live snapshot of the fault ledger (final totals come from
    /// [`ChaosProxy::join`]).
    pub fn ledger(&self) -> ChaosLedger {
        self.cells.snapshot()
    }

    /// Asks every accept and pump thread to wind down.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Stops the proxy (if not already stopping) and waits for every
    /// thread, returning the final fault ledger.
    pub fn join(self) -> ChaosLedger {
        self.request_stop();
        for handle in self.accepters {
            let _ = handle.join();
        }
        self.cells.snapshot()
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<TargetCtx>) {
    while !ctx.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                let seq = ctx.conn_seq.fetch_add(1, Ordering::AcqRel);
                let conn_ctx = Arc::clone(&ctx);
                let handle = thread::spawn(move || pump_connection(client, conn_ctx, seq));
                ctx.pumps.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    drop(listener);
    let pumps = std::mem::take(&mut *ctx.pumps.lock().unwrap());
    for handle in pumps {
        let _ = handle.join();
    }
}

/// Per-direction pump state. Frames move `inbuf → queue → outbuf`; the
/// queue holds judged frames until their release instant, preserving
/// FIFO order (`release = max(now + delay, last_release)`).
struct DirState {
    inbuf: Vec<u8>,
    queue: VecDeque<(Instant, Vec<u8>)>,
    outbuf: Vec<u8>,
    outpos: usize,
    last_release: Instant,
    /// Once the front of the stream fails to parse, forward verbatim.
    raw: bool,
    read_closed: bool,
    write_shut: bool,
}

impl DirState {
    fn new(epoch: Instant) -> DirState {
        DirState {
            inbuf: Vec::new(),
            queue: VecDeque::new(),
            outbuf: Vec::new(),
            outpos: 0,
            last_release: epoch,
            raw: false,
            read_closed: false,
            write_shut: false,
        }
    }

    fn drained(&self) -> bool {
        self.inbuf.is_empty() && self.queue.is_empty() && self.outpos == self.outbuf.len()
    }
}

/// Why a pump ended; `Reset` is the injected teardown.
enum PumpEnd {
    Eof,
    Reset,
    Torn,
}

fn pump_connection(client: TcpStream, ctx: Arc<TargetCtx>, seq: u64) {
    let upstream = match TcpStream::connect(ctx.target.addr) {
        Ok(s) => s,
        Err(_) => return,
    };
    if client.set_nonblocking(true).is_err() || upstream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    let mut rng = ctx.target_rng.split_indexed("conn", seq);
    let mut c2s = DirState::new(ctx.epoch);
    let mut s2c = DirState::new(ctx.epoch);
    let end = loop {
        if ctx.stop.load(Ordering::Acquire) {
            break PumpEnd::Torn;
        }
        let mut progress = false;
        let mut torn = false;
        let mut reset = false;
        for (src, dst, dir) in [(&client, &upstream, &mut c2s), (&upstream, &client, &mut s2c)] {
            match read_side(src, dir) {
                Ok(p) => progress |= p,
                Err(_) => torn = true,
            }
            match judge_frames(dir, &ctx, &mut rng) {
                Ok(p) => progress |= p,
                Err(()) => reset = true,
            }
            match flush_side(dst, dir) {
                Ok(p) => progress |= p,
                Err(_) => torn = true,
            }
        }
        if reset {
            break PumpEnd::Reset;
        }
        if torn {
            break PumpEnd::Torn;
        }
        if c2s.write_shut && s2c.write_shut {
            break PumpEnd::Eof;
        }
        if !progress {
            thread::sleep(Duration::from_micros(300));
        }
    };
    match end {
        PumpEnd::Reset => {
            ctx.cells.resets.fetch_add(1, Ordering::AcqRel);
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
        }
        PumpEnd::Eof | PumpEnd::Torn => {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
        }
    }
}

/// Reads whatever the source socket has into the direction's input
/// buffer; `Ok(true)` when bytes arrived or EOF was newly observed.
fn read_side(src: &TcpStream, dir: &mut DirState) -> io::Result<bool> {
    if dir.read_closed {
        return Ok(false);
    }
    let mut progress = false;
    let mut chunk = [0u8; 16 * 1024];
    let mut src = src; // `Read` is on `&TcpStream`; shared handles, mutable cursor
    loop {
        match src.read(&mut chunk) {
            Ok(0) => {
                dir.read_closed = true;
                return Ok(true);
            }
            Ok(n) => {
                dir.inbuf.extend_from_slice(&chunk[..n]);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(progress),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Judges every complete frame at the front of `inbuf` against the plan
/// windows and the injection profile, moving survivors to the release
/// queue. `Err(())` requests an injected reset.
fn judge_frames(dir: &mut DirState, ctx: &TargetCtx, rng: &mut SimRng) -> Result<bool, ()> {
    let mut progress = false;
    loop {
        if dir.inbuf.is_empty() {
            return Ok(progress);
        }
        if dir.raw {
            // Unparseable stream: degrade to a transparent pipe.
            let bytes = std::mem::take(&mut dir.inbuf);
            let release = Instant::now().max(dir.last_release);
            dir.last_release = release;
            dir.queue.push_back((release, bytes));
            return Ok(true);
        }
        let raw = match decode_raw(&dir.inbuf) {
            Ok(Some(raw)) => raw,
            Ok(None) => return Ok(progress),
            Err(_) => {
                dir.raw = true;
                continue;
            }
        };
        let mut bytes: Vec<u8> = dir.inbuf.drain(..raw.consumed).collect();
        progress = true;

        // Judge against the plan's link windows at the wall offset.
        let at = SimTime::from_nanos(ctx.epoch.elapsed().as_nanos() as u64);
        let (a, b) = (ctx.target.region, ctx.target.replica_region);
        let mut blocked = false;
        let mut lost = false;
        let mut delay_nanos = 0u64;
        for effect in ctx.effects.iter().filter(|e| e.applies(a, b, at)) {
            match effect.kind {
                EffectKind::Block => blocked = true,
                EffectKind::Loss(p) => lost |= rng.gen_bool(p),
                EffectKind::ExtraDelay { base, jitter_mean } => {
                    delay_nanos +=
                        base.as_nanos() + rng.gen_exp(jitter_mean.as_nanos() as f64) as u64;
                }
            }
        }
        if blocked {
            ctx.cells.blocked.fetch_add(1, Ordering::AcqRel);
            continue;
        }
        if lost {
            ctx.cells.dropped.fetch_add(1, Ordering::AcqRel);
            continue;
        }

        // Byte-level injections on the surviving frame.
        let inject = &ctx.inject;
        if inject.reset_prob > 0.0 && rng.gen_bool(inject.reset_prob) {
            return Err(());
        }
        if inject.corrupt_prob > 0.0 && rng.gen_bool(inject.corrupt_prob) {
            let byte = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[byte] ^= 1u8 << bit;
            ctx.cells.corrupted.fetch_add(1, Ordering::AcqRel);
        }

        if delay_nanos > 0 {
            ctx.cells.delayed.fetch_add(1, Ordering::AcqRel);
        }
        let release = (Instant::now() + Duration::from_nanos(delay_nanos)).max(dir.last_release);
        let trickle =
            inject.trickle_prob > 0.0 && bytes.len() > 1 && rng.gen_bool(inject.trickle_prob);
        if trickle {
            ctx.cells.trickled.fetch_add(1, Ordering::AcqRel);
            let chunk = inject.trickle_chunk.max(1);
            let mut at = release;
            for piece in bytes.chunks(chunk) {
                dir.queue.push_back((at, piece.to_vec()));
                dir.last_release = at;
                at += inject.trickle_gap;
            }
        } else {
            dir.queue.push_back((release, bytes));
            dir.last_release = release;
        }
        ctx.cells.forwarded.fetch_add(1, Ordering::AcqRel);
    }
}

/// Moves due queue entries into the output buffer and writes as much as
/// the destination socket will take; shuts the destination's write half
/// once this direction is EOF and fully drained.
fn flush_side(dst: &TcpStream, dir: &mut DirState) -> io::Result<bool> {
    let mut progress = false;
    let now = Instant::now();
    while let Some((release, _)) = dir.queue.front() {
        if *release > now {
            break;
        }
        let (_, bytes) = dir.queue.pop_front().expect("front just observed");
        dir.outbuf.extend_from_slice(&bytes);
    }
    let mut sink = dst; // `Write` is on `&TcpStream`
    while dir.outpos < dir.outbuf.len() {
        match sink.write(&dir.outbuf[dir.outpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                dir.outpos += n;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if dir.outpos == dir.outbuf.len() && !dir.outbuf.is_empty() {
        dir.outbuf.clear();
        dir.outpos = 0;
    }
    if dir.read_closed && dir.drained() && !dir.write_shut {
        let _ = dst.shutdown(Shutdown::Write);
        dir.write_shut = true;
        progress = true;
    }
    Ok(progress)
}

/// Replays a plan's compiled [`ServiceAction`] timeline against a live
/// [`WireServer`]: crashes and state-transfer rejoins via
/// [`WireServer::kill_replica`] / [`WireServer::restart_replica`],
/// brownouts via [`WireServer::set_brownout`]. The timeline's clock
/// starts on entry; each action is narrated through `log` (replica
/// indices render as node names `n{idx}`, matching the sim's quorum
/// narration so the same CI greps cover both paths). Targets outside
/// the deployed replica range are narrated and skipped. Returns the
/// number of actions executed; returns early if the server begins
/// stopping.
pub fn drive_service_actions(
    server: &WireServer,
    plan: &FaultPlan,
    mut log: impl FnMut(String),
) -> usize {
    let start = Instant::now();
    let replicas = server.replica_count();
    let mut executed = 0usize;
    for ServiceAction { target, at, action } in plan.service_actions() {
        let due = Duration::from_nanos(at.as_nanos());
        while start.elapsed() < due {
            if server.stopping() {
                return executed;
            }
            let remaining = due.saturating_sub(start.elapsed());
            thread::sleep(remaining.min(Duration::from_millis(20)));
        }
        if server.stopping() {
            return executed;
        }
        if target >= replicas {
            log(format!(
                "fault target {target} out of range ({replicas} replica(s)); {action} skipped"
            ));
            continue;
        }
        match action {
            ServiceActionKind::Crash => {
                let changes_before = server.pbft_status().map(|(_, _, c)| c);
                if server.kill_replica(target).is_ok() {
                    log(format!("replica n{target} crashed"));
                    if let (Some(before), Some((view, leader, after))) =
                        (changes_before, server.pbft_status())
                    {
                        if after > before {
                            log(format!("pbft view change: view {view}, new leader n{leader}"));
                        }
                    }
                    executed += 1;
                }
            }
            ServiceActionKind::Recover => {
                log(format!("replica n{target} recovered; state transfer begun"));
                if let Ok(report) = server.restart_replica(target) {
                    if report.cold {
                        log(format!("replica n{target} rejoined cold"));
                    } else {
                        log(format!(
                            "replica n{target} state transfer complete: {} frame(s) from {} \
                             peer(s), watermark {}, {} post(s) applied, stream hash {:016x}",
                            report.frames,
                            report.peers,
                            report.watermark,
                            report.applied,
                            report.stream_hash,
                        ));
                    }
                    executed += 1;
                }
            }
            ServiceActionKind::BrownoutStart(mode) => {
                if server.set_brownout(target, Some(mode)).is_ok() {
                    log(format!("replica n{target} {action}"));
                    executed += 1;
                }
            }
            ServiceActionKind::BrownoutEnd => {
                if server.set_brownout(target, None).is_ok() {
                    log(format!("replica n{target} {action}"));
                    executed += 1;
                }
            }
        }
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode, Frame};
    use crate::server::ServeConfig;
    use conprobe_services::ServiceKind;
    use conprobe_sim::faults::{FaultEvent, LinkScope};
    use conprobe_sim::{SimDuration, SimTime};
    use std::sync::mpsc;

    fn transparent_config(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            plan: FaultPlan::new(seed),
            inject: InjectProfile::default(),
            base_port: 0,
        }
    }

    fn target_for(addr: SocketAddr) -> ChaosTarget {
        ChaosTarget { region: Region::Oregon, replica_region: Region::Oregon, addr }
    }

    /// A one-connection sink: accepts, optionally writes `reply` after
    /// the first read, then drains to EOF and sends the collected bytes.
    fn sink_listener(reply: Option<Vec<u8>>) -> (SocketAddr, mpsc::Receiver<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind sink");
        let addr = listener.local_addr().expect("sink addr");
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut collected = Vec::new();
            let mut buf = [0u8; 4096];
            let mut reply = reply;
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        collected.extend_from_slice(&buf[..n]);
                        if let Some(bytes) = reply.take() {
                            let _ = conn.write_all(&bytes);
                            let _ = conn.flush();
                        }
                    }
                }
            }
            let _ = tx.send(collected);
        });
        (addr, rx)
    }

    fn recv_bytes(rx: &mpsc::Receiver<Vec<u8>>) -> Vec<u8> {
        rx.recv_timeout(Duration::from_secs(10)).expect("sink result")
    }

    #[test]
    fn transparent_proxy_forwards_both_directions_unchanged() {
        let reply =
            Frame::HelloAck { proto: 4, server_clock_nanos: 7, service: "blogger".to_string() }
                .encode();
        let (addr, rx) = sink_listener(Some(reply.clone()));
        let proxy = ChaosProxy::start(&transparent_config(1), &[target_for(addr)]).expect("proxy");
        let (region, paddr) = proxy.addrs()[0];
        assert_eq!(region, Region::Oregon);

        let hello = Frame::Hello { proto: 4 }.encode();
        let mut conn = TcpStream::connect(paddr).expect("connect via proxy");
        conn.write_all(&hello).expect("send hello");
        let mut got = vec![0u8; reply.len()];
        conn.read_exact(&mut got).expect("read reply");
        assert_eq!(got, reply, "server→client bytes pass unchanged");
        drop(conn);

        assert_eq!(recv_bytes(&rx), hello, "client→server bytes pass unchanged");
        let ledger = proxy.join();
        assert_eq!(ledger.forwarded, 2);
        assert_eq!(
            ledger,
            ChaosLedger { forwarded: 2, ..ChaosLedger::default() },
            "a transparent run touches nothing else"
        );
    }

    #[test]
    fn block_window_blackholes_covered_frames() {
        let (addr, rx) = sink_listener(None);
        let mut config = transparent_config(2);
        config.plan.push(FaultEvent::LinkFlap {
            scope: LinkScope::Touching(Region::Oregon),
            at: SimTime::ZERO,
            down_for: SimDuration::from_secs(600),
            up_for: SimDuration::ZERO,
            flaps: 1,
        });
        let proxy = ChaosProxy::start(&config, &[target_for(addr)]).expect("proxy");
        let paddr = proxy.addrs()[0].1;

        let mut conn = TcpStream::connect(paddr).expect("connect");
        for _ in 0..3 {
            conn.write_all(&Frame::Read.encode()).expect("send");
        }
        drop(conn);

        assert!(recv_bytes(&rx).is_empty(), "nothing crosses a partition");
        let ledger = proxy.join();
        assert_eq!(ledger.blocked, 3);
        assert_eq!(ledger.forwarded, 0);
    }

    #[test]
    fn corruption_is_typed_rejection_and_seed_deterministic() {
        let run = |seed: u64| -> (Vec<u8>, ChaosLedger) {
            let (addr, rx) = sink_listener(None);
            let mut config = transparent_config(seed);
            config.inject.corrupt_prob = 1.0;
            let proxy = ChaosProxy::start(&config, &[target_for(addr)]).expect("proxy");
            let paddr = proxy.addrs()[0].1;
            let mut conn = TcpStream::connect(paddr).expect("connect");
            conn.write_all(
                &Frame::Write {
                    author: 1,
                    seq: 2,
                    client_ts_nanos: 3,
                    content: "corrupt me".to_string(),
                }
                .encode(),
            )
            .expect("send");
            drop(conn);
            (recv_bytes(&rx), proxy.join())
        };

        let (bytes_a, ledger_a) = run(7);
        let (bytes_b, ledger_b) = run(7);
        let (bytes_c, _) = run(8);
        assert_eq!(bytes_a, bytes_b, "same seed, same flipped bit");
        assert_ne!(bytes_a, bytes_c, "different seed corrupts differently");
        assert_eq!(ledger_a.corrupted, 1);
        assert_eq!(ledger_a, ledger_b);

        let original = Frame::Write {
            author: 1,
            seq: 2,
            client_ts_nanos: 3,
            content: "corrupt me".to_string(),
        }
        .encode();
        assert_ne!(bytes_a, original, "one bit differs");
        // The flip is never invisible: the checksum (payload flips), the
        // magic/length validation (header flips), or the kind byte
        // itself changes what decodes. A panic here would be the bug.
        // `Ok(None)` (starved) and `Err` (typed rejection) are both fine.
        if let Ok(Some(decoded)) = decode(&bytes_a) {
            let pristine = decode(&original).expect("original decodes").expect("complete");
            assert_ne!(decoded, pristine, "corruption must not decode to the original");
        }
    }

    #[test]
    fn extra_delay_holds_frames_but_preserves_order() {
        let (addr, rx) = sink_listener(None);
        let mut config = transparent_config(3);
        config.plan.push(FaultEvent::DegradedLink {
            scope: LinkScope::All,
            at: SimTime::ZERO,
            duration: SimDuration::from_secs(600),
            extra_base: SimDuration::from_millis(40),
            extra_jitter: SimDuration::ZERO,
        });
        let proxy = ChaosProxy::start(&config, &[target_for(addr)]).expect("proxy");
        let paddr = proxy.addrs()[0].1;

        let first = Frame::Read.encode();
        let second = Frame::Hello { proto: 4 }.encode();
        let sent_at = Instant::now();
        let mut conn = TcpStream::connect(paddr).expect("connect");
        conn.write_all(&first).expect("send first");
        conn.write_all(&second).expect("send second");
        drop(conn);

        let got = recv_bytes(&rx);
        assert!(sent_at.elapsed() >= Duration::from_millis(40), "frames were held");
        let expected: Vec<u8> = [first, second].concat();
        assert_eq!(got, expected, "FIFO order survives the delay window");
        let ledger = proxy.join();
        assert_eq!(ledger.delayed, 2);
        assert_eq!(ledger.forwarded, 2);
    }

    #[test]
    fn injected_reset_tears_the_connection_down() {
        let (addr, _rx) = sink_listener(None);
        let mut config = transparent_config(4);
        config.inject.reset_prob = 1.0;
        let proxy = ChaosProxy::start(&config, &[target_for(addr)]).expect("proxy");
        let paddr = proxy.addrs()[0].1;

        let mut conn = TcpStream::connect(paddr).expect("connect");
        conn.write_all(&Frame::Read.encode()).expect("send");
        conn.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let mut buf = [0u8; 64];
        // The proxy slams both sides: the client sees EOF or a reset
        // error, never a response and never a hang.
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unexpected {n} bytes through a reset connection"),
        }
        let ledger = proxy.join();
        assert_eq!(ledger.resets, 1);
        assert_eq!(ledger.forwarded, 0);
    }

    #[test]
    fn trickled_frames_arrive_whole_and_in_order() {
        let (addr, rx) = sink_listener(None);
        let mut config = transparent_config(5);
        config.inject.trickle_prob = 1.0;
        config.inject.trickle_chunk = 3;
        config.inject.trickle_gap = Duration::from_millis(1);
        let proxy = ChaosProxy::start(&config, &[target_for(addr)]).expect("proxy");
        let paddr = proxy.addrs()[0].1;

        let frame = Frame::Write {
            author: 9,
            seq: 1,
            client_ts_nanos: 0,
            content: "slow loris says hello".to_string(),
        }
        .encode();
        let mut conn = TcpStream::connect(paddr).expect("connect");
        conn.write_all(&frame).expect("send");
        drop(conn);

        assert_eq!(recv_bytes(&rx), frame, "chunks reassemble to the exact frame");
        let ledger = proxy.join();
        assert_eq!(ledger.trickled, 1);
        assert_eq!(ledger.forwarded, 1);
    }

    #[test]
    fn garbage_streams_pass_through_verbatim() {
        let (addr, rx) = sink_listener(None);
        let proxy = ChaosProxy::start(&transparent_config(6), &[target_for(addr)]).expect("proxy");
        let paddr = proxy.addrs()[0].1;

        let garbage = b"this is not a cpw1 frame at all".to_vec();
        let mut conn = TcpStream::connect(paddr).expect("connect");
        conn.write_all(&garbage).expect("send");
        drop(conn);

        assert_eq!(recv_bytes(&rx), garbage, "unparseable bytes forward unshaped");
        let ledger = proxy.join();
        assert_eq!(ledger.forwarded, 0, "garbage is not counted as frames");
    }

    #[test]
    fn drive_service_actions_narrates_crash_rejoin_and_brownout() {
        let server =
            WireServer::start(&ServeConfig::loopback(ServiceKind::Quorum, 11)).expect("server");
        let plan = FaultPlan::new(11)
            .with(FaultEvent::CrashCycle {
                target: 1,
                at: SimTime::ZERO,
                down_for: SimDuration::from_millis(30),
                up_for: SimDuration::ZERO,
                cycles: 1,
            })
            .with(FaultEvent::Brownout {
                target: 0,
                at: SimTime::from_millis(10),
                duration: SimDuration::from_millis(20),
                mode: conprobe_sim::BrownoutMode::ThrottleStorm,
            })
            .with(FaultEvent::CrashCycle {
                target: 9, // out of range: narrated and skipped
                at: SimTime::from_millis(5),
                down_for: SimDuration::from_millis(1),
                up_for: SimDuration::ZERO,
                cycles: 1,
            });
        let mut lines = Vec::new();
        let executed = drive_service_actions(&server, &plan, |line| lines.push(line));
        server.request_stop();
        server.join();

        assert_eq!(executed, 4, "crash + recover + brownout start/end");
        let all = lines.join("\n");
        assert!(all.contains("replica n1 crashed"), "{all}");
        assert!(all.contains("replica n1 recovered; state transfer begun"), "{all}");
        assert!(all.contains("replica n1 state transfer complete:"), "{all}");
        assert!(all.contains("replica n0 brownout(throttle-storm)"), "{all}");
        assert!(all.contains("replica n0 brownout-end"), "{all}");
        assert!(all.contains("fault target 9 out of range"), "{all}");
        let crashed = lines.iter().position(|l| l.contains("n1 crashed")).unwrap();
        let rejoined = lines.iter().position(|l| l.contains("state transfer complete")).unwrap();
        assert!(crashed < rejoined, "timeline order: {all}");
    }
}
