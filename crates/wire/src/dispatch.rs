//! Distributed campaigns: `conprobe dispatch` / `conprobe worker`.
//!
//! The paper's study ran ~1,000 test instances per (service, test) cell;
//! a single machine replays that comfortably, but the journal format and
//! seed derivation were designed so a cell can also be *farmed out*. This
//! module adds the farming: a **dispatch coordinator** owns the campaign
//! journal and a lease table over the cell's instances, and any number of
//! **workers** — separate `conprobe` processes started with the identical
//! campaign parameters — pull `(instance, seed)` units over `cpw1`
//! dispatch frames, run them with the ordinary panic-isolated runner, and
//! stream the finished journal-record payloads back.
//!
//! ## Why the output is byte-identical to a single-process run
//!
//! Three existing invariants carry the whole design:
//!
//! 1. Per-instance seeds are derived deterministically from the master
//!    seed (`SimRng::split_indexed("test", i)`), so coordinator and
//!    worker agree on every unit's seed without trusting each other — a
//!    grant whose seed does not match the worker's own derivation is a
//!    configuration mismatch and the worker refuses it.
//! 2. A journal record is a pure function of `(cell, instance, seed,
//!    result)`; the worker serializes it with the exact code a local
//!    campaign uses ([`journal::completed_record_json`]) and the
//!    coordinator appends the payload verbatim, so the merged journal is
//!    byte-compatible with one written by a single process.
//! 3. Campaign output is a pure function of the journal: the coordinator
//!    finishes by recovering its own journal and splicing it through
//!    [`run_campaign_journaled`] — the same resume path a crashed
//!    single-process campaign takes.
//!
//! ## Fault tolerance
//!
//! Units are *leased*, not assigned: a lease is released the moment its
//! worker's connection drops, and expires after [`DispatchConfig::
//! lease_timeout`] even if the connection stays open (hung worker). A
//! released or expired unit goes back to the pending pool and is granted
//! to the next requester, so killing a worker mid-run (the CI drill does
//! this with SIGKILL) costs only the in-flight unit's work. Result
//! pushes are at-least-once: a worker re-sends an unacknowledged record
//! after reconnecting, and the coordinator acknowledges-without-append
//! for units already done, keeping the journal free of duplicates.

use crate::client::ReconnectPolicy;
use crate::frame::{decode, Frame, PROTO_VERSION};
use conprobe_harness::campaign::{
    instance_config, panic_message, run_campaign_journaled, CampaignConfig, CampaignResult,
};
use conprobe_harness::journal::{self, Journal, Recovery};
use conprobe_harness::runner::run_one_test;
use conprobe_sim::SimRng;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Blocking frame I/O
// ---------------------------------------------------------------------------

fn io_invalid(context: &str, detail: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{context}: {detail}"))
}

fn send_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&frame.encode())
}

/// Reads one complete frame, buffering partial input in `buf` across
/// calls (the incremental-decoder discipline, blocking flavour).
fn read_frame(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<Frame> {
    let mut chunk = [0u8; 4096];
    loop {
        match decode(buf).map_err(|e| io_invalid("cpw1 decode", e))? {
            Some((frame, consumed)) => {
                buf.drain(..consumed);
                return Ok(frame);
            }
            None => {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The lease table
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Pending,
    Leased { session: u64, deadline: Instant },
    Done,
}

#[derive(Debug)]
struct Table {
    units: Vec<Unit>,
    done: usize,
    /// Leases re-issued after expiry or disconnect (reported to CI).
    reissued: u64,
}

/// Shared dispatcher state: the lease table plus a condvar that wakes
/// granting connections when a unit frees up or the cell completes.
struct Shared {
    table: Mutex<Table>,
    cv: Condvar,
}

impl Shared {
    fn new(units: Vec<Unit>) -> Shared {
        let done = units.iter().filter(|u| matches!(u, Unit::Done)).count();
        Shared { table: Mutex::new(Table { units, done, reissued: 0 }), cv: Condvar::new() }
    }

    fn all_done(&self) -> bool {
        let t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        t.done == t.units.len()
    }

    /// Reclaims expired leases (holding the lock). Returns how many.
    fn reclaim_expired(t: &mut Table, now: Instant) -> usize {
        let mut n = 0;
        for u in &mut t.units {
            if matches!(u, Unit::Leased { deadline, .. } if *deadline <= now) {
                *u = Unit::Pending;
                t.reissued += 1;
                n += 1;
            }
        }
        n
    }

    /// Blocks until a unit can be leased to `session` (returning its
    /// index) or the whole cell is done (returning `None`). Expired
    /// leases are reclaimed by whoever is waiting, so a hung worker
    /// cannot strand its units even with no dispatcher-side timer
    /// thread.
    fn grant(&self, session: u64, lease: Duration) -> Option<usize> {
        let mut t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            let now = Instant::now();
            Self::reclaim_expired(&mut t, now);
            if t.done == t.units.len() {
                return None;
            }
            if let Some(i) = t.units.iter().position(|u| matches!(u, Unit::Pending)) {
                t.units[i] = Unit::Leased { session, deadline: now + lease };
                return Some(i);
            }
            // Everything is leased out: sleep until the earliest lease
            // can expire or a completion/release notifies us.
            let earliest = t
                .units
                .iter()
                .filter_map(|u| match u {
                    Unit::Leased { deadline, .. } => Some(*deadline),
                    _ => None,
                })
                .min()
                .unwrap_or(now + lease);
            let wait = earliest.saturating_duration_since(now).max(Duration::from_millis(10));
            t = self.cv.wait_timeout(t, wait).unwrap_or_else(|p| p.into_inner()).0;
        }
    }

    /// Marks `i` done (idempotent). Returns whether this call freshly
    /// completed it — a duplicate push after a reconnect returns false
    /// and must not be journaled again.
    fn complete(&self, i: usize) -> bool {
        let mut t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        let fresh = t.units[i] != Unit::Done;
        if fresh {
            t.units[i] = Unit::Done;
            t.done += 1;
        }
        self.cv.notify_all();
        fresh
    }

    fn finished(&self) -> usize {
        self.table.lock().unwrap_or_else(|p| p.into_inner()).done
    }

    /// Releases every lease held by `session` (its connection dropped).
    fn release_session(&self, session: u64) {
        let mut t = self.table.lock().unwrap_or_else(|p| p.into_inner());
        let mut released = 0;
        for u in &mut t.units {
            if matches!(u, Unit::Leased { session: s, .. } if *s == session) {
                *u = Unit::Pending;
                released += 1;
            }
        }
        t.reissued += released;
        if released > 0 {
            self.cv.notify_all();
        }
    }

    fn reissued(&self) -> u64 {
        self.table.lock().unwrap_or_else(|p| p.into_inner()).reissued
    }
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

/// Configuration for [`run_dispatch`].
#[derive(Debug)]
pub struct DispatchConfig {
    /// The campaign cell being farmed out. Workers must be started with
    /// the identical cell parameters.
    pub config: CampaignConfig,
    /// Journal cell identifier (e.g. `blogger/test1`).
    pub cell: String,
    /// Address to listen on (`127.0.0.1:0` picks an ephemeral port; the
    /// bound address is reported through `on_ready`).
    pub addr: SocketAddr,
    /// How long a granted unit may stay unfinished before it is
    /// re-issued to another worker.
    pub lease_timeout: Duration,
}

/// What [`run_dispatch`] produced, beyond the merged campaign result.
#[derive(Debug)]
pub struct DispatchStats {
    /// Leases re-issued after a worker disconnect or lease expiry.
    pub reissued: u64,
    /// Distinct worker connections that requested at least one unit.
    pub connections: u64,
}

/// Runs the dispatch coordinator: listens on [`DispatchConfig::addr`],
/// leases the cell's pending instances to connecting workers, journals
/// every pushed record, and — once all units are done — merges the
/// journal through the ordinary resume path into a [`CampaignResult`]
/// identical to a single-process run of the same cell.
///
/// `journal` must be the coordinator's own open journal for this cell;
/// `recovery` (from a `--resume`) pre-completes instances already
/// journaled with matching seeds. `on_ready(addr)` fires once the
/// listener is bound (the CLI writes the ready-file there);
/// `progress(finished, total)` fires on every completed unit.
///
/// # Errors
///
/// Propagates listener I/O failures and journal recovery errors; a
/// misbehaving *worker* never fails the dispatch (its connection is
/// dropped and its units re-issued).
pub fn run_dispatch(
    cfg: &DispatchConfig,
    journal: Journal,
    recovery: Option<&Recovery>,
    on_ready: &mut (dyn FnMut(SocketAddr) + Send),
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<(CampaignResult, DispatchStats), Box<dyn std::error::Error + Send + Sync>> {
    let n = cfg.config.tests as usize;
    let root = SimRng::new(cfg.config.seed);
    let seeds: Vec<u64> = (0..n).map(|i| root.split_indexed("test", i as u64).seed()).collect();

    // Pre-complete units the recovered journal already covers with the
    // right seed (crashed records are retried, as on a local resume).
    let mut units = vec![Unit::Pending; n];
    if let Some(r) = recovery {
        let completed: BTreeMap<u32, (u64, _)> = r.completed_for(&cfg.cell);
        for (i, (seed, _)) in completed {
            let i = i as usize;
            if i < n && seed == seeds[i] {
                units[i] = Unit::Done;
            }
        }
    }
    let shared = Shared::new(units);

    let listener = TcpListener::bind(cfg.addr)?;
    let local = listener.local_addr()?;
    on_ready(local);

    let sessions = AtomicU64::new(0);
    let connections = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Completion monitor: once the last unit lands, a self-connect
        // unblocks the accept loop so the scope can drain.
        scope.spawn(|| {
            let mut t = shared.table.lock().unwrap_or_else(|p| p.into_inner());
            while t.done < t.units.len() {
                t = shared
                    .cv
                    .wait_timeout(t, Duration::from_millis(200))
                    .unwrap_or_else(|p| p.into_inner())
                    .0;
            }
            drop(t);
            let _ = TcpStream::connect(local);
        });
        loop {
            let Ok((stream, _)) = listener.accept() else { break };
            if shared.all_done() {
                break;
            }
            let session = sessions.fetch_add(1, Ordering::Relaxed);
            let shared = &shared;
            let journal = &journal;
            let connections = &connections;
            let seeds = &seeds;
            scope.spawn(move || {
                let counted = serve_worker(stream, session, cfg, seeds, shared, journal, progress);
                shared.release_session(session);
                if counted {
                    connections.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let stats =
        DispatchStats { reissued: shared.reissued(), connections: connections.into_inner() };

    // All units journaled: merge through the ordinary resume path. The
    // splice validates every seed again and recomputes each analysis, so
    // the result is what a single process would have produced. Crashed
    // records are not spliced (resume semantics): they re-run here, and
    // an `inject_panic` instance re-panics into the same quarantine.
    let path = journal.path().to_path_buf();
    drop(journal);
    let (journal, recovery) = Journal::resume(&path)?;
    let result =
        run_campaign_journaled(&cfg.config, progress, &cfg.cell, Some(&journal), Some(&recovery));
    Ok((result, stats))
}

/// One worker connection: hello, then a grant/push conversation until
/// the worker disconnects or the cell completes. Returns whether the
/// worker requested at least one unit (for the connection count; the
/// monitor's self-connect never speaks and is not counted).
fn serve_worker(
    mut stream: TcpStream,
    session: u64,
    cfg: &DispatchConfig,
    seeds: &[u64],
    shared: &Shared,
    journal: &Journal,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> bool {
    // A worker that goes silent longer than its lease is presumed dead;
    // the read timeout mirrors the lease so the handler thread is
    // reclaimed on the same clock as the unit.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.lease_timeout.max(Duration::from_secs(1))));
    let mut buf = Vec::new();
    let mut spoke = false;
    let result: std::io::Result<()> = (|| {
        match read_frame(&mut stream, &mut buf)? {
            Frame::Hello { proto } if proto == PROTO_VERSION => {}
            other => return Err(io_invalid("handshake", format!("unexpected {other:?}"))),
        }
        send_frame(
            &mut stream,
            &Frame::HelloAck {
                proto: PROTO_VERSION,
                server_clock_nanos: 0,
                service: cfg.cell.clone(),
            },
        )?;
        loop {
            match read_frame(&mut stream, &mut buf)? {
                Frame::WorkReq { .. } => {
                    spoke = true;
                    match shared.grant(session, cfg.lease_timeout) {
                        Some(i) => send_frame(
                            &mut stream,
                            &Frame::WorkGrant {
                                instance: i as u32,
                                seed: seeds[i],
                                cell: cfg.cell.clone(),
                            },
                        )?,
                        None => {
                            send_frame(&mut stream, &Frame::WorkFin)?;
                            return Ok(());
                        }
                    }
                }
                Frame::ResultPush { record } => {
                    let parsed = journal::parse_record_payload(&record)
                        .map_err(|e| io_invalid("pushed record", e))?;
                    let i = parsed.key.instance as usize;
                    if parsed.key.cell != cfg.cell
                        || i >= seeds.len()
                        || parsed.key.seed != seeds[i]
                    {
                        return Err(io_invalid(
                            "pushed record",
                            format!(
                                "key {}/{}/{:#x} does not belong to this campaign",
                                parsed.key.cell, parsed.key.instance, parsed.key.seed
                            ),
                        ));
                    }
                    // Duplicates (an at-least-once re-push after a lost
                    // ack) are acknowledged but not re-journaled.
                    if shared.complete(i) {
                        journal.append_payload(&record)?;
                        if let Some(cb) = progress {
                            cb(shared.finished(), seeds.len());
                        }
                    }
                    send_frame(&mut stream, &Frame::ResultAck)?;
                }
                other => return Err(io_invalid("dispatch", format!("unexpected {other:?}"))),
            }
        }
    })();
    if let Err(e) = result {
        if e.kind() != std::io::ErrorKind::UnexpectedEof {
            eprintln!("dispatch: worker session {session} dropped: {e}");
        }
    }
    spoke
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Configuration for [`run_worker`].
#[derive(Debug)]
pub struct WorkerConfig {
    /// The dispatch coordinator's address.
    pub addr: SocketAddr,
    /// The campaign cell parameters — must match the coordinator's.
    pub config: CampaignConfig,
    /// Journal cell identifier — must match the coordinator's.
    pub cell: String,
    /// Worker id for progress labels (not used for correctness).
    pub worker_id: u32,
    /// Reconnect budget for a dropped coordinator connection.
    pub reconnect: ReconnectPolicy,
}

/// What one worker accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Units that ran to completion and were acknowledged.
    pub completed: u32,
    /// Units whose test panicked (pushed as `crashed` records).
    pub crashed: u32,
    /// Times the coordinator connection was re-dialed.
    pub reconnects: u32,
}

/// Runs one dispatch worker: pulls units from the coordinator at
/// [`WorkerConfig::addr`], runs each with the ordinary panic-isolated
/// runner, and pushes the journal-record payload back. Returns when the
/// coordinator reports the cell complete.
///
/// Result pushes are at-least-once: after a reconnect the worker
/// re-sends the record it never saw acknowledged (the coordinator
/// deduplicates). A grant whose seed disagrees with the worker's own
/// derivation is a coordinator/worker configuration mismatch and is a
/// hard error, never a silent wrong-seed run.
///
/// # Errors
///
/// Connection failures that outlive the reconnect budget, protocol
/// violations, and grant/derivation mismatches.
pub fn run_worker(cfg: &WorkerConfig) -> std::io::Result<WorkerReport> {
    let root = SimRng::new(cfg.config.seed);
    let mut jitter = SimRng::new(cfg.reconnect.seed).split("wire.worker.backoff");
    let mut report = WorkerReport { completed: 0, crashed: 0, reconnects: 0 };
    // The record sent but not yet acknowledged (resent after reconnect).
    let mut unacked: Option<String> = None;
    let mut attempt = 0u32;

    'reconnect: loop {
        let mut stream = match connect(cfg.addr) {
            Ok(s) => s,
            Err(e) => {
                if attempt >= cfg.reconnect.attempts {
                    return Err(e);
                }
                std::thread::sleep(cfg.reconnect.backoff(attempt, &mut jitter));
                attempt += 1;
                report.reconnects += 1;
                continue 'reconnect;
            }
        };
        let mut buf = Vec::new();
        let session: std::io::Result<()> = (|| {
            send_frame(&mut stream, &Frame::Hello { proto: PROTO_VERSION })?;
            match read_frame(&mut stream, &mut buf)? {
                Frame::HelloAck { proto, service, .. } => {
                    if proto != PROTO_VERSION {
                        return Err(io_invalid(
                            "handshake",
                            format!(
                                "protocol mismatch: worker {PROTO_VERSION}, dispatcher {proto}"
                            ),
                        ));
                    }
                    if service != cfg.cell {
                        return Err(io_invalid(
                            "handshake",
                            format!("cell mismatch: worker {:?}, dispatcher {service:?}", cfg.cell),
                        ));
                    }
                }
                other => return Err(io_invalid("handshake", format!("unexpected {other:?}"))),
            }
            // A successful handshake resets the reconnect budget: the
            // budget bounds consecutive failures, not total dials.
            attempt = 0;
            loop {
                if let Some(record) = &unacked {
                    send_frame(&mut stream, &Frame::ResultPush { record: record.clone() })?;
                    match read_frame(&mut stream, &mut buf)? {
                        Frame::ResultAck => {}
                        other => return Err(io_invalid("push", format!("unexpected {other:?}"))),
                    }
                }
                unacked = None;
                send_frame(&mut stream, &Frame::WorkReq { worker: cfg.worker_id })?;
                let (instance, seed) = match read_frame(&mut stream, &mut buf)? {
                    Frame::WorkGrant { instance, seed, cell } => {
                        if cell != cfg.cell {
                            return Err(io_invalid(
                                "grant",
                                format!("cell mismatch: got {cell:?}, want {:?}", cfg.cell),
                            ));
                        }
                        (instance, seed)
                    }
                    Frame::WorkFin => return Ok(()),
                    other => return Err(io_invalid("grant", format!("unexpected {other:?}"))),
                };
                let derived = root.split_indexed("test", u64::from(instance)).seed();
                if seed != derived {
                    return Err(io_invalid(
                        "grant",
                        format!(
                            "instance {instance} granted seed {seed:#x} but this worker derives \
                             {derived:#x}; campaign parameters differ from the dispatcher's"
                        ),
                    ));
                }
                let record = run_unit(&cfg.config, &cfg.cell, instance, seed, &mut report);
                unacked = Some(record.clone());
                send_frame(&mut stream, &Frame::ResultPush { record })?;
                match read_frame(&mut stream, &mut buf)? {
                    Frame::ResultAck => unacked = None,
                    other => return Err(io_invalid("push", format!("unexpected {other:?}"))),
                }
            }
        })();
        match session {
            Ok(()) => return Ok(report),
            Err(e) => {
                if e.kind() == std::io::ErrorKind::InvalidData || attempt >= cfg.reconnect.attempts
                {
                    return Err(e);
                }
                eprintln!(
                    "worker {}: connection lost ({e}); reconnecting (attempt {})",
                    cfg.worker_id,
                    attempt + 1
                );
                std::thread::sleep(cfg.reconnect.backoff(attempt, &mut jitter));
                attempt += 1;
                report.reconnects += 1;
            }
        }
    }
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Runs one granted unit exactly as a local campaign worker would —
/// same panic isolation, same injected-panic hook, same record
/// serialization — and returns the journal payload to push.
fn run_unit(
    config: &CampaignConfig,
    cell: &str,
    instance: u32,
    seed: u64,
    report: &mut WorkerReport,
) -> String {
    // Drill hook (the dispatch counterpart of the journal's
    // CONPROBE_ABORT_AFTER_JOURNALED): dawdle inside the unit so an
    // externally delivered SIGKILL reliably lands while this worker
    // holds a lease. Simulated tests finish in microseconds, so without
    // the stall a kill-one-worker drill mostly hits the between-units
    // window where no lease is held and nothing needs re-issuing.
    if let Some(ms) =
        std::env::var("CONPROBE_WORKER_STALL_MS").ok().and_then(|v| v.parse::<u64>().ok())
    {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let test = instance_config(config, instance as usize);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if config.inject_panic.contains(&instance) {
            panic!("injected panic (instance {instance})");
        }
        run_one_test(&test, seed)
    }));
    match outcome {
        Ok(result) => {
            report.completed += 1;
            journal::completed_record_json(cell, instance, seed, &result)
        }
        Err(payload) => {
            report.crashed += 1;
            journal::crashed_record_json(cell, instance, seed, &panic_message(payload.as_ref()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_harness::campaign::run_campaign;
    use conprobe_harness::proto::TestKind;
    use conprobe_services::ServiceKind;
    use std::sync::atomic::AtomicU32;

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        static SERIAL: AtomicU32 = AtomicU32::new(0);
        let n = SERIAL.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("conprobe-dispatch-{tag}-{}-{n}.jsonl", std::process::id()))
    }

    fn small_cell(tests: u32) -> CampaignConfig {
        let mut c = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test2, tests);
        c.threads = 1;
        c
    }

    /// Drives a dispatch with in-process worker threads plus any extra
    /// raw connections the test wants to throw at the coordinator.
    fn dispatch_with_workers(
        config: &CampaignConfig,
        cell: &str,
        path: &std::path::Path,
        workers: u32,
        saboteur: Option<fn(SocketAddr, &CampaignConfig, &str)>,
    ) -> (CampaignResult, DispatchStats, Vec<WorkerReport>) {
        let journal = Journal::create(path).unwrap();
        let dcfg = DispatchConfig {
            config: config.clone(),
            cell: cell.to_string(),
            addr: "127.0.0.1:0".parse().unwrap(),
            lease_timeout: Duration::from_secs(30),
        };
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            let dispatcher = scope.spawn({
                let dcfg = &dcfg;
                move || {
                    let mut on_ready = move |addr| tx.send(addr).unwrap();
                    run_dispatch(dcfg, journal, None, &mut on_ready, None)
                        .map_err(|e| e.to_string())
                }
            });
            let addr = rx.recv().unwrap();
            if let Some(f) = saboteur {
                f(addr, config, cell);
            }
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let config = config.clone();
                    let cell = cell.to_string();
                    scope.spawn(move || {
                        run_worker(&WorkerConfig {
                            addr,
                            config,
                            cell,
                            worker_id: w,
                            reconnect: ReconnectPolicy::probe_default(u64::from(w)),
                        })
                        .unwrap()
                    })
                })
                .collect();
            let reports: Vec<WorkerReport> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            let (result, stats) = dispatcher.join().unwrap().unwrap();
            (result, stats, reports)
        })
    }

    #[test]
    fn three_workers_match_a_single_process_campaign() {
        let config = small_cell(6);
        let path = temp_journal("basic");
        let (result, stats, reports) =
            dispatch_with_workers(&config, "blogger/test2", &path, 3, None);
        assert_eq!(result.results.len(), 6);
        assert!(result.crashed.is_empty());
        assert_eq!(stats.connections, 3);
        assert_eq!(reports.iter().map(|r| r.completed).sum::<u32>(), 6);
        // Byte-identical to the same cell run in one process.
        let local = run_campaign(&config);
        for (a, b) in result.results.iter().zip(&local.results) {
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.analysis.observations, b.analysis.observations);
            assert_eq!(a.duration_secs, b.duration_secs);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deserting_worker_gets_its_lease_reissued() {
        // The saboteur takes a grant and silently drops the connection —
        // the moral equivalent of a SIGKILL'd worker. Its unit must be
        // re-issued to the honest workers and the output stay identical.
        fn desert(addr: SocketAddr, _config: &CampaignConfig, _cell: &str) {
            let mut stream = connect(addr).unwrap();
            let mut buf = Vec::new();
            send_frame(&mut stream, &Frame::Hello { proto: PROTO_VERSION }).unwrap();
            let _ = read_frame(&mut stream, &mut buf).unwrap();
            send_frame(&mut stream, &Frame::WorkReq { worker: 99 }).unwrap();
            match read_frame(&mut stream, &mut buf).unwrap() {
                Frame::WorkGrant { .. } => {} // taken to the grave
                other => panic!("expected a grant, got {other:?}"),
            }
            // Dropping the stream releases the lease instantly.
        }
        let config = small_cell(4);
        let path = temp_journal("desert");
        let (result, stats, _) =
            dispatch_with_workers(&config, "blogger/test2", &path, 2, Some(desert));
        assert!(stats.reissued >= 1, "the deserted lease must be re-issued");
        assert_eq!(result.results.len(), 4);
        let local = run_campaign(&config);
        for (a, b) in result.results.iter().zip(&local.results) {
            assert_eq!(a.trace, b.trace);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_result_push_is_acked_but_not_rejournaled() {
        // At-least-once delivery: a worker that never saw its ack pushes
        // the same record again after reconnecting. The journal must end
        // up with exactly one record per instance.
        fn double_push(addr: SocketAddr, config: &CampaignConfig, cell: &str) {
            let mut stream = connect(addr).unwrap();
            let mut buf = Vec::new();
            send_frame(&mut stream, &Frame::Hello { proto: PROTO_VERSION }).unwrap();
            let _ = read_frame(&mut stream, &mut buf).unwrap();
            send_frame(&mut stream, &Frame::WorkReq { worker: 7 }).unwrap();
            let (instance, seed) = match read_frame(&mut stream, &mut buf).unwrap() {
                Frame::WorkGrant { instance, seed, .. } => (instance, seed),
                other => panic!("expected a grant, got {other:?}"),
            };
            let mut report = WorkerReport { completed: 0, crashed: 0, reconnects: 0 };
            let record = run_unit(config, cell, instance, seed, &mut report);
            for _ in 0..2 {
                send_frame(&mut stream, &Frame::ResultPush { record: record.clone() }).unwrap();
                assert_eq!(read_frame(&mut stream, &mut buf).unwrap(), Frame::ResultAck);
            }
        }
        let config = small_cell(3);
        let path = temp_journal("dup");
        let (result, _, _) =
            dispatch_with_workers(&config, "blogger/test2", &path, 1, Some(double_push));
        assert_eq!(result.results.len(), 3);
        let recovery = Journal::recover(&path).unwrap();
        assert_eq!(recovery.duplicates, 0, "the duplicate push must not be re-journaled");
        assert_eq!(recovery.total_records, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_panic_rides_the_wire_as_a_crashed_record() {
        let mut config = small_cell(4);
        config.inject_panic = vec![2];
        let path = temp_journal("panic");
        let (result, _, reports) = dispatch_with_workers(&config, "blogger/test2", &path, 2, None);
        // The merge re-runs crashed records (resume semantics), and the
        // injected panic re-fires locally into the same quarantine.
        assert_eq!(result.results.len(), 3);
        assert_eq!(result.crashed.len(), 1);
        assert_eq!(result.crashed[0].index, 2);
        assert!(result.crashed[0].panic.contains("injected panic"));
        assert_eq!(reports.iter().map(|r| r.crashed).sum::<u32>(), 1);
        // Identical quarantine to the single-process run.
        let local = run_campaign(&config);
        assert_eq!(result.crashed[0].panic, local.crashed[0].panic);
        for (a, b) in result.results.iter().zip(&local.results) {
            assert_eq!(a.trace, b.trace);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn worker_refuses_a_mismatched_campaign_seed() {
        // The dispatcher runs seed X, the worker seed Y: the first grant
        // must be refused as a configuration mismatch, not silently run.
        let config = small_cell(2);
        let path = temp_journal("mismatch");
        let journal = Journal::create(&path).unwrap();
        let dcfg = DispatchConfig {
            config: config.clone(),
            cell: "blogger/test2".into(),
            addr: "127.0.0.1:0".parse().unwrap(),
            lease_timeout: Duration::from_secs(30),
        };
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            let dispatcher = scope.spawn({
                let dcfg = &dcfg;
                move || {
                    let mut on_ready = move |addr| tx.send(addr).unwrap();
                    run_dispatch(dcfg, journal, None, &mut on_ready, None)
                        .map_err(|e| e.to_string())
                }
            });
            let addr = rx.recv().unwrap();
            let bad = WorkerConfig {
                addr,
                config: config.clone().with_seed(0xBAD5EED),
                cell: "blogger/test2".into(),
                worker_id: 0,
                reconnect: ReconnectPolicy::disabled(),
            };
            let err = run_worker(&bad).expect_err("mismatched seed must refuse");
            assert!(err.to_string().contains("campaign parameters differ"), "{err}");
            // An honest worker then finishes the cell.
            let good = WorkerConfig {
                addr,
                config: config.clone(),
                cell: "blogger/test2".into(),
                worker_id: 1,
                reconnect: ReconnectPolicy::probe_default(1),
            };
            run_worker(&good).unwrap();
            let (result, _) = dispatcher.join().unwrap().unwrap();
            assert_eq!(result.results.len(), 2);
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resumed_dispatch_only_farms_out_missing_instances() {
        // First dispatch completes 2 of 5 instances (a saboteur runs two
        // units, then the dispatcher is... actually: run a full local
        // journaled campaign for 2 instances, then dispatch the 5-wide
        // cell resuming from that journal — only 3 units go on the wire.
        let config = small_cell(5);
        let cell = "blogger/test2";
        let path = temp_journal("resume");
        {
            let journal = Journal::create(&path).unwrap();
            let mut partial = config.clone();
            partial.tests = 2;
            run_campaign_journaled(&partial, None, cell, Some(&journal), None);
        }
        let (journal, recovery) = Journal::resume(&path).unwrap();
        let dcfg = DispatchConfig {
            config: config.clone(),
            cell: cell.to_string(),
            addr: "127.0.0.1:0".parse().unwrap(),
            lease_timeout: Duration::from_secs(30),
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let (result, reports) = std::thread::scope(|scope| {
            let dispatcher = scope.spawn({
                let dcfg = &dcfg;
                let recovery = &recovery;
                move || {
                    let mut on_ready = move |addr| tx.send(addr).unwrap();
                    run_dispatch(dcfg, journal, Some(recovery), &mut on_ready, None)
                        .map_err(|e| e.to_string())
                }
            });
            let addr = rx.recv().unwrap();
            let report = run_worker(&WorkerConfig {
                addr,
                config: config.clone(),
                cell: cell.to_string(),
                worker_id: 0,
                reconnect: ReconnectPolicy::probe_default(0),
            })
            .unwrap();
            let (result, _) = dispatcher.join().unwrap().unwrap();
            (result, report)
        });
        assert_eq!(reports.completed, 3, "only the missing instances go on the wire");
        assert_eq!(result.resumed, 5, "the merge splices every journaled instance");
        assert_eq!(result.results.len(), 5);
        let local = run_campaign(&config);
        for (a, b) in result.results.iter().zip(&local.results) {
            assert_eq!(a.trace, b.trace);
        }
        std::fs::remove_file(&path).ok();
    }
}
