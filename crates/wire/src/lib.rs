//! # conprobe-wire — real-network serving and live probing
//!
//! The paper's agents probed **live services over a real network**; the
//! rest of this workspace reproduces the methodology inside a
//! discrete-event simulator. This crate adds the missing half:
//!
//! * [`frame`] — the `cpw1` wire protocol: length-prefixed,
//!   FNV-checksummed binary frames with an incremental, fuzz-hardened
//!   decoder (the `conprobe-json` discipline, applied to bytes);
//! * [`server`] — `conprobe serve`: any catalog service behind
//!   per-region TCP listeners, with the deterministic replica cores
//!   bridged onto wall-clock time by
//!   [`LiveCluster`](conprobe_services::live::LiveCluster), optional
//!   WAN-shaped artificial latency/drop, and a graceful stop-file /
//!   stop-frame drain;
//! * [`client`] — the TCP [`ServiceEndpoint`] counterpart of the
//!   harness's in-sim `SimRpc` transport;
//! * [`probe`] — `conprobe probe`: real agent threads running the
//!   paper's Test 1 / Test 2 cadence with skewed local clocks,
//!   Cristian-synced over the wire, emitting a standard `TestTrace`
//!   that the unmodified `analyze()`/journal/report pipeline consumes;
//! * [`pipeline`] — non-blocking pipelined client connections: many
//!   in-flight keyed requests per socket, batched writes, FIFO-order
//!   verification by echoed request id;
//! * [`load`] — `conprobe load`: a closed-loop load generator
//!   multiplexing tens of thousands of pipelined connections, with
//!   latency histograms, backing the `bench_wire_throughput` stage;
//! * [`dispatch`] — `conprobe dispatch` / `conprobe worker`: a campaign
//!   cell farmed out to worker processes over leased work units, with
//!   results streamed back as journal records and merged byte-identically
//!   to a single-process run;
//! * [`chaos`] — `conprobe chaosd`: a deterministic fault-injecting TCP
//!   interposer that executes a [`FaultPlan`](conprobe_sim::FaultPlan)
//!   timeline against real connections — per-link partitions, loss,
//!   latency spikes, resets, seeded byte corruption, slow-loris trickle
//!   — plus the fault driver that crashes/rejoins live replicas and
//!   toggles brownouts on a running [`WireServer`].
//!
//! The server hosts a consistent-hash-sharded keyspace
//! ([`conprobe_services::shard`]): legacy frames address key 0, the
//! `read_q`/`write_q` family addresses any key, and every shard is a
//! full replica group with the paper's storage semantics.
//!
//! [`ServiceEndpoint`]: conprobe_harness::transport::ServiceEndpoint

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod dispatch;
pub mod frame;
pub mod load;
pub mod pipeline;
pub mod probe;
pub mod server;

pub use chaos::{
    drive_service_actions, ChaosConfig, ChaosLedger, ChaosProxy, ChaosTarget, InjectProfile,
};
pub use client::{ReconnectPolicy, WireClient};
pub use dispatch::{run_dispatch, run_worker, DispatchConfig, DispatchStats, WorkerConfig};
pub use frame::{decode, Frame, WireError, MAX_PAYLOAD, PROTO_VERSION};
pub use load::{run_load, wire_latency_bounds_nanos, LoadConfig, LoadReport};
pub use pipeline::{PipeConn, PipeFault};
pub use probe::{run_probe, run_probe_with_live, LiveEvent, ProbeConfig};
pub use server::{ServeConfig, ServeError, WireServer};
