//! The session guard state machine.

use crate::order::IssueOrder;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Which guarantees the guard enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Inject the session's own acknowledged writes (Read Your Writes).
    pub read_your_writes: bool,
    /// Never drop a delivered event (Monotonic Reads).
    pub monotonic_reads: bool,
    /// Delay events until same-session predecessors are delivered
    /// (Monotonic Writes).
    pub monotonic_writes: bool,
    /// Delay events until their registered dependencies are delivered
    /// (Writes Follows Reads; requires [`SessionGuard::register_deps`]).
    pub writes_follow_reads: bool,
}

impl Default for GuardConfig {
    /// All guarantees on.
    fn default() -> Self {
        GuardConfig {
            read_your_writes: true,
            monotonic_reads: true,
            monotonic_writes: true,
            writes_follow_reads: true,
        }
    }
}

impl GuardConfig {
    /// All guarantees off (the guard becomes a transparent recorder).
    pub fn disabled() -> Self {
        GuardConfig {
            read_your_writes: false,
            monotonic_reads: false,
            monotonic_writes: false,
            writes_follow_reads: false,
        }
    }
}

/// Counters describing the guard's interventions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Reads filtered.
    pub reads: u64,
    /// Own writes acknowledged.
    pub writes: u64,
    /// Own writes delivered to the view before the service surfaced them.
    pub injected: u64,
    /// Events currently held back awaiting predecessors/dependencies.
    pub pending: u64,
}

/// Client-side enforcement of session guarantees over an untrusted service.
///
/// See the crate docs for the scheme. `K` is the event key type; `O`
/// supplies same-session issue order for foreign events.
pub struct SessionGuard<K, O> {
    cfg: GuardConfig,
    oracle: O,
    /// Own acknowledged writes, in issue order.
    own_writes: Vec<K>,
    own_set: HashSet<K>,
    /// Events surfaced by the service itself at least once.
    service_seen: HashSet<K>,
    /// The cumulative corrected view, in delivery order.
    view: Vec<K>,
    in_view: HashSet<K>,
    /// Known-but-delayed events, in discovery order.
    pending: Vec<K>,
    /// Everything known to exist (view ∪ pending).
    known: HashSet<K>,
    deps: HashMap<K, Vec<K>>,
    stats: GuardStats,
}

impl<K: fmt::Debug, O> fmt::Debug for SessionGuard<K, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionGuard")
            .field("view", &self.view)
            .field("pending", &self.pending)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<K, O> SessionGuard<K, O>
where
    K: Clone + Eq + Hash,
    O: IssueOrder<K>,
{
    /// Creates a guard.
    pub fn new(cfg: GuardConfig, oracle: O) -> Self {
        SessionGuard {
            cfg,
            oracle,
            own_writes: Vec::new(),
            own_set: HashSet::new(),
            service_seen: HashSet::new(),
            view: Vec::new(),
            in_view: HashSet::new(),
            pending: Vec::new(),
            known: HashSet::new(),
            deps: HashMap::new(),
            stats: GuardStats::default(),
        }
    }

    /// Intervention counters.
    pub fn stats(&self) -> GuardStats {
        GuardStats { pending: self.pending.len() as u64, ..self.stats }
    }

    /// The current corrected view.
    pub fn view(&self) -> &[K] {
        &self.view
    }

    /// Records the acknowledgement of one of this session's own writes.
    ///
    /// Call in issue order (the order the application submitted the writes).
    pub fn note_write_ack(&mut self, id: K) {
        self.stats.writes += 1;
        if self.own_set.insert(id.clone()) {
            self.own_writes.push(id.clone());
        }
        if self.known.insert(id.clone()) && self.cfg.read_your_writes {
            self.pending.push(id);
        }
    }

    /// Registers that event `id` causally depends on `deps` (for the
    /// Writes Follows Reads guarantee). Dependency metadata typically
    /// travels with the write (e.g. embedded by the writing application).
    pub fn register_deps(&mut self, id: K, deps: Vec<K>) {
        self.deps.entry(id).or_default().extend(deps);
    }

    /// Filters one raw read result, updating and returning the corrected
    /// view.
    ///
    /// The returned sequence always contains every previously returned
    /// event (monotonic reads) and, when enabled, the session's own writes
    /// in issue order.
    pub fn filter_read(&mut self, seq: &[K]) -> Vec<K> {
        self.stats.reads += 1;
        for e in seq {
            self.service_seen.insert(e.clone());
            if self.known.insert(e.clone()) {
                self.pending.push(e.clone());
            } else if self.cfg.read_your_writes
                && self.own_set.contains(e)
                && !self.in_view.contains(e)
                && !self.pending.contains(e)
            {
                // An own write known from its ack but not yet queued
                // (possible when RYW was toggled after the ack).
                self.pending.push(e.clone());
            }
        }
        // If RYW is off, own writes enter pending only via the service.
        self.drain_pending();
        self.view.clone()
    }

    /// Moves every deliverable pending event into the view, to fixpoint.
    fn drain_pending(&mut self) {
        loop {
            let mut delivered_any = false;
            let mut i = 0;
            while i < self.pending.len() {
                if self.deliverable(&self.pending[i]) {
                    let e = self.pending.remove(i);
                    if self.own_set.contains(&e) && !self.service_seen.contains(&e) {
                        self.stats.injected += 1;
                    }
                    self.in_view.insert(e.clone());
                    self.view.push(e);
                    delivered_any = true;
                } else {
                    i += 1;
                }
            }
            if !delivered_any {
                return;
            }
        }
    }

    /// Whether `e` may be delivered now.
    fn deliverable(&self, e: &K) -> bool {
        if self.cfg.monotonic_writes {
            // Own writes: every write this session acknowledged earlier must
            // already be visible (issue order witnessed directly).
            let own_block = self.own_set.contains(e)
                && self
                    .own_writes
                    .iter()
                    .take_while(|w| *w != e)
                    .any(|w| !self.in_view.contains(w));
            if own_block {
                return false;
            }
            // Foreign writes, via the sequence-number scheme: the immediate
            // predecessor derived from the key must be visible first…
            if let Some(pred) = self.oracle.predecessor(e) {
                if !self.in_view.contains(&pred) {
                    return false;
                }
            }
            // …and no *known* same-session earlier event may still be
            // undelivered (covers oracles without predecessor derivation
            // when both events were received).
            let foreign_block = self.known.iter().any(|p| {
                p != e
                    && !self.in_view.contains(p)
                    && self.oracle.same_session_order(p, e) == Some(std::cmp::Ordering::Less)
            });
            if foreign_block {
                return false;
            }
        }
        if self.cfg.writes_follow_reads {
            if let Some(deps) = self.deps.get(e) {
                if deps.iter().any(|d| !self.in_view.contains(d)) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{AuthorSeqOrder, NoOrder};

    type Key = (u32, u32); // (session/author, seq)

    fn guard() -> SessionGuard<Key, AuthorSeqOrder> {
        SessionGuard::new(GuardConfig::default(), AuthorSeqOrder)
    }

    #[test]
    fn injects_own_missing_write() {
        let mut g = guard();
        g.note_write_ack((1, 1));
        let view = g.filter_read(&[]);
        assert_eq!(view, vec![(1, 1)], "own write injected (read your writes)");
        assert_eq!(g.stats().injected, 1);
    }

    #[test]
    fn monotonic_reads_keeps_disappeared_events() {
        let mut g = guard();
        assert_eq!(g.filter_read(&[(2, 1)]), vec![(2, 1)]);
        // Service drops the event; the guard's view retains it.
        assert_eq!(g.filter_read(&[]), vec![(2, 1)]);
        assert_eq!(g.filter_read(&[(2, 2)]), vec![(2, 1), (2, 2)]);
    }

    #[test]
    fn monotonic_writes_delays_out_of_order_foreign_writes() {
        let mut g = guard();
        // Service surfaces (2,2) before (2,1): the guard holds it back.
        assert_eq!(g.filter_read(&[(2, 2)]), Vec::<Key>::new());
        assert_eq!(g.stats().pending, 1);
        // Once (2,1) arrives, both deliver in issue order.
        assert_eq!(g.filter_read(&[(2, 1), (2, 2)]), vec![(2, 1), (2, 2)]);
        assert_eq!(g.stats().pending, 0);
    }

    #[test]
    fn monotonic_writes_fixes_reversed_presentation() {
        // The FB Group same-second reversal: service always presents
        // (2,2) before (2,1); the guard's view restores issue order.
        let mut g = guard();
        let view = g.filter_read(&[(2, 2), (2, 1)]);
        assert_eq!(view, vec![(2, 1), (2, 2)]);
    }

    #[test]
    fn own_writes_appear_in_issue_order() {
        let mut g = guard();
        g.note_write_ack((1, 1));
        g.note_write_ack((1, 2));
        // Service shows only the second one.
        let view = g.filter_read(&[(1, 2)]);
        assert_eq!(view, vec![(1, 1), (1, 2)]);
    }

    #[test]
    fn wfr_delays_event_until_dependency_visible() {
        let mut g = guard();
        // (2,1) is a reply to (3,1).
        g.register_deps((2, 1), vec![(3, 1)]);
        assert_eq!(g.filter_read(&[(2, 1)]), Vec::<Key>::new(), "reply held back");
        assert_eq!(g.filter_read(&[(3, 1), (2, 1)]), vec![(3, 1), (2, 1)]);
    }

    #[test]
    fn disabled_guard_is_transparent_per_read_content() {
        let mut g: SessionGuard<Key, NoOrder> = SessionGuard::new(GuardConfig::disabled(), NoOrder);
        g.note_write_ack((1, 1));
        // No injection when RYW is off…
        assert_eq!(g.filter_read(&[]), Vec::<Key>::new());
        // …and out-of-order foreign events pass straight through.
        assert_eq!(g.filter_read(&[(2, 2)]), vec![(2, 2)]);
        assert_eq!(g.stats().injected, 0);
    }

    #[test]
    fn view_is_always_monotone_prefix() {
        let mut g = guard();
        let reads: Vec<Vec<Key>> =
            vec![vec![(2, 1)], vec![(2, 2), (2, 1)], vec![], vec![(3, 1)], vec![(2, 3), (3, 1)]];
        let mut prev: Vec<Key> = Vec::new();
        for r in reads {
            let v = g.filter_read(&r);
            assert!(v.starts_with(&prev), "view must extend, never rewrite: {prev:?} → {v:?}");
            prev = v;
        }
    }

    #[test]
    fn stats_track_interventions() {
        let mut g = guard();
        g.note_write_ack((1, 1));
        g.filter_read(&[]);
        g.filter_read(&[(2, 5)]); // out of order, pending
        let s = g.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.injected, 1);
        assert_eq!(s.pending, 1);
    }

    #[test]
    fn duplicate_acks_are_idempotent() {
        let mut g = guard();
        g.note_write_ack((1, 1));
        g.note_write_ack((1, 1));
        assert_eq!(g.filter_read(&[]), vec![(1, 1)]);
    }

    /// End-to-end: feed the anomalous sequences from the checkers' test
    /// vocabulary through the guard and verify the corrected per-agent
    /// traces are clean for all four session guarantees.
    #[test]
    fn corrected_trace_passes_session_checkers() {
        use conprobe_core::checkers;
        use conprobe_core::trace::{AgentId, TestTraceBuilder, Timestamp};

        let t = Timestamp::from_millis;
        // Raw service behaviour (very anomalous): agent 0 writes (0,1),(0,2);
        // the service shows them reversed, then drops one.
        let raw_reads: Vec<Vec<Key>> = vec![vec![(0, 2)], vec![(0, 2), (0, 1)], vec![(0, 1)]];
        let mut g = guard();
        let mut b = TestTraceBuilder::new();
        b.write(AgentId(0), t(0), t(10), (0u32, 1u32));
        g.note_write_ack((0, 1));
        b.write(AgentId(0), t(11), t(20), (0, 2));
        g.note_write_ack((0, 2));
        for (i, r) in raw_reads.iter().enumerate() {
            let at = t(30 + i as i64 * 10);
            let corrected = g.filter_read(r);
            b.read(AgentId(0), at, at, corrected);
        }
        let trace = b.build();
        assert!(checkers::check_read_your_writes(&trace).is_empty());
        assert!(checkers::check_monotonic_writes(&trace).is_empty());
        assert!(checkers::check_monotonic_reads(&trace).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::order::AuthorSeqOrder;
    use conprobe_core::testutil::TestRng;
    use std::cmp::Ordering;

    type Key = (u32, u32);

    /// Random read results: duplicate-free lists of (author, seq) keys.
    fn gen_reads(rng: &mut TestRng) -> Vec<Vec<Key>> {
        let n = rng.range_usize(0, 12);
        (0..n)
            .map(|_| {
                let len = rng.range_usize(0, 6);
                let mut seen = std::collections::HashSet::new();
                (0..len)
                    .map(|_| (rng.range(0, 3) as u32, rng.range(1, 6) as u32))
                    .filter(|k| seen.insert(*k))
                    .collect()
            })
            .collect()
    }

    /// Liveness: if the service eventually presents every event (in a
    /// final, complete read), the guard eventually delivers every event
    /// — nothing is suppressed forever once dependencies are available.
    #[test]
    fn guard_is_live_once_service_converges() {
        let mut rng = TestRng::new(0x6A8D_0001);
        for case in 0..400 {
            let reads = gen_reads(&mut rng);
            let mut g = SessionGuard::new(GuardConfig::default(), AuthorSeqOrder);
            let mut all: Vec<Key> = reads.iter().flatten().copied().collect();
            all.sort();
            all.dedup();
            for r in &reads {
                let _ = g.filter_read(r);
            }
            // The service converges: it presents every event it ever
            // surfaced, plus the session-order prefixes the key scheme
            // implies (seq 1..max per author) — a converged store has them.
            let mut complete: Vec<Key> = Vec::new();
            for (author, seq) in &all {
                for s in 1..=*seq {
                    complete.push((*author, s));
                }
            }
            complete.sort();
            complete.dedup();
            let final_view = g.filter_read(&complete);
            for e in &complete {
                assert!(
                    final_view.contains(e),
                    "case {case}: event {e:?} still suppressed after convergence"
                );
            }
            assert_eq!(g.stats().pending, 0, "case {case}");
        }
    }

    /// For any service behaviour: the view is duplicate-free, monotone
    /// (each result is a prefix of the next), and never shows a later
    /// same-session event before an earlier one.
    #[test]
    fn guard_invariants() {
        let mut rng = TestRng::new(0x6A8D_0002);
        for case in 0..400 {
            let reads = gen_reads(&mut rng);
            let mut g = SessionGuard::new(GuardConfig::default(), AuthorSeqOrder);
            let mut prev: Vec<Key> = Vec::new();
            for r in reads {
                let v = g.filter_read(&r);
                let set: std::collections::HashSet<_> = v.iter().collect();
                assert_eq!(set.len(), v.len(), "case {case}: duplicates in view");
                assert!(v.starts_with(&prev), "case {case}");
                for (i, a) in v.iter().enumerate() {
                    for b in &v[i + 1..] {
                        assert_ne!(
                            (a.0 == b.0).then(|| a.1.cmp(&b.1)),
                            Some(Ordering::Greater),
                            "case {case}: same-session inversion in view"
                        );
                    }
                }
                prev = v;
            }
        }
    }
}
