//! # conprobe-session — client-side session-guarantee enforcement
//!
//! The paper closes its measurement study with an observation (§V,
//! *Discussion of Results*): most of the session-guarantee anomalies it
//! found are **not inevitable** — they can be masked at the application
//! level *"by simply identifying requests with a session id and a sequence
//! number within a session, and using a combination of caching and replaying
//! previous values that were read and written, and delaying or omitting the
//! delivery of messages"*. The paper leaves the scheme's details as future
//! work; this crate implements it.
//!
//! [`SessionGuard`] wraps a client session. The application feeds it every
//! write acknowledgement and every raw read result; the guard returns a
//! *corrected view* that provably satisfies the session guarantees:
//!
//! * **Monotonic Reads** — the view is cumulative: an event, once shown, is
//!   never dropped (caching + replaying previous values read).
//! * **Read Your Writes** — the session's own acknowledged writes are
//!   injected if the service hasn't surfaced them yet (replaying previous
//!   values written).
//! * **Monotonic Writes** — an event is *delayed* (held in a pending set)
//!   until every same-session predecessor the guard knows about is
//!   deliverable, so one session's writes always appear in issue order
//!   (delaying/omitting delivery). Session order comes from an
//!   [`IssueOrder`] oracle — e.g. "same author, compare sequence number",
//!   exactly the session-id + sequence-number scheme the paper sketches.
//! * **Writes Follows Reads** — when dependency metadata is available
//!   (registered via [`SessionGuard::register_deps`]), an event is delayed
//!   until its dependencies are visible. The paper notes this guarantee "is
//!   a bit more complicated to enforce": it genuinely needs cross-client
//!   metadata, which is why it is opt-in here.
//!
//! The price is staleness, never blocking: the guard works purely on local
//! state, no extra round trips — matching the paper's claim that these
//! anomalies "can be masked with client-side techniques that do not require
//! blocking user requests waiting for cross-replica synchronization".
//!
//! `conprobe-harness` uses this crate for the A3 extension experiment:
//! running Test 1 against the Facebook Feed model with a `SessionGuard`
//! drives the session-anomaly rates from ~99 % to zero.
//!
//! ## Example
//!
//! ```
//! use conprobe_session::{AuthorSeqOrder, GuardConfig, SessionGuard};
//!
//! let mut guard = SessionGuard::new(GuardConfig::default(), AuthorSeqOrder);
//! guard.note_write_ack((1, 1)); // my first write, acknowledged
//! // The service's read is missing my write and shows someone else's
//! // second post before their first:
//! let view = guard.filter_read(&[(2, 2)]);
//! // My write is injected; the out-of-order foreign post is delayed.
//! assert_eq!(view, vec![(1, 1)]);
//! let view = guard.filter_read(&[(2, 1), (2, 2)]);
//! assert_eq!(view, vec![(1, 1), (2, 1), (2, 2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod guard;
pub mod order;

pub use guard::{GuardConfig, GuardStats, SessionGuard};
pub use order::{AuthorSeqOrder, FnIssueOrder, IssueOrder, NoOrder};
