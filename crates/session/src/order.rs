//! Issue-order oracles.
//!
//! To enforce monotonic writes, the guard must know when two events were
//! written by the same session and in which order — and, crucially, that a
//! *gap* in a session's sequence numbers reveals a write it has not yet
//! received. This is exactly the paper's "session id and a sequence number
//! within a session" scheme: from key `(session, seq)` with `seq > 1` the
//! client can infer that `(session, seq − 1)` exists and must be delivered
//! first.

use std::cmp::Ordering;

/// Tells whether two events belong to the same write session, their issue
/// order, and (optionally) the immediate predecessor of an event within its
/// session.
pub trait IssueOrder<K> {
    /// `Some(Less)` if `a` was issued before `b` *in the same session*,
    /// `Some(Greater)` for the converse, `None` if unrelated (different
    /// sessions, or order unknown).
    fn same_session_order(&self, a: &K, b: &K) -> Option<Ordering>;

    /// The event issued immediately before `k` in `k`'s session, if the key
    /// scheme makes it derivable (e.g. `(session, seq) → (session, seq−1)`).
    /// `None` when `k` is its session's first write or the scheme cannot
    /// tell.
    fn predecessor(&self, k: &K) -> Option<K> {
        let _ = k;
        None
    }
}

/// An [`IssueOrder`] defined by a closure (no predecessor derivation).
///
/// # Examples
///
/// ```
/// use conprobe_session::{FnIssueOrder, IssueOrder};
/// // Keys are (author, seq): same author ⇒ ordered by seq.
/// let oracle = FnIssueOrder::new(|a: &(u32, u32), b: &(u32, u32)| {
///     (a.0 == b.0).then(|| a.1.cmp(&b.1))
/// });
/// assert_eq!(oracle.same_session_order(&(1, 1), &(1, 2)), Some(std::cmp::Ordering::Less));
/// assert_eq!(oracle.same_session_order(&(1, 1), &(2, 2)), None);
/// ```
pub struct FnIssueOrder<F>(F);

impl<F> FnIssueOrder<F> {
    /// Wraps a closure as an oracle.
    pub fn new(f: F) -> Self {
        FnIssueOrder(f)
    }
}

impl<K, F> IssueOrder<K> for FnIssueOrder<F>
where
    F: Fn(&K, &K) -> Option<Ordering>,
{
    fn same_session_order(&self, a: &K, b: &K) -> Option<Ordering> {
        (self.0)(a, b)
    }
}

impl<F> std::fmt::Debug for FnIssueOrder<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnIssueOrder(..)")
    }
}

/// The paper's session-id + sequence-number scheme over `(session, seq)`
/// keys with 1-based sequence numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuthorSeqOrder;

impl IssueOrder<(u32, u32)> for AuthorSeqOrder {
    fn same_session_order(&self, a: &(u32, u32), b: &(u32, u32)) -> Option<Ordering> {
        (a.0 == b.0).then(|| a.1.cmp(&b.1))
    }

    fn predecessor(&self, k: &(u32, u32)) -> Option<(u32, u32)> {
        (k.1 > 1).then(|| (k.0, k.1 - 1))
    }
}

/// An oracle that relates nothing: disables monotonic-writes enforcement
/// for foreign events (the guard still orders the session's *own* writes,
/// whose issue order it witnessed directly through acknowledgements).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOrder;

impl<K> IssueOrder<K> for NoOrder {
    fn same_session_order(&self, _: &K, _: &K) -> Option<Ordering> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_oracle_orders_same_session() {
        let oracle =
            FnIssueOrder::new(|a: &(u8, u8), b: &(u8, u8)| (a.0 == b.0).then(|| a.1.cmp(&b.1)));
        assert_eq!(oracle.same_session_order(&(0, 1), &(0, 5)), Some(Ordering::Less));
        assert_eq!(oracle.same_session_order(&(0, 5), &(0, 1)), Some(Ordering::Greater));
        assert_eq!(oracle.same_session_order(&(0, 3), &(0, 3)), Some(Ordering::Equal));
        assert_eq!(oracle.same_session_order(&(0, 1), &(1, 2)), None);
        assert_eq!(oracle.predecessor(&(0, 2)), None, "closures derive no predecessors");
    }

    #[test]
    fn author_seq_derives_predecessors() {
        assert_eq!(AuthorSeqOrder.predecessor(&(3, 5)), Some((3, 4)));
        assert_eq!(AuthorSeqOrder.predecessor(&(3, 1)), None);
        assert_eq!(AuthorSeqOrder.same_session_order(&(3, 1), &(3, 2)), Some(Ordering::Less));
        assert_eq!(AuthorSeqOrder.same_session_order(&(3, 1), &(4, 2)), None);
    }

    #[test]
    fn no_order_relates_nothing() {
        assert_eq!(NoOrder.same_session_order(&1, &2), None);
        assert_eq!(IssueOrder::<i32>::predecessor(&NoOrder, &2), None);
    }
}
