//! Criterion benches for the simulation substrate: raw event-loop
//! throughput, network sampling, and clock reads. Campaign wall-time is
//! dominated by the event loop, so this is the number that decides how many
//! paper-scale instances per second a machine can run.

use conprobe_sim::net::Region;
use conprobe_sim::{
    Context, LatencyMatrix, Node, NodeId, SimRng, World, WorldConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A node that ping-pongs `remaining` messages with its peer.
struct PingPong {
    peer: Option<NodeId>,
    remaining: u32,
}

impl Node<u64> for PingPong {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if let Some(p) = self.peer {
            ctx.send(p, 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, msg + 1);
        }
    }
    fn on_timer(&mut self, _: &mut Context<'_, u64>, _: u64) {}
}

fn bench_event_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_loop");
    for msgs in [1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("ping_pong", msgs), &msgs, |b, &msgs| {
            b.iter(|| {
                let mut w = World::new(WorldConfig::default(), 1);
                let a = w.add_node(
                    Region::Oregon,
                    Box::new(PingPong { peer: None, remaining: msgs }),
                );
                let _b = w.add_node(
                    Region::Tokyo,
                    Box::new(PingPong { peer: Some(a), remaining: msgs }),
                );
                w.run_until_idle();
                black_box(w.delivered())
            })
        });
    }
    group.finish();
}

fn bench_network_sampling(c: &mut Criterion) {
    let matrix = LatencyMatrix::paper_wan();
    let mut rng = SimRng::new(7);
    c.bench_function("latency_sample", |b| {
        b.iter(|| black_box(matrix.sample_delay(Region::Oregon, Region::Tokyo, &mut rng)))
    });
    c.bench_function("rng_split", |b| {
        let root = SimRng::new(3);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(root.split_indexed("bench", i))
        })
    });
}

criterion_group!(benches, bench_event_loop, bench_network_sampling);
criterion_main!(benches);
