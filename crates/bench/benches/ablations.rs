//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A1** — the Google+ model's anti-entropy period governs how long
//!   order divergence persists (Figure 10a's shape); sweeping it shows the
//!   causal knob.
//! * **A2** — clock-sync probe count vs estimate quality: the paper uses a
//!   handful of Cristian probes; more probes cost WAN round trips.
//! * **A3** — the ranking top-K of the Facebook Feed model: the subset
//!   semantics behind content divergence.
//!
//! Each bench iterates the full single-test pipeline under one knob
//! setting, so `cargo bench` both times and sanity-runs the ablations; the
//! `repro` binary prints their *measured effects* at campaign scale.

use conprobe_harness::proto::TestKind;
use conprobe_harness::runner::{run_one_test, TestConfig};
use conprobe_services::catalog::{self, Topology};
use conprobe_services::replica_node::{ReadPath, ReplicaParams};
use conprobe_services::ServiceKind;
use conprobe_sim::SimDuration;
use conprobe_store::RankingConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn gplus_with_antientropy(secs: u64) -> Topology {
    let mut topo = catalog::topology(ServiceKind::GooglePlus);
    for (_, params) in &mut topo.replicas {
        *params = ReplicaParams {
            anti_entropy: Some(SimDuration::from_secs(secs)),
            ..params.clone()
        };
    }
    topo
}

fn fbfeed_with_top_k(top_k: usize) -> Topology {
    let mut topo = catalog::topology(ServiceKind::FacebookFeed);
    for (_, params) in &mut topo.replicas {
        if let ReadPath::Ranked(cfg) = &params.read_path {
            params.read_path = ReadPath::Ranked(RankingConfig { top_k, ..cfg.clone() });
        }
    }
    topo
}

fn bench_antientropy_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_antientropy");
    group.sample_size(10);
    for secs in [1u64, 4, 16] {
        let mut config = TestConfig::paper(ServiceKind::GooglePlus, TestKind::Test2);
        config.service_override = Some(gplus_with_antientropy(secs));
        group.bench_with_input(BenchmarkId::new("gplus_test2", secs), &config, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_one_test(cfg, seed))
            })
        });
    }
    group.finish();
}

fn bench_probe_count_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_clocksync_probes");
    group.sample_size(10);
    for probes in [1u32, 5, 25] {
        let mut config = TestConfig::paper(ServiceKind::Blogger, TestKind::Test2);
        config.probes_per_agent = probes;
        group.bench_with_input(BenchmarkId::new("blogger_test2", probes), &config, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_one_test(cfg, seed))
            })
        });
    }
    group.finish();
}

fn bench_top_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_ranking_top_k");
    group.sample_size(10);
    for top_k in [3usize, 25, 100] {
        let mut config = TestConfig::paper(ServiceKind::FacebookFeed, TestKind::Test2);
        config.service_override = Some(fbfeed_with_top_k(top_k));
        group.bench_with_input(BenchmarkId::new("fbfeed_test2", top_k), &config, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_one_test(cfg, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_antientropy_sweep, bench_probe_count_sweep, bench_top_k_sweep);
criterion_main!(benches);
