//! Criterion benches for the anomaly checkers: throughput of each §III
//! predicate over synthetic traces of increasing size. The paper's full
//! campaign analyzed ~785k reads; these benches establish that a complete
//! per-test analysis is microseconds, so analysis never bounds campaign
//! throughput.

use conprobe_core::checkers::{self, WfrMode};
use conprobe_core::trace::{AgentId, TestTrace, TestTraceBuilder, Timestamp};
use conprobe_core::window::{all_pair_windows, WindowKind};
use conprobe_core::{analyze, CheckerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A synthetic three-agent trace shaped like a Test 1 log: 6 writes, then
/// `reads_per_agent` rolling reads each seeing a sliding window of events
/// with occasional gaps/reorders (so checkers exercise their slow paths).
fn synthetic_trace(reads_per_agent: usize) -> TestTrace<u32> {
    let mut b = TestTraceBuilder::new();
    let t = Timestamp::from_millis;
    for (i, w) in (1..=6u32).enumerate() {
        let agent = AgentId((i / 2) as u32);
        b.write(agent, t(i as i64 * 100), t(i as i64 * 100 + 50), w);
    }
    for agent in 0..3u32 {
        for r in 0..reads_per_agent {
            let at = t(600 + r as i64 * 300 + agent as i64 * 17);
            // Rolling view with a deliberate anomaly sprinkle: drop one
            // event on every 7th read, swap a pair on every 5th.
            let mut seq: Vec<u32> = (1..=6).collect();
            if r % 7 == 3 {
                seq.remove(r % 6);
            }
            if r % 5 == 2 {
                seq.swap(0, 1);
            }
            b.read(AgentId(agent), at, at, seq);
        }
    }
    b.build()
}

fn bench_individual_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkers");
    for reads in [16usize, 64, 256] {
        let trace = synthetic_trace(reads);
        group.bench_with_input(BenchmarkId::new("ryw", reads), &trace, |b, tr| {
            b.iter(|| black_box(checkers::check_read_your_writes(tr)))
        });
        group.bench_with_input(BenchmarkId::new("mw", reads), &trace, |b, tr| {
            b.iter(|| black_box(checkers::check_monotonic_writes(tr)))
        });
        group.bench_with_input(BenchmarkId::new("mr", reads), &trace, |b, tr| {
            b.iter(|| black_box(checkers::check_monotonic_reads(tr)))
        });
        group.bench_with_input(BenchmarkId::new("wfr_general", reads), &trace, |b, tr| {
            b.iter(|| black_box(checkers::check_writes_follow_reads(tr, &WfrMode::General)))
        });
        group.bench_with_input(BenchmarkId::new("content", reads), &trace, |b, tr| {
            b.iter(|| black_box(checkers::check_content_divergence(tr)))
        });
        group.bench_with_input(BenchmarkId::new("order", reads), &trace, |b, tr| {
            b.iter(|| black_box(checkers::check_order_divergence(tr)))
        });
        group.bench_with_input(BenchmarkId::new("windows", reads), &trace, |b, tr| {
            b.iter(|| {
                black_box(all_pair_windows(tr, WindowKind::Content));
                black_box(all_pair_windows(tr, WindowKind::Order));
            })
        });
    }
    group.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let trace = synthetic_trace(64);
    let config: CheckerConfig<u32> = CheckerConfig::default();
    c.bench_function("analyze_full_test", |b| {
        b.iter(|| black_box(analyze(&trace, &config)))
    });
}

criterion_group!(benches, bench_individual_checkers, bench_full_analysis);
criterion_main!(benches);
