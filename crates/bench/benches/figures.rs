//! One Criterion bench per paper artifact: each bench runs the exact
//! pipeline that regenerates a table or figure, at a small per-cell scale
//! (campaign + statistics + rendering). `cargo bench -p conprobe-bench
//! --bench figures` therefore re-derives every artifact of the evaluation
//! section while timing it; the `repro` binary runs the same pipelines at
//! full scale.

use conprobe_core::window::WindowKind;
use conprobe_core::AnomalyKind;
use conprobe_harness::campaign::{run_campaign, CampaignConfig, CampaignResult};
use conprobe_harness::figures;
use conprobe_harness::proto::TestKind;
use conprobe_services::ServiceKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Instances per campaign cell inside a bench iteration — small, but the
/// full pipeline (world build, clock sync, both tests, checkers, stats,
/// rendering) is exercised end to end.
const TESTS: u32 = 2;

fn cells() -> (Vec<CampaignResult>, Vec<CampaignResult>) {
    let services = ServiceKind::ALL;
    let t1 = services
        .iter()
        .map(|s| {
            let mut c = CampaignConfig::paper(*s, TestKind::Test1, TESTS);
            c.threads = 2;
            run_campaign(&c)
        })
        .collect();
    let t2 = services
        .iter()
        .map(|s| {
            let mut c = CampaignConfig::paper(*s, TestKind::Test2, TESTS);
            c.threads = 2;
            run_campaign(&c)
        })
        .collect();
    (t1, t2)
}

fn bench_artifacts(c: &mut Criterion) {
    // Campaigns are run once; each artifact bench measures its
    // aggregation + rendering pipeline over the shared results.
    let (t1, t2) = cells();
    let t1_refs: Vec<&CampaignResult> = t1.iter().collect();
    let t2_refs: Vec<&CampaignResult> = t2.iter().collect();
    let pairs: Vec<(&CampaignResult, &CampaignResult)> =
        t1.iter().zip(t2.iter()).collect();

    let mut group = c.benchmark_group("artifacts");
    group.bench_function("table1", |b| {
        b.iter(|| black_box(figures::render_table1(&t1_refs)))
    });
    group.bench_function("table2", |b| {
        b.iter(|| black_box(figures::render_table2(&t2_refs)))
    });
    group.bench_function("fig3", |b| b.iter(|| black_box(figures::render_fig3(&pairs))));
    group.bench_function("fig4_ryw", |b| {
        b.iter(|| {
            black_box(figures::render_observation_figure(
                4,
                AnomalyKind::ReadYourWrites,
                &t1_refs,
            ))
        })
    });
    group.bench_function("fig5_mw", |b| {
        b.iter(|| {
            black_box(figures::render_observation_figure(
                5,
                AnomalyKind::MonotonicWrites,
                &t1_refs,
            ))
        })
    });
    group.bench_function("fig6_mr", |b| {
        b.iter(|| {
            black_box(figures::render_observation_figure(
                6,
                AnomalyKind::MonotonicReads,
                &t1_refs,
            ))
        })
    });
    group.bench_function("fig7_wfr", |b| {
        b.iter(|| {
            black_box(figures::render_observation_figure(
                7,
                AnomalyKind::WritesFollowReads,
                &t1_refs,
            ))
        })
    });
    group.bench_function("fig8", |b| b.iter(|| black_box(figures::render_fig8(&t2_refs))));
    group.bench_function("fig9_content_cdf", |b| {
        b.iter(|| black_box(figures::render_window_cdf(9, WindowKind::Content, &t2_refs)))
    });
    group.bench_function("fig10_order_cdf", |b| {
        b.iter(|| black_box(figures::render_window_cdf(10, WindowKind::Order, &t2_refs)))
    });
    group.bench_function("totals", |b| {
        b.iter(|| black_box(figures::render_totals(&pairs)))
    });
    group.finish();

    // End-to-end: one full campaign cell per iteration (the expensive
    // path behind every artifact above).
    let mut group = c.benchmark_group("campaign_cell");
    group.sample_size(10);
    group.bench_function("blogger_test1_x2", |b| {
        b.iter(|| {
            let mut cfg = CampaignConfig::paper(ServiceKind::Blogger, TestKind::Test1, TESTS);
            cfg.threads = 2;
            black_box(run_campaign(&cfg))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);
