//! Criterion benches for complete test instances: how long one paper test
//! takes against each service model, for both test designs. These are the
//! units the campaign multiplies by ~1,000.

use conprobe_harness::proto::TestKind;
use conprobe_harness::runner::{run_one_test, TestConfig};
use conprobe_services::ServiceKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_single_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_test");
    group.sample_size(10);
    for service in ServiceKind::ALL {
        for kind in [TestKind::Test1, TestKind::Test2] {
            let config = TestConfig::paper(service, kind);
            let label = format!("{}_{}", service.name().replace(' ', ""), kind)
                .replace(' ', "")
                .to_lowercase();
            group.bench_with_input(BenchmarkId::new("run", label), &config, |b, cfg| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_one_test(cfg, seed))
                })
            });
        }
    }
    group.finish();
}

fn bench_guarded_vs_raw(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_guard_overhead");
    group.sample_size(10);
    for guarded in [false, true] {
        let mut config = TestConfig::paper(ServiceKind::FacebookFeed, TestKind::Test1);
        config.use_guard = guarded;
        let name = if guarded { "guarded" } else { "raw" };
        group.bench_with_input(BenchmarkId::new("fbfeed_test1", name), &config, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_one_test(cfg, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_tests, bench_guarded_vs_raw);
criterion_main!(benches);
