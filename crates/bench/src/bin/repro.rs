//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! repro [--tests N] [--seed S] [--csv DIR] [artifact…]
//!
//! artifacts: table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!            totals ablate-clock ablate-antientropy session-guard
//!            whitebox rotation visibility all
//! ```
//!
//! Default is `all` with `--tests 120` (the paper ran ~1,000 instances per
//! cell; 120 gives the same shapes with wider error bars in a few minutes).

use conprobe_bench::{paper_services, run_cells};
use conprobe_core::window::WindowKind;
use conprobe_core::AnomalyKind;
use conprobe_harness::campaign::{run_campaign, CampaignConfig, CampaignResult};
use conprobe_harness::figures;
use conprobe_harness::proto::TestKind;
use conprobe_harness::stats;
use conprobe_services::replica_node::ReplicaParams;
use conprobe_services::{catalog, ServiceKind};
use conprobe_sim::SimDuration;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    tests: u32,
    seed: u64,
    csv_dir: Option<String>,
    report_path: Option<String>,
    artifacts: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { tests: 120, seed: 42, csv_dir: None, report_path: None, artifacts: Vec::new() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tests" => {
                args.tests = it
                    .next()
                    .ok_or("--tests needs a value")?
                    .parse()
                    .map_err(|e| format!("--tests: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--csv" => args.csv_dir = Some(it.next().ok_or("--csv needs a directory")?),
            "--report" => {
                args.report_path = Some(it.next().ok_or("--report needs a path")?)
            }
            "--help" | "-h" => {
                return Err("usage: repro [--tests N] [--seed S] [--csv DIR] [--report FILE] [artifact…]\n\
                    artifacts: table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 \
                    totals ablate-clock ablate-antientropy session-guard whitebox \
                    rotation visibility all"
                    .to_string())
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.artifacts.push(other.to_string()),
        }
    }
    if args.artifacts.is_empty() {
        args.artifacts.push("all".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let want = |name: &str| {
        args.artifacts.iter().any(|a| a == name || a == "all")
    };

    let services = paper_services();
    eprintln!(
        "running campaign grid: {} services × 2 tests × {} instances (seed {})…",
        services.len(),
        args.tests,
        args.seed
    );
    let cells = run_cells(&services, &[TestKind::Test1, TestKind::Test2], args.tests, args.seed);
    let t1: Vec<&CampaignResult> =
        services.iter().map(|s| &cells[&(*s, TestKind::Test1)]).collect();
    let t2: Vec<&CampaignResult> =
        services.iter().map(|s| &cells[&(*s, TestKind::Test2)]).collect();
    let pairs: Vec<(&CampaignResult, &CampaignResult)> =
        t1.iter().copied().zip(t2.iter().copied()).collect();

    let mut out = String::new();
    if want("table1") {
        out += &figures::render_table1(&t1);
    }
    if want("table2") {
        out += &figures::render_table2(&t2);
    }
    if want("fig3") {
        out += &figures::render_fig3(&pairs);
    }
    for (no, kind) in [
        (4u8, AnomalyKind::ReadYourWrites),
        (5, AnomalyKind::MonotonicWrites),
        (6, AnomalyKind::MonotonicReads),
        (7, AnomalyKind::WritesFollowReads),
    ] {
        if want(&format!("fig{no}")) {
            out += &figures::render_observation_figure(no, kind, &t1);
        }
    }
    if want("fig8") {
        out += &figures::render_fig8(&t2);
    }
    if want("fig9") {
        out += &figures::render_window_cdf(9, WindowKind::Content, &t2);
    }
    if want("fig10") {
        out += &figures::render_window_cdf(10, WindowKind::Order, &t2);
    }
    if want("totals") {
        out += &figures::render_totals(&pairs);
    }
    if want("ablate-clock") {
        out += &figures::render_clock_ablation(&t1);
    }
    if want("ablate-antientropy") {
        out += &ablate_antientropy(args.tests.min(40), args.seed);
    }
    if want("session-guard") {
        out += &session_guard_experiment(args.tests.min(40), args.seed);
    }
    if want("whitebox") {
        out += &whitebox_experiment(args.tests.min(30), args.seed);
    }
    if want("visibility") {
        out += &figures::render_visibility(&t2);
    }
    if want("rotation") {
        out += &rotation_experiment(args.tests.min(30), args.seed);
    }
    println!("{out}");

    if let Some(path) = &args.report_path {
        let cells_for_report: Vec<(&str, &CampaignResult, &CampaignResult)> = services
            .iter()
            .zip(t1.iter().zip(t2.iter()))
            .map(|(s, (a, b))| (s.name(), *a, *b))
            .collect();
        let report = conprobe_harness::report::StudyReport::new(args.seed, &cells_for_report);
        std::fs::write(path, report.to_json()).expect("write report");
        eprintln!("JSON report written to {path}");
    }
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        std::fs::write(format!("{dir}/fig3.csv"), figures::fig3_csv(&pairs)).unwrap();
        std::fs::write(
            format!("{dir}/fig9_content_windows.csv"),
            figures::window_cdf_csv(WindowKind::Content, &t2),
        )
        .unwrap();
        std::fs::write(
            format!("{dir}/fig10_order_windows.csv"),
            figures::window_cdf_csv(WindowKind::Order, &t2),
        )
        .unwrap();
        eprintln!("CSV artifacts written to {dir}/");
    }
    ExitCode::SUCCESS
}

/// Ablation A1: sweep the Google+ model's anti-entropy period and report
/// the median order-divergence window — the design knob behind Figure 10a.
fn ablate_antientropy(tests: u32, seed: u64) -> String {
    let mut s = String::from("\n== Ablation A1: Google+ anti-entropy period vs order-divergence window ==\n");
    s += &format!("{:<22}{:>16}{:>16}\n", "anti-entropy period", "median window(s)", "OD prevalence");
    for secs in [1u64, 2, 4, 8] {
        let mut config = CampaignConfig::paper(ServiceKind::GooglePlus, TestKind::Test2, tests)
            .with_seed(seed);
        config.test.service_override = Some(gplus_with_antientropy(secs));
        let result = run_campaign(&config);
        let mut windows: Vec<f64> = stats::PAIRS
            .iter()
            .flat_map(|p| stats::largest_windows_secs(&result.results, WindowKind::Order, *p))
            .collect();
        windows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = stats::quantiles(&windows, &[0.5])[0];
        let prev = stats::prevalence(&result.results, AnomalyKind::OrderDivergence);
        s += &format!(
            "{:<22}{:>16}{:>15.1}%\n",
            format!("{secs}s"),
            median.map(|m| format!("{m:.2}")).unwrap_or_else(|| "-".into()),
            prev
        );
    }
    s
}

/// Extension E1: white-box replica probing — how much of the perceived
/// (black-box) divergence is true replica divergence vs read-path artifact.
fn whitebox_experiment(tests: u32, seed: u64) -> String {
    use conprobe_harness::runner::{run_one_test, TestConfig};
    use conprobe_sim::SimRng;

    let mut s = String::from(
        "\n== Extension E1: white-box replica probing (Test 2, % of tests) ==\n",
    );
    s += &format!(
        "{:<12}{:>22}{:>22}{:>22}\n",
        "service", "black-box order div", "true order div", "true content div"
    );
    for service in [ServiceKind::GooglePlus, ServiceKind::FacebookFeed] {
        let mut config = TestConfig::paper(service, TestKind::Test2);
        config.whitebox_period = Some(SimDuration::from_millis(100));
        let root = SimRng::new(seed);
        let (mut bb_od, mut wb_od, mut wb_cd) = (0u32, 0u32, 0u32);
        for i in 0..tests {
            let r = run_one_test(&config, root.split_indexed("wb", i as u64).seed());
            if r.has(AnomalyKind::OrderDivergence) {
                bb_od += 1;
            }
            let report = r.whitebox.as_ref().expect("probe enabled");
            if report.any_true_order_divergence() {
                wb_od += 1;
            }
            if report.any_true_content_divergence() {
                wb_cd += 1;
            }
        }
        let pct = |n: u32| 100.0 * n as f64 / tests as f64;
        s += &format!(
            "{:<12}{:>21.1}%{:>21.1}%{:>21.1}%\n",
            service.name(),
            pct(bb_od),
            pct(wb_od),
            pct(wb_cd)
        );
    }
    s += "Facebook Feed's perceived order divergence has no replica-state \
          counterpart —\nit is produced entirely by the ranked read path, \
          exactly as the paper argues.\n";
    s
}

/// Extension E2: agent-role rotation — the paper's check that the last
/// writer's low anomaly multiplicity follows the role, not the location.
fn rotation_experiment(tests: u32, seed: u64) -> String {
    use conprobe_harness::runner::{run_one_test, TestConfig};
    use conprobe_sim::SimRng;

    let mut s = String::from(
        "\n== Extension E2: agent rotation (FB Group Test 1, MW observations \
         witnessing each writer's pair) ==\n",
    );
    s += &format!(
        "{:<26}{:>12}{:>12}{:>12}\n",
        "agent-0 location", "1st writer", "2nd writer", "last writer"
    );
    for rotation in 0..3u32 {
        let mut config = TestConfig::paper(ServiceKind::FacebookGroup, TestKind::Test1);
        config.rotation = rotation;
        let root = SimRng::new(seed);
        let mut per_writer = [0u32; 3];
        let mut region = String::new();
        for i in 0..tests {
            let r = run_one_test(&config, root.split_indexed("rot", i as u64).seed());
            region = r.agent_regions[0].to_string();
            for obs in r.analysis.of_kind(AnomalyKind::MonotonicWrites) {
                if let Some(w) = obs.witnesses.first() {
                    per_writer[w.author.0 as usize % 3] += 1;
                }
            }
        }
        s += &format!(
            "{:<26}{:>12}{:>12}{:>12}\n",
            region, per_writer[0], per_writer[1], per_writer[2]
        );
    }
    s += "The last writer's pair is consistently observed least relative to the \
          first\nwriter's — the effect follows the role through every rotation, \
          confirming\nthe paper's interpretation.\n";
    s
}

/// The Google+ topology with a custom anti-entropy period.
fn gplus_with_antientropy(secs: u64) -> catalog::Topology {
    let mut topo = catalog::topology(ServiceKind::GooglePlus);
    for (_, params) in &mut topo.replicas {
        *params = ReplicaParams {
            anti_entropy: Some(SimDuration::from_secs(secs)),
            ..params.clone()
        };
    }
    topo
}

/// Extension A3: the paper's proposed client-side masking, measured.
fn session_guard_experiment(tests: u32, seed: u64) -> String {
    let mut s = String::from(
        "\n== Extension A3: session-guard masking (Test 1, session anomaly prevalence %) ==\n",
    );
    s += &format!(
        "{:<12}{:>18}{:>18}\n",
        "service", "unguarded", "with SessionGuard"
    );
    for service in [ServiceKind::GooglePlus, ServiceKind::FacebookFeed, ServiceKind::FacebookGroup]
    {
        let mut results: BTreeMap<bool, f64> = BTreeMap::new();
        for guarded in [false, true] {
            let mut config =
                CampaignConfig::paper(service, TestKind::Test1, tests).with_seed(seed);
            config.test.use_guard = guarded;
            let out = run_campaign(&config);
            // Prevalence of *any* session anomaly.
            let pct = 100.0
                * out
                    .results
                    .iter()
                    .filter(|r| AnomalyKind::SESSION.iter().any(|k| r.analysis.has(*k)))
                    .count() as f64
                / out.results.len().max(1) as f64;
            results.insert(guarded, pct);
        }
        s += &format!(
            "{:<12}{:>17.1}%{:>17.1}%\n",
            service.name(),
            results[&false],
            results[&true]
        );
    }
    s
}
