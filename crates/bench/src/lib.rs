//! # conprobe-bench — benchmark & reproduction harness
//!
//! Two faces:
//!
//! * the `repro` binary regenerates **every table and figure** of the
//!   paper's evaluation (Tables I–II, Figures 3–10), plus the totals
//!   paragraph and our ablations (A1 anti-entropy sweep, A2 clock-sync
//!   error, A3 session-guard masking) — run `repro --help`;
//! * Criterion benches (`cargo bench`) time the moving parts: checkers on
//!   large traces, the simulator's event loop, a full test instance per
//!   service, and scaled-down versions of each figure's campaign.
//!
//! [`run_cells`] is the shared driver: it executes the campaign cell for
//! each (service, test) pair at a configurable scale and caches results for
//! the renderers.

use conprobe_harness::campaign::{run_campaign, CampaignConfig, CampaignResult};
use conprobe_harness::proto::TestKind;
use conprobe_services::ServiceKind;
use std::collections::BTreeMap;

/// Runs the (service × test-kind) campaign grid at `tests` instances per
/// cell, returning results keyed by `(service, kind)`.
pub fn run_cells(
    services: &[ServiceKind],
    kinds: &[TestKind],
    tests: u32,
    seed: u64,
) -> BTreeMap<(ServiceKind, TestKind), CampaignResult> {
    let mut out = BTreeMap::new();
    for &service in services {
        for &kind in kinds {
            let config = CampaignConfig::paper(service, kind, tests).with_seed(seed);
            out.insert((service, kind), run_campaign(&config));
        }
    }
    out
}

/// The paper's service order for tables/figures.
pub fn paper_services() -> Vec<ServiceKind> {
    ServiceKind::ALL.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cells_covers_the_grid() {
        let cells = run_cells(&[ServiceKind::Blogger], &[TestKind::Test1, TestKind::Test2], 1, 1);
        assert_eq!(cells.len(), 2);
        assert!(cells.contains_key(&(ServiceKind::Blogger, TestKind::Test1)));
        for r in cells.values() {
            assert_eq!(r.results.len(), 1);
        }
    }
}
