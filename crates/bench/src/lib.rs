//! # conprobe-bench — benchmark & reproduction harness
//!
//! Two faces:
//!
//! * the `repro` binary regenerates **every table and figure** of the
//!   paper's evaluation (Tables I–II, Figures 3–10), plus the totals
//!   paragraph and our ablations (A1 anti-entropy sweep, A2 clock-sync
//!   error, A3 session-guard masking) — run `repro --help`;
//! * Criterion benches (`cargo bench`) time the moving parts: checkers on
//!   large traces, the simulator's event loop, a full test instance per
//!   service, and scaled-down versions of each figure's campaign.
//!
//! [`run_cells`] is the shared driver: it executes the campaign cell for
//! each (service, test) pair at a configurable scale and caches results for
//! the renderers.

use conprobe_harness::campaign::{run_campaign_with_progress, CampaignConfig, CampaignResult};
use conprobe_harness::proto::TestKind;
use conprobe_services::ServiceKind;
use std::collections::BTreeMap;
use std::time::Instant;

/// Runs the (service × test-kind) campaign grid at `tests` instances per
/// cell, returning results keyed by `(service, kind)`.
///
/// Each cell reports per-test progress and throughput to stderr — the full
/// grid takes minutes at paper scale, and a silent run is indistinguishable
/// from a hung one.
pub fn run_cells(
    services: &[ServiceKind],
    kinds: &[TestKind],
    tests: u32,
    seed: u64,
) -> BTreeMap<(ServiceKind, TestKind), CampaignResult> {
    let mut out = BTreeMap::new();
    for &service in services {
        for &kind in kinds {
            let config = CampaignConfig::paper(service, kind, tests).with_seed(seed);
            let started = Instant::now();
            let progress = move |done: usize, total: usize| {
                let rate = done as f64 / started.elapsed().as_secs_f64().max(1e-9);
                eprint!("\r  {service} {kind}: {done}/{total} tests ({rate:.1} tests/sec)");
                if done == total {
                    eprintln!();
                }
            };
            out.insert((service, kind), run_campaign_with_progress(&config, Some(&progress)));
        }
    }
    out
}

/// The paper's service order for tables/figures.
pub fn paper_services() -> Vec<ServiceKind> {
    ServiceKind::ALL.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cells_covers_the_grid() {
        let cells = run_cells(&[ServiceKind::Blogger], &[TestKind::Test1, TestKind::Test2], 1, 1);
        assert_eq!(cells.len(), 2);
        assert!(cells.contains_key(&(ServiceKind::Blogger, TestKind::Test1)));
        for r in cells.values() {
            assert_eq!(r.results.len(), 1);
        }
    }
}
