//! The wire protocol: client requests, service responses, replication
//! traffic, and an application slot for harness-level messages.
//!
//! [`NetMsg`] is generic over `A`, the application message type. Service
//! nodes only ever look at the `Request`/`Repl` variants and pass everything
//! else by; the harness instantiates `A` with its coordinator↔agent
//! protocol (clock-sync probes, test control) so that *all* traffic —
//! measurement and measured — flows over the same simulated WAN, exactly as
//! in the paper's deployment.

use conprobe_sim::BrownoutMode;
use conprobe_store::{Post, PostId, StoredPost};
use std::collections::HashSet;

/// A client-visible operation, per the paper's model (§III): writes create
/// one event; reads return the current event sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Publish a post.
    Write(Post),
    /// Fetch the current sequence of posts.
    Read,
    /// White-box inspection: return the replica's *authoritative* snapshot,
    /// bypassing caches, secondary indices and ranking. Not available to
    /// measurement agents — this is the hook for the paper's future-work
    /// direction of "also considering white-box testing", used by the
    /// harness's replica probe to separate true replica divergence from
    /// read-path artifacts.
    Inspect,
}

/// A service's reply to a [`ClientOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// The write was accepted (this is the service's *acknowledgement*; the
    /// write may become visible later).
    WriteAck(PostId),
    /// The read result, in the order the service presents it.
    ReadOk(Vec<PostId>),
    /// The service's rate limit rejected the operation.
    Throttled,
}

/// Service-internal replication traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// Asynchronous propagation of freshly applied posts.
    Push(Vec<StoredPost>),
    /// Synchronous propagation: like `Push`, but the sender is waiting for
    /// a [`ReplMsg::PushAck`] before acknowledging a client write
    /// (majority-synchronous write mode).
    SyncPush {
        /// Correlation token for the ack.
        token: u64,
        /// The posts to apply.
        posts: Vec<StoredPost>,
    },
    /// Acknowledgement of a [`ReplMsg::SyncPush`].
    PushAck {
        /// The echoed correlation token.
        token: u64,
    },
    /// Quorum-read request: send me your current snapshot.
    SnapshotReq {
        /// Correlation token for the response.
        token: u64,
    },
    /// Quorum-read response.
    SnapshotResp {
        /// The echoed correlation token.
        token: u64,
        /// The responder's full stored state.
        posts: Vec<StoredPost>,
    },
    /// Anti-entropy request carrying the requester's digest.
    DigestReq(HashSet<PostId>),
    /// Anti-entropy response: the posts the requester was missing.
    DigestResp(Vec<StoredPost>),
    /// State-transfer request from a recovering quorum replica: send me a
    /// checksummed snapshot of your state plus your commit watermark.
    CatchupReq {
        /// Correlation token identifying one state-transfer round.
        token: u64,
    },
    /// State-transfer response: the responder's full state as `cpj1`
    /// length-prefixed, checksummed records (one stored post per frame,
    /// the campaign journal's record format), plus its commit watermark.
    /// The recovering replica verifies every frame before applying it
    /// and serves no reads until caught up past the highest watermark
    /// heard from a majority (read fencing).
    CatchupResp {
        /// The echoed correlation token.
        token: u64,
        /// The responder's commit watermark (posts it has applied).
        watermark: u64,
        /// Framed stored-post records (`conprobe_json::frame` encoding).
        frames: Vec<String>,
    },
    /// Ordered-log consensus traffic for the PBFT-style arm
    /// (pre-prepare/prepare/commit, view changes, state transfer) —
    /// opaque to every other replica family.
    Pbft(crate::pbft::PbftMsg),
}

/// Fault-injection control messages (harness instrumentation, not part of
/// the black-box client surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// Crash the replica: volatile state is lost, and every message is
    /// ignored until recovery.
    Crash,
    /// Restart the replica with empty state; periodic anti-entropy (if
    /// configured) re-fills it from the peers.
    Recover,
    /// Put the front door into a brownout: client requests are mistreated
    /// per the mode (throttle storm or delayed service) while replication
    /// and internal traffic continue normally.
    BrownoutStart(BrownoutMode),
    /// End the brownout; client requests are served normally again.
    BrownoutEnd,
}

/// Everything that flows over the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMsg<A> {
    /// Client → service front door.
    Request {
        /// Client-chosen correlation id, echoed in the response.
        req_id: u64,
        /// The operation.
        op: ClientOp,
    },
    /// Service → client.
    Response {
        /// The correlation id of the request this answers.
        req_id: u64,
        /// The outcome.
        result: OpResult,
    },
    /// Replica ↔ replica.
    Repl(ReplMsg),
    /// Fault injection (harness → replica).
    Control(ControlMsg),
    /// Application-level (harness) traffic; services ignore it.
    App(A),
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_sim::LocalTime;
    use conprobe_store::AuthorId;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let post = Post::new(PostId::new(AuthorId(1), 1), "hi", LocalTime::from_nanos(0));
        let m: NetMsg<()> = NetMsg::Request { req_id: 7, op: ClientOp::Write(post) };
        assert_eq!(m.clone(), m);
        let r: NetMsg<()> =
            NetMsg::Response { req_id: 7, result: OpResult::WriteAck(PostId::new(AuthorId(1), 1)) };
        assert_ne!(format!("{r:?}"), "");
    }

    #[test]
    fn app_slot_carries_arbitrary_payloads() {
        let m: NetMsg<&str> = NetMsg::App("clock-probe");
        match m {
            NetMsg::App(p) => assert_eq!(p, "clock-probe"),
            _ => panic!("wrong variant"),
        }
    }
}
