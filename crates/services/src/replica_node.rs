//! The generic service replica node.
//!
//! One configurable [`ReplicaNode`] implements all four service models; the
//! differences are captured by [`ReplicaParams`]:
//!
//! * **write path** — the replica acknowledges a write immediately (the
//!   paper's services all do) and *applies* it after [`ReplicaParams::apply_delay`].
//!   A bimodal delay (fast path + occasional slow path) reproduces Google+'s
//!   sporadic read-your-writes violations, where one slow write is missed by
//!   several consecutive reads.
//! * **replication** — applied posts are pushed to each peer after
//!   [`ReplicaParams::repl_delay`] (on top of network latency); optional
//!   periodic anti-entropy repairs anything a push missed (e.g. during a
//!   partition) and, when [`ReplicaParams::canonicalize_on_anti_entropy`] is
//!   set, re-sequences the log into canonical timestamp order — ending
//!   order-divergence windows the way Google+ visibly converges after
//!   seconds.
//! * **read path** — direct snapshot (Blogger, Facebook Group), stale
//!   front-end caches (Google+), or interest-ranked selection (Facebook
//!   Feed).
//!
//! Service infrastructure timestamps (`server_ts`) use true simulation time:
//! providers run internally synchronized clusters, and the paper's clock
//! problem concerned only the *measurement agents*, which this crate does
//! not model.

use crate::api::{ClientOp, NetMsg, OpResult, ReplMsg};
use conprobe_obs::{latency_bounds_nanos, Counter, Gauge, Histogram, ObsSink, Severity};
use conprobe_sim::{BrownoutMode, Context, Node, NodeId, SimDuration, SimRng, SimTime};
use conprobe_store::ranking::RankablePost;
use conprobe_store::{
    FeedRanker, OrderingPolicy, Post, PostId, RankingConfig, ReadCache, ReplicaCore,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A sampled delay distribution.
#[derive(Debug, Clone)]
pub enum DelayDist {
    /// Always zero.
    Zero,
    /// A constant delay.
    Fixed(SimDuration),
    /// `base + Exp(mean)`.
    Exp {
        /// Minimum delay.
        base: SimDuration,
        /// Mean of the exponential tail.
        mean: SimDuration,
    },
    /// Fast path of `fast`, except with probability `slow_prob` a slow path
    /// of `slow_base + Exp(slow_mean)`.
    Bimodal {
        /// Fast-path delay.
        fast: SimDuration,
        /// Probability of taking the slow path.
        slow_prob: f64,
        /// Slow-path minimum.
        slow_base: SimDuration,
        /// Slow-path exponential mean.
        slow_mean: SimDuration,
    },
}

impl DelayDist {
    /// Draws one delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            DelayDist::Zero => SimDuration::ZERO,
            DelayDist::Fixed(d) => *d,
            DelayDist::Exp { base, mean } => {
                *base + SimDuration::from_nanos(rng.gen_exp(mean.as_nanos() as f64) as u64)
            }
            DelayDist::Bimodal { fast, slow_prob, slow_base, slow_mean } => {
                if rng.gen_bool(*slow_prob) {
                    *slow_base
                        + SimDuration::from_nanos(rng.gen_exp(slow_mean.as_nanos() as f64) as u64)
                } else {
                    *fast
                }
            }
        }
    }
}

/// How reads are served.
#[derive(Debug, Clone)]
pub enum ReadPath {
    /// Directly from the replica's policy-ordered snapshot.
    Snapshot,
    /// Through one of `count` lazily refreshed front-end caches.
    Caches {
        /// Number of caches; each read hits a uniformly random one.
        count: usize,
        /// Cache refresh interval.
        refresh: SimDuration,
    },
    /// Mostly fresh snapshots, but a fraction of reads is served from a
    /// *secondary index* that picks up each post independently after an
    /// exponential per-item lag. Because per-item lags can invert
    /// visibility order, a stale read can show a later post while an
    /// earlier one (or a causal dependency) is still unindexed — the
    /// mechanism behind Google+'s sporadic read-your-writes,
    /// monotonic-reads and writes-follows-reads anomalies.
    SecondaryIndex {
        /// Probability that a read is served from the secondary index.
        stale_prob: f64,
        /// Per-post indexing lag distribution. Indexing is FIFO per author
        /// (a session's posts share a shard), so same-author posts never
        /// invert in the index; rare slow-path items produce the
        /// writes-follows-reads violations.
        lag: DelayDist,
    },
    /// Quorum reads: the front door collects snapshots from a majority of
    /// replicas (itself included), merges them in canonical timestamp
    /// order, and optionally writes repaired state back (read repair).
    /// Combined with [`WriteMode::SyncMajority`], overlapping quorums give
    /// read-your-writes without a single master.
    Quorum {
        /// Push merged state back to the replicas after each read.
        read_repair: bool,
    },
    /// Through the interest-ranking pipeline.
    Ranked(RankingConfig),
}

/// When a write is acknowledged to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Acknowledge as soon as the local replica accepts the write (all the
    /// paper's services behave this way).
    #[default]
    LocalAck,
    /// Apply locally, replicate synchronously, and acknowledge only after a
    /// majority of replicas (this one included) holds the write.
    SyncMajority,
    /// This replica is a read-only backup: client writes are forwarded to
    /// the primary (peer index 0 by convention of
    /// [`crate::catalog::topology_primary_backup`]), which acknowledges and
    /// replicates back asynchronously. Reads stay local — the classic
    /// primary-backup-with-local-reads design whose only anomaly is
    /// read-your-writes staleness.
    ForwardToPrimary,
}

/// Full configuration of a [`ReplicaNode`].
#[derive(Debug, Clone)]
pub struct ReplicaParams {
    /// Ordering policy for the replica's log.
    pub ordering: OrderingPolicy,
    /// Read path.
    pub read_path: ReadPath,
    /// Ack→apply delay for locally accepted writes.
    pub apply_delay: DelayDist,
    /// Extra per-peer delay before pushing an applied post.
    pub repl_delay: DelayDist,
    /// Anti-entropy period, if enabled.
    pub anti_entropy: Option<SimDuration>,
    /// Re-sequence into canonical timestamp order after each anti-entropy
    /// exchange.
    pub canonicalize_on_anti_entropy: bool,
    /// Re-sequence immediately when replicated posts arrive via push, so a
    /// remote write becomes visible already in canonical position and this
    /// replica never exposes a transient wrong order (the "order authority"
    /// behaviour of the Google+ model's DC-West).
    pub canonicalize_on_push: bool,
    /// Server-side per-client minimum interval between operations.
    pub rate_limit: Option<SimDuration>,
    /// Write acknowledgement discipline.
    pub write_mode: WriteMode,
}

impl Default for ReplicaParams {
    /// A strongly consistent single-replica configuration (the Blogger
    /// model): synchronous apply, snapshot reads, no peers needed.
    fn default() -> Self {
        ReplicaParams {
            ordering: OrderingPolicy::Arrival,
            read_path: ReadPath::Snapshot,
            apply_delay: DelayDist::Zero,
            repl_delay: DelayDist::Zero,
            anti_entropy: None,
            canonicalize_on_anti_entropy: false,
            canonicalize_on_push: false,
            rate_limit: None,
            write_mode: WriteMode::LocalAck,
        }
    }
}

const TOKEN_ANTI_ENTROPY: u64 = 0;
const TOKEN_KIND_APPLY: u64 = 1 << 62;
const TOKEN_KIND_PUSH: u64 = 2 << 62;
const TOKEN_KIND_DELAY: u64 = 3 << 62;
const TOKEN_KIND_MASK: u64 = 3 << 62;

/// A service replica (also the service's front door for its clients).
pub struct ReplicaNode {
    params: ReplicaParams,
    core: ReplicaCore,
    caches: Vec<ReadCache>,
    ranker: Option<FeedRanker>,
    visible_at: HashMap<PostId, SimTime>,
    indexed_at: HashMap<PostId, SimTime>,
    peers: Vec<NodeId>,
    pending_apply: HashMap<u64, (Post, SimTime)>,
    pending_push: HashMap<u64, (NodeId, Vec<conprobe_store::StoredPost>)>,
    next_token: u64,
    last_op_at: HashMap<NodeId, SimTime>,
    last_push_at: HashMap<NodeId, SimTime>,
    /// True while crashed (fault injection): all traffic is ignored.
    crashed: bool,
    /// Active front-door brownout (fault injection). Survives a crash: it
    /// models an external overload condition, not volatile process state.
    brownout: Option<BrownoutMode>,
    /// Client requests held by a [`BrownoutMode::Delay`] brownout, keyed by
    /// the hold timer's token.
    delayed_requests: HashMap<u64, (NodeId, u64, ClientOp)>,
    /// Sync-majority writes awaiting peer acknowledgements.
    pending_sync_writes: HashMap<u64, PendingSyncWrite>,
    /// Quorum reads awaiting peer snapshots.
    pending_quorum_reads: HashMap<u64, PendingQuorumRead>,
    /// Writes forwarded to the primary: forwarded req id → (client, its
    /// original req id).
    forwarded_writes: HashMap<u64, (NodeId, u64)>,
    /// Next forwarded request id (disjoint space from client ids).
    next_forward_req: u64,
    /// Counters for tests/diagnostics: (writes, reads, throttled).
    stats: (u64, u64, u64),
    /// Observability handles, resolved in `on_start` when the world has a
    /// sink installed. `None` means telemetry is off.
    obs: Option<ReplicaObs>,
}

impl std::fmt::Debug for ReplicaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("posts", &self.core.len())
            .field("peers", &self.peers)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Per-replica observability handles (see `conprobe-obs`), resolved once in
/// `on_start` from the world's sink. All metrics live under
/// `services.replica.n<id>.`. Recording is instrumentation only: it draws no
/// randomness and sends nothing, so replica behaviour is identical whether
/// or not a sink is installed.
struct ReplicaObs {
    sink: ObsSink,
    applied: Gauge,
    brownout: Gauge,
    anti_entropy_rounds: Counter,
    writes: Counter,
    reads: Counter,
    throttled: Counter,
    prop_lag: Histogram,
}

impl ReplicaObs {
    fn new(sink: &ObsSink, node: NodeId) -> Self {
        let prefix = format!("services.replica.{node}");
        let m = &sink.metrics;
        ReplicaObs {
            applied: m.gauge(&format!("{prefix}.applied")),
            brownout: m.gauge(&format!("{prefix}.brownout")),
            anti_entropy_rounds: m.counter(&format!("{prefix}.anti_entropy_rounds")),
            writes: m.counter(&format!("{prefix}.writes")),
            reads: m.counter(&format!("{prefix}.reads")),
            throttled: m.counter(&format!("{prefix}.throttled")),
            prop_lag: m
                .histogram(&format!("{prefix}.propagation_lag_nanos"), &latency_bounds_nanos()),
            sink: sink.clone(),
        }
    }

    /// Records one post replicated from a peer: propagation lag is how long
    /// after its origin `server_ts` it became visible here.
    fn replicated(&self, now: SimTime, server_ts: SimTime) {
        self.prop_lag.record(now.saturating_since(server_ts).as_nanos());
    }

    /// Logs a structured event; the message closure only runs when the
    /// log's filters would accept it.
    fn event(&self, now: SimTime, severity: Severity, message: impl FnOnce() -> String) {
        if self.sink.log.enabled(severity, "services") {
            self.sink.log.record(now.as_nanos(), severity, "services", message());
        }
    }
}

/// A client write waiting for majority acknowledgement.
struct PendingSyncWrite {
    client: NodeId,
    req_id: u64,
    post_id: PostId,
    acks_remaining: usize,
}

/// A client read waiting for a majority of snapshots.
struct PendingQuorumRead {
    client: NodeId,
    req_id: u64,
    responses_remaining: usize,
    merged: Vec<conprobe_store::StoredPost>,
    read_repair: bool,
}

impl ReplicaNode {
    /// Creates a replica with no peers (set them with
    /// [`ReplicaNode::set_peers`] once ids are known).
    pub fn new(params: ReplicaParams) -> Self {
        let caches = match &params.read_path {
            ReadPath::Caches { count, refresh } => {
                assert!(*count > 0, "cache read path needs at least one cache");
                (0..*count).map(|_| ReadCache::new(*refresh)).collect()
            }
            _ => Vec::new(),
        };
        let ranker = match &params.read_path {
            ReadPath::Ranked(cfg) => Some(FeedRanker::new(cfg.clone())),
            _ => None,
        };
        ReplicaNode {
            core: ReplicaCore::new(params.ordering),
            caches,
            ranker,
            params,
            visible_at: HashMap::new(),
            indexed_at: HashMap::new(),
            peers: Vec::new(),
            pending_apply: HashMap::new(),
            pending_push: HashMap::new(),
            next_token: 1,
            last_op_at: HashMap::new(),
            last_push_at: HashMap::new(),
            crashed: false,
            brownout: None,
            delayed_requests: HashMap::new(),
            pending_sync_writes: HashMap::new(),
            pending_quorum_reads: HashMap::new(),
            forwarded_writes: HashMap::new(),
            next_forward_req: 1 << 48,
            stats: (0, 0, 0),
            obs: None,
        }
    }

    /// Installs the peer replica set.
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    /// The configured peer replicas.
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Number of posts applied at this replica (diagnostics).
    pub fn applied(&self) -> usize {
        self.core.len()
    }

    /// Whether the replica is currently crashed (fault injection).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The active front-door brownout, if any (fault injection).
    pub fn brownout(&self) -> Option<BrownoutMode> {
        self.brownout
    }

    /// `(writes, reads, throttled)` request counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.stats
    }

    /// The replica's current policy-ordered snapshot (diagnostics).
    /// Shares the replica core's cached view.
    pub fn snapshot(&self) -> Arc<[PostId]> {
        self.core.snapshot()
    }

    /// Majority size over peers + self.
    fn majority(&self) -> usize {
        self.peers.len().div_ceil(2) + 1
    }

    fn fresh_token(&mut self, kind: u64) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        kind | t
    }

    fn throttled<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, from: NodeId) -> bool {
        let Some(min) = self.params.rate_limit else { return false };
        let now = ctx.true_now();
        let throttle = match self.last_op_at.get(&from) {
            Some(last) => now.saturating_since(*last) < min,
            None => false,
        };
        if !throttle {
            self.last_op_at.insert(from, now);
        }
        throttle
    }

    fn apply_and_replicate<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        post: Post,
        server_ts: SimTime,
    ) {
        let now = ctx.true_now();
        let Some(stored) = self.core.apply_new(post, server_ts).cloned() else {
            return; // duplicate
        };
        self.record_visibility(stored.id(), now, ctx.rng());
        // By index: the loop body mutates `self` (push timers, tokens), so
        // it cannot hold a borrow of `self.peers` — but it doesn't need to
        // clone the peer list every write either.
        for i in 0..self.peers.len() {
            let peer = self.peers[i];
            let delay = self.params.repl_delay.sample(ctx.rng());
            if delay.is_zero() {
                ctx.send_ordered(peer, NetMsg::Repl(ReplMsg::Push(vec![stored.clone()])));
            } else {
                // The replication stream to a peer is a single logical
                // connection: a later post's (randomly shorter) delay must
                // not let it overtake an earlier one still in flight.
                let mut dispatch_at = now + delay;
                let last = self.last_push_at.entry(peer).or_insert(SimTime::ZERO);
                if dispatch_at <= *last {
                    dispatch_at = *last + SimDuration::from_nanos(1);
                }
                *last = dispatch_at;
                let token = self.fresh_token(TOKEN_KIND_PUSH);
                self.pending_push.insert(token, (peer, vec![stored.clone()]));
                ctx.set_timer(dispatch_at.saturating_since(now), token);
            }
        }
    }

    /// Records when a post became visible locally and samples its
    /// secondary-index pickup time.
    fn record_visibility(&mut self, id: PostId, now: SimTime, rng: &mut SimRng) {
        self.visible_at.insert(id, now);
        if let ReadPath::SecondaryIndex { lag, .. } = &self.params.read_path {
            let mut at = now + lag.sample(rng);
            // FIFO per author: the index never shows a session's later post
            // before an earlier one.
            if id.seq > 1 {
                if let Some(prev) = self.indexed_at.get(&PostId::new(id.author, id.seq - 1)) {
                    if at <= *prev {
                        at = *prev + SimDuration::from_nanos(1);
                    }
                }
            }
            self.indexed_at.insert(id, at);
        }
    }

    /// Majority-synchronous write path: apply locally, replicate to every
    /// peer, acknowledge once a majority (incl. this node) holds the post.
    fn sync_majority_write<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        client: NodeId,
        req_id: u64,
        post: Post,
        server_ts: SimTime,
    ) {
        let now = ctx.true_now();
        let post_id = post.id;
        if self.core.apply_new(post, server_ts).is_some() {
            self.visible_at.insert(post_id, now);
        }
        let acks_remaining = self.majority().saturating_sub(1);
        if acks_remaining == 0 {
            ctx.send(client, NetMsg::Response { req_id, result: OpResult::WriteAck(post_id) });
            return;
        }
        let token = self.fresh_token(TOKEN_KIND_PUSH);
        let payload = self.core.missing_from(&std::collections::HashSet::new());
        let mine: Vec<conprobe_store::StoredPost> =
            payload.into_iter().filter(|p| p.id() == post_id).collect();
        self.pending_sync_writes
            .insert(token, PendingSyncWrite { client, req_id, post_id, acks_remaining });
        for &peer in &self.peers {
            ctx.send_ordered(peer, NetMsg::Repl(ReplMsg::SyncPush { token, posts: mine.clone() }));
        }
    }

    /// Starts a quorum read: collect snapshots from a majority.
    fn begin_quorum_read<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        client: NodeId,
        req_id: u64,
        read_repair: bool,
    ) {
        let responses_remaining = self.majority().saturating_sub(1);
        // Owned: the merge below extends this with peer snapshots.
        let merged = self.core.snapshot_posts().to_vec();
        if responses_remaining == 0 {
            let seq = quorum_order(merged);
            ctx.send(client, NetMsg::Response { req_id, result: OpResult::ReadOk(seq) });
            return;
        }
        let token = self.fresh_token(TOKEN_KIND_PUSH);
        self.pending_quorum_reads.insert(
            token,
            PendingQuorumRead { client, req_id, responses_remaining, merged, read_repair },
        );
        for &peer in &self.peers {
            ctx.send(peer, NetMsg::Repl(ReplMsg::SnapshotReq { token }));
        }
    }

    /// Accumulates quorum-read snapshots; answers the client (and performs
    /// read repair) when a majority has reported.
    fn on_snapshot_resp<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        token: u64,
        posts: Vec<conprobe_store::StoredPost>,
    ) {
        let done = {
            let Some(pending) = self.pending_quorum_reads.get_mut(&token) else {
                return; // read already answered with an earlier majority
            };
            for p in posts {
                if !pending.merged.iter().any(|q| q.id() == p.id()) {
                    pending.merged.push(p);
                }
            }
            pending.responses_remaining = pending.responses_remaining.saturating_sub(1);
            pending.responses_remaining == 0
        };
        if done {
            let p = self.pending_quorum_reads.remove(&token).expect("just seen");
            let now = ctx.true_now();
            if p.read_repair {
                // Absorb anything we were missing and push the merged set
                // to every peer.
                for stored in &p.merged {
                    let id = stored.id();
                    let origin_ts = stored.server_ts;
                    if self.core.apply_replicated(stored.clone()) {
                        self.record_visibility(id, now, ctx.rng());
                        if let Some(obs) = &self.obs {
                            obs.replicated(now, origin_ts);
                        }
                    }
                }
                for &peer in &self.peers {
                    ctx.send_ordered(peer, NetMsg::Repl(ReplMsg::Push(p.merged.clone())));
                }
            }
            let seq = quorum_order(p.merged);
            ctx.send(
                p.client,
                NetMsg::Response { req_id: p.req_id, result: OpResult::ReadOk(seq) },
            );
        }
    }

    /// Serves one client request: rate-limit check, then the op itself.
    /// Called both on message receipt and when a brownout-held request's
    /// delay expires.
    fn handle_request<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from: NodeId,
        req_id: u64,
        op: ClientOp,
    ) {
        // White-box inspection is harness instrumentation, exempt from the
        // service's public rate limit.
        if !matches!(op, ClientOp::Inspect) && self.throttled(ctx, from) {
            self.stats.2 += 1;
            if let Some(obs) = &self.obs {
                obs.throttled.inc();
            }
            ctx.send(from, NetMsg::Response { req_id, result: OpResult::Throttled });
            return;
        }
        match op {
            ClientOp::Write(post) => {
                self.stats.0 += 1;
                if let Some(obs) = &self.obs {
                    obs.writes.inc();
                }
                let server_ts = ctx.true_now();
                let id = post.id;
                match self.params.write_mode {
                    WriteMode::LocalAck => {
                        // Acknowledge immediately; visibility follows later.
                        ctx.send(from, NetMsg::Response { req_id, result: OpResult::WriteAck(id) });
                        let delay = self.params.apply_delay.sample(ctx.rng());
                        if delay.is_zero() {
                            self.apply_and_replicate(ctx, post, server_ts);
                        } else {
                            let token = self.fresh_token(TOKEN_KIND_APPLY);
                            self.pending_apply.insert(token, (post, server_ts));
                            ctx.set_timer(delay, token);
                        }
                    }
                    WriteMode::SyncMajority => {
                        self.sync_majority_write(ctx, from, req_id, post, server_ts);
                    }
                    WriteMode::ForwardToPrimary => {
                        let Some(primary) = self.peers.first().copied() else {
                            // No primary configured: degrade to a local ack
                            // so the client is not left hanging.
                            ctx.send(
                                from,
                                NetMsg::Response { req_id, result: OpResult::WriteAck(id) },
                            );
                            self.apply_and_replicate(ctx, post, server_ts);
                            return;
                        };
                        let fwd = self.next_forward_req;
                        self.next_forward_req += 1;
                        self.forwarded_writes.insert(fwd, (from, req_id));
                        ctx.send_ordered(
                            primary,
                            NetMsg::Request { req_id: fwd, op: ClientOp::Write(post) },
                        );
                    }
                }
            }
            ClientOp::Read => {
                self.stats.1 += 1;
                if let Some(obs) = &self.obs {
                    obs.reads.inc();
                }
                if let ReadPath::Quorum { read_repair } = self.params.read_path {
                    self.begin_quorum_read(ctx, from, req_id, read_repair);
                } else {
                    let seq = self.serve_read(ctx);
                    ctx.send(from, NetMsg::Response { req_id, result: OpResult::ReadOk(seq) });
                }
            }
            ClientOp::Inspect => {
                // Authoritative state, bypassing every read path.
                let seq = self.core.snapshot().to_vec();
                ctx.send(from, NetMsg::Response { req_id, result: OpResult::ReadOk(seq) });
            }
        }
    }

    fn serve_read<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>) -> Vec<PostId> {
        let now = ctx.true_now();
        match &self.params.read_path {
            ReadPath::Snapshot => self.core.snapshot().to_vec(),
            ReadPath::Caches { count, .. } => {
                let idx = if *count == 1 { 0 } else { ctx.rng().gen_range(0..*count) };
                if self.caches[idx].is_stale(now) {
                    let snap = self.core.snapshot();
                    self.caches[idx].refresh(snap, now);
                }
                self.caches[idx].read().to_vec()
            }
            ReadPath::SecondaryIndex { stale_prob, .. } => {
                if *stale_prob > 0.0 && ctx.rng().gen_bool(*stale_prob) {
                    self.core
                        .snapshot_posts()
                        .iter()
                        .filter(|p| {
                            self.indexed_at.get(&p.id()).copied().unwrap_or(p.server_ts) <= now
                        })
                        .map(|p| p.id())
                        .collect()
                } else {
                    self.core.snapshot().to_vec()
                }
            }
            // Quorum reads are answered asynchronously in
            // `begin_quorum_read`; serve_read is never called for them.
            ReadPath::Quorum { .. } => self.core.snapshot().to_vec(),
            ReadPath::Ranked(_) => {
                let ranker = self.ranker.as_ref().expect("ranked path has ranker");
                let posts: Vec<RankablePost> = self
                    .core
                    .snapshot_posts()
                    .iter()
                    .map(|stored| {
                        let visible_at =
                            self.visible_at.get(&stored.id()).copied().unwrap_or(stored.server_ts);
                        RankablePost { stored: stored.clone(), visible_at }
                    })
                    .collect();
                ranker.read(&posts, now, ctx.rng())
            }
        }
    }
}

impl<A: Send + 'static> Node<NetMsg<A>> for ReplicaNode {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg<A>>) {
        self.obs = ctx.obs().map(|sink| ReplicaObs::new(sink, ctx.node_id()));
        if let Some(period) = self.params.anti_entropy {
            // Random phase so replicas don't exchange in lock-step.
            let phase = SimDuration::from_nanos(ctx.rng().gen_range(0..period.as_nanos().max(1)));
            ctx.set_timer(phase, TOKEN_ANTI_ENTROPY);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg<A>>, from: NodeId, msg: NetMsg<A>) {
        if let NetMsg::Control(ctl) = &msg {
            // Control transitions are idempotent: the fault driver
            // retransmits them over the (possibly lossy) network, so a
            // duplicate must neither re-fire side effects nor re-log.
            match ctl {
                crate::api::ControlMsg::Crash if !self.crashed => {
                    // Volatile state is lost wholesale; in-flight applies,
                    // pushes and held client requests are dropped with it.
                    self.core = ReplicaCore::new(self.params.ordering);
                    self.visible_at.clear();
                    self.indexed_at.clear();
                    self.pending_apply.clear();
                    self.pending_push.clear();
                    self.delayed_requests.clear();
                    self.last_op_at.clear();
                    self.crashed = true;
                    if let Some(obs) = &self.obs {
                        obs.applied.set(0.0);
                        let node = ctx.node_id();
                        obs.event(ctx.true_now(), Severity::Warn, || {
                            format!("replica {node} crashed")
                        });
                    }
                }
                crate::api::ControlMsg::Recover if self.crashed => {
                    self.crashed = false;
                    if let Some(obs) = &self.obs {
                        let node = ctx.node_id();
                        obs.event(ctx.true_now(), Severity::Info, || {
                            format!("replica {node} recovered")
                        });
                    }
                    // Kick anti-entropy immediately so peers re-fill us
                    // without waiting for the next periodic round.
                    if self.params.anti_entropy.is_some() {
                        let digest = self.core.digest();
                        for &peer in &self.peers {
                            ctx.send(peer, NetMsg::Repl(ReplMsg::DigestReq(digest.clone())));
                        }
                    }
                }
                crate::api::ControlMsg::BrownoutStart(mode) if self.brownout != Some(*mode) => {
                    self.brownout = Some(*mode);
                    if let Some(obs) = &self.obs {
                        obs.brownout.set(1.0);
                        let node = ctx.node_id();
                        obs.event(ctx.true_now(), Severity::Warn, || {
                            format!("replica {node} brownout start: {mode:?}")
                        });
                    }
                }
                crate::api::ControlMsg::BrownoutEnd if self.brownout.is_some() => {
                    self.brownout = None;
                    if let Some(obs) = &self.obs {
                        obs.brownout.set(0.0);
                        let node = ctx.node_id();
                        obs.event(ctx.true_now(), Severity::Info, || {
                            format!("replica {node} brownout end")
                        });
                    }
                }
                _ => {} // duplicate delivery of an already-applied transition
            }
            return;
        }
        if self.crashed {
            return; // a crashed node neither serves nor replicates
        }
        match msg {
            NetMsg::Request { req_id, op } => {
                // A browned-out front door mistreats client traffic before
                // any normal processing; white-box inspection stays exempt.
                if !matches!(op, ClientOp::Inspect) {
                    match self.brownout {
                        Some(BrownoutMode::ThrottleStorm) => {
                            self.stats.2 += 1;
                            if let Some(obs) = &self.obs {
                                obs.throttled.inc();
                            }
                            ctx.send(
                                from,
                                NetMsg::Response { req_id, result: OpResult::Throttled },
                            );
                            return;
                        }
                        Some(BrownoutMode::Delay(hold)) => {
                            let token = self.fresh_token(TOKEN_KIND_DELAY);
                            self.delayed_requests.insert(token, (from, req_id, op));
                            ctx.set_timer(hold, token);
                            return;
                        }
                        None => {}
                    }
                }
                self.handle_request(ctx, from, req_id, op);
            }
            NetMsg::Repl(ReplMsg::SyncPush { token, posts }) => {
                let now = ctx.true_now();
                for stored in posts {
                    let id = stored.id();
                    let origin_ts = stored.server_ts;
                    if self.core.apply_replicated(stored) {
                        self.record_visibility(id, now, ctx.rng());
                        if let Some(obs) = &self.obs {
                            obs.replicated(now, origin_ts);
                        }
                    }
                }
                ctx.send_ordered(from, NetMsg::Repl(ReplMsg::PushAck { token }));
            }
            NetMsg::Repl(ReplMsg::PushAck { token }) => {
                let done = {
                    let Some(pending) = self.pending_sync_writes.get_mut(&token) else {
                        return; // late ack beyond the majority
                    };
                    pending.acks_remaining = pending.acks_remaining.saturating_sub(1);
                    pending.acks_remaining == 0
                };
                if done {
                    let p = self.pending_sync_writes.remove(&token).expect("just seen");
                    ctx.send(
                        p.client,
                        NetMsg::Response {
                            req_id: p.req_id,
                            result: OpResult::WriteAck(p.post_id),
                        },
                    );
                }
            }
            NetMsg::Repl(ReplMsg::SnapshotReq { token }) => {
                let posts = self.core.snapshot_posts().to_vec();
                ctx.send(from, NetMsg::Repl(ReplMsg::SnapshotResp { token, posts }));
            }
            NetMsg::Repl(ReplMsg::SnapshotResp { token, posts }) => {
                self.on_snapshot_resp(ctx, token, posts);
            }
            NetMsg::Repl(ReplMsg::Push(posts)) => {
                let now = ctx.true_now();
                let mut applied_any = false;
                for stored in posts {
                    let id = stored.id();
                    let origin_ts = stored.server_ts;
                    if self.core.apply_replicated(stored) {
                        self.record_visibility(id, now, ctx.rng());
                        if let Some(obs) = &self.obs {
                            obs.replicated(now, origin_ts);
                        }
                        applied_any = true;
                    }
                }
                if applied_any && self.params.canonicalize_on_push {
                    self.core.resequence_canonical();
                }
            }
            NetMsg::Repl(ReplMsg::DigestReq(digest)) => {
                let missing = self.core.missing_from(&digest);
                ctx.send_ordered(from, NetMsg::Repl(ReplMsg::DigestResp(missing)));
            }
            NetMsg::Repl(ReplMsg::DigestResp(posts)) => {
                let now = ctx.true_now();
                for stored in posts {
                    let id = stored.id();
                    let origin_ts = stored.server_ts;
                    if self.core.apply_replicated(stored) {
                        self.record_visibility(id, now, ctx.rng());
                        if let Some(obs) = &self.obs {
                            obs.replicated(now, origin_ts);
                        }
                    }
                }
                if self.params.canonicalize_on_anti_entropy {
                    self.core.resequence_canonical();
                }
            }
            // State transfer and ordered-log consensus are the strong
            // arms' protocols ([`crate::quorum::QuorumReplica`],
            // [`crate::pbft::PbftReplica`]); the weak catalog replicas
            // recover via anti-entropy instead and ignore them.
            NetMsg::Repl(ReplMsg::CatchupReq { .. })
            | NetMsg::Repl(ReplMsg::CatchupResp { .. })
            | NetMsg::Repl(ReplMsg::Pbft(_)) => {}
            // A response reaching a replica is the primary answering a
            // forwarded write: relay it to the original client.
            NetMsg::Response { req_id, result } => {
                if let Some((client, orig_req)) = self.forwarded_writes.remove(&req_id) {
                    ctx.send(client, NetMsg::Response { req_id: orig_req, result });
                }
            }
            // App traffic (and Control, handled above) is not for replicas.
            NetMsg::App(_) | NetMsg::Control(_) => {}
        }
        if let Some(obs) = &self.obs {
            obs.applied.set(self.core.len() as f64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg<A>>, token: u64) {
        if self.crashed {
            // Keep the anti-entropy heartbeat alive so recovery works.
            if token == TOKEN_ANTI_ENTROPY {
                if let Some(period) = self.params.anti_entropy {
                    ctx.set_timer(period, TOKEN_ANTI_ENTROPY);
                }
            }
            return;
        }
        if token == TOKEN_ANTI_ENTROPY {
            if let Some(obs) = &self.obs {
                obs.anti_entropy_rounds.inc();
            }
            // Borrow the peer list: the per-tick clone was pure overhead.
            let digest = self.core.digest();
            for &peer in &self.peers {
                ctx.send(peer, NetMsg::Repl(ReplMsg::DigestReq(digest.clone())));
            }
            if let Some(period) = self.params.anti_entropy {
                ctx.set_timer(period, TOKEN_ANTI_ENTROPY);
            }
            return;
        }
        match token & TOKEN_KIND_MASK {
            TOKEN_KIND_APPLY => {
                if let Some((post, server_ts)) = self.pending_apply.remove(&token) {
                    self.apply_and_replicate(ctx, post, server_ts);
                }
            }
            TOKEN_KIND_PUSH => {
                if let Some((peer, posts)) = self.pending_push.remove(&token) {
                    ctx.send_ordered(peer, NetMsg::Repl(ReplMsg::Push(posts)));
                }
            }
            TOKEN_KIND_DELAY => {
                // A brownout-held request's delay expired: serve it now,
                // whether or not the brownout has since ended.
                if let Some((client, req_id, op)) = self.delayed_requests.remove(&token) {
                    self.handle_request(ctx, client, req_id, op);
                }
            }
            _ => {}
        }
        if let Some(obs) = &self.obs {
            obs.applied.set(self.core.len() as f64);
        }
    }
}

/// Canonical presentation order for quorum reads: exact server timestamp,
/// ties by post id — identical at every coordinator, so quorum systems
/// never exhibit order divergence.
pub(crate) fn quorum_order(mut posts: Vec<conprobe_store::StoredPost>) -> Vec<PostId> {
    OrderingPolicy::exact_timestamp().sort(&mut posts);
    posts.into_iter().map(|p| p.id()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_sim::net::Region;
    use conprobe_sim::{LocalClock, LocalTime, World, WorldConfig};
    use conprobe_store::AuthorId;

    type Msg = NetMsg<()>;

    /// Minimal scripted client: sends a fixed schedule of ops and records
    /// responses.
    struct Script {
        target: NodeId,
        schedule: Vec<(SimDuration, ClientOp)>,
        responses: Vec<(u64, OpResult)>,
    }
    impl Script {
        fn new(target: NodeId, schedule: Vec<(SimDuration, ClientOp)>) -> Self {
            Script { target, schedule, responses: Vec::new() }
        }
    }
    impl Node<Msg> for Script {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for (i, (delay, _)) in self.schedule.iter().enumerate() {
                ctx.set_timer(*delay, i as u64);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let NetMsg::Response { req_id, result } = msg {
                self.responses.push((req_id, result));
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
            let op = self.schedule[token as usize].1.clone();
            ctx.send(self.target, NetMsg::Request { req_id: token, op });
        }
    }

    fn post(author: u32, seq: u32) -> Post {
        Post::new(PostId::new(AuthorId(author), seq), "m", LocalTime::from_nanos(0))
    }

    fn world() -> World<Msg> {
        World::new(WorldConfig::default(), 11)
    }

    fn add_replica(w: &mut World<Msg>, region: Region, params: ReplicaParams) -> NodeId {
        w.add_node_with_clock(region, LocalClock::perfect(), Box::new(ReplicaNode::new(params)))
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut w = world();
        let replica = add_replica(&mut w, Region::Virginia, ReplicaParams::default());
        let client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                replica,
                vec![
                    (SimDuration::from_millis(0), ClientOp::Write(post(1, 1))),
                    (SimDuration::from_millis(500), ClientOp::Read),
                ],
            )),
        );
        w.run_until_idle();
        let s = w.node_as::<Script>(client).unwrap();
        assert_eq!(s.responses.len(), 2);
        assert_eq!(s.responses[0].1, OpResult::WriteAck(PostId::new(AuthorId(1), 1)));
        assert_eq!(s.responses[1].1, OpResult::ReadOk(vec![PostId::new(AuthorId(1), 1)]));
    }

    #[test]
    fn duplicate_write_is_idempotent() {
        let mut w = world();
        let replica = add_replica(&mut w, Region::Virginia, ReplicaParams::default());
        let client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                replica,
                vec![
                    (SimDuration::from_millis(0), ClientOp::Write(post(1, 1))),
                    (SimDuration::from_millis(200), ClientOp::Write(post(1, 1))),
                    (SimDuration::from_millis(500), ClientOp::Read),
                ],
            )),
        );
        w.run_until_idle();
        let s = w.node_as::<Script>(client).unwrap();
        let last = &s.responses.last().unwrap().1;
        assert_eq!(*last, OpResult::ReadOk(vec![PostId::new(AuthorId(1), 1)]));
    }

    #[test]
    fn delayed_apply_causes_read_your_writes_gap() {
        let mut w = world();
        let params = ReplicaParams {
            apply_delay: DelayDist::Fixed(SimDuration::from_secs(2)),
            ..ReplicaParams::default()
        };
        let replica = add_replica(&mut w, Region::Virginia, params);
        let client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                replica,
                vec![
                    (SimDuration::from_millis(0), ClientOp::Write(post(1, 1))),
                    (SimDuration::from_millis(500), ClientOp::Read), // too early
                    (SimDuration::from_secs(4), ClientOp::Read),     // after apply
                ],
            )),
        );
        w.run_until_idle();
        let s = w.node_as::<Script>(client).unwrap();
        assert_eq!(s.responses[1].1, OpResult::ReadOk(vec![]), "write acked but invisible");
        assert_eq!(s.responses[2].1, OpResult::ReadOk(vec![PostId::new(AuthorId(1), 1)]));
    }

    #[test]
    fn push_replication_propagates_to_peer() {
        let mut w = world();
        let params = ReplicaParams {
            repl_delay: DelayDist::Fixed(SimDuration::from_millis(100)),
            ..ReplicaParams::default()
        };
        let r0 = add_replica(&mut w, Region::Virginia, params.clone());
        let r1 = add_replica(&mut w, Region::Tokyo, params);
        w.node_as_mut::<ReplicaNode>(r0).unwrap().set_peers(vec![r1]);
        w.node_as_mut::<ReplicaNode>(r1).unwrap().set_peers(vec![r0]);
        let _client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                r0,
                vec![(SimDuration::from_millis(0), ClientOp::Write(post(1, 1)))],
            )),
        );
        w.run_until_idle();
        assert_eq!(w.node_as::<ReplicaNode>(r1).unwrap().applied(), 1);
    }

    #[test]
    fn anti_entropy_repairs_missing_posts() {
        let mut w = world();
        // No push replication at all: only anti-entropy moves data.
        let params = ReplicaParams {
            repl_delay: DelayDist::Fixed(SimDuration::from_secs(3600)), // effectively never
            anti_entropy: Some(SimDuration::from_secs(1)),
            ..ReplicaParams::default()
        };
        let r0 = add_replica(&mut w, Region::Virginia, params.clone());
        let r1 = add_replica(&mut w, Region::Tokyo, params);
        w.node_as_mut::<ReplicaNode>(r0).unwrap().set_peers(vec![r1]);
        w.node_as_mut::<ReplicaNode>(r1).unwrap().set_peers(vec![r0]);
        let _client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                r0,
                vec![(SimDuration::from_millis(0), ClientOp::Write(post(1, 1)))],
            )),
        );
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.node_as::<ReplicaNode>(r1).unwrap().applied(), 1);
    }

    #[test]
    fn rate_limit_throttles_rapid_requests() {
        let mut w = world();
        let params = ReplicaParams {
            rate_limit: Some(SimDuration::from_millis(300)),
            ..ReplicaParams::default()
        };
        let replica = add_replica(&mut w, Region::Virginia, params);
        let client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                replica,
                vec![
                    (SimDuration::from_millis(0), ClientOp::Read),
                    (SimDuration::from_millis(50), ClientOp::Read), // too fast
                    (SimDuration::from_millis(500), ClientOp::Read),
                ],
            )),
        );
        w.run_until_idle();
        let s = w.node_as::<Script>(client).unwrap();
        let throttled =
            s.responses.iter().filter(|(_, r)| matches!(r, OpResult::Throttled)).count();
        assert_eq!(throttled, 1);
        let (_, _, t) = w.node_as::<ReplicaNode>(replica).unwrap().stats();
        assert_eq!(t, 1);
    }

    #[test]
    fn cached_reads_lag_behind_applies() {
        let mut w = world();
        let params = ReplicaParams {
            read_path: ReadPath::Caches { count: 1, refresh: SimDuration::from_secs(10) },
            ..ReplicaParams::default()
        };
        let replica = add_replica(&mut w, Region::Virginia, params);
        let client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                replica,
                vec![
                    (SimDuration::from_millis(0), ClientOp::Read), // warms the cache (empty)
                    (SimDuration::from_millis(500), ClientOp::Write(post(1, 1))),
                    (SimDuration::from_secs(2), ClientOp::Read), // cache still fresh → stale data
                    (SimDuration::from_secs(15), ClientOp::Read), // cache expired → sees post
                ],
            )),
        );
        w.run_until_idle();
        let s = w.node_as::<Script>(client).unwrap();
        assert_eq!(s.responses[2].1, OpResult::ReadOk(vec![]), "served from stale cache");
        assert_eq!(s.responses[3].1, OpResult::ReadOk(vec![PostId::new(AuthorId(1), 1)]));
    }

    #[test]
    fn ranked_reads_hide_unindexed_posts() {
        let mut w = world();
        let params = ReplicaParams {
            read_path: ReadPath::Ranked(RankingConfig {
                noise_std_secs: 0.0,
                top_k: 10,
                omit_prob: 0.0,
                index_delay: SimDuration::from_secs(2),
            }),
            ..ReplicaParams::default()
        };
        let replica = add_replica(&mut w, Region::Virginia, params);
        let client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                replica,
                vec![
                    (SimDuration::from_millis(0), ClientOp::Write(post(1, 1))),
                    (SimDuration::from_millis(500), ClientOp::Read), // not yet indexed
                    (SimDuration::from_secs(5), ClientOp::Read),     // indexed
                ],
            )),
        );
        w.run_until_idle();
        let s = w.node_as::<Script>(client).unwrap();
        assert_eq!(s.responses[1].1, OpResult::ReadOk(vec![]));
        assert_eq!(s.responses[2].1, OpResult::ReadOk(vec![PostId::new(AuthorId(1), 1)]));
    }

    #[test]
    fn facebook_group_ordering_reverses_same_second_pair() {
        let mut w = world();
        let params = ReplicaParams {
            ordering: OrderingPolicy::facebook_group(),
            ..ReplicaParams::default()
        };
        let replica = add_replica(&mut w, Region::Virginia, params);
        let client = w.add_node(
            Region::Oregon,
            Box::new(Script::new(
                replica,
                vec![
                    // Both writes land within the same wall-clock second.
                    (SimDuration::from_millis(100), ClientOp::Write(post(1, 1))),
                    (SimDuration::from_millis(400), ClientOp::Write(post(1, 2))),
                    (SimDuration::from_secs(2), ClientOp::Read),
                ],
            )),
        );
        w.run_until_idle();
        let s = w.node_as::<Script>(client).unwrap();
        assert_eq!(
            s.responses[2].1,
            OpResult::ReadOk(vec![PostId::new(AuthorId(1), 2), PostId::new(AuthorId(1), 1)]),
            "same-second writes appear reversed — the paper's FB Group quirk"
        );
    }

    #[test]
    fn delay_dist_sampling() {
        let mut rng = SimRng::new(1);
        assert!(DelayDist::Zero.sample(&mut rng).is_zero());
        assert_eq!(
            DelayDist::Fixed(SimDuration::from_millis(5)).sample(&mut rng),
            SimDuration::from_millis(5)
        );
        let exp = DelayDist::Exp {
            base: SimDuration::from_millis(10),
            mean: SimDuration::from_millis(5),
        };
        for _ in 0..100 {
            assert!(exp.sample(&mut rng) >= SimDuration::from_millis(10));
        }
        let bimodal = DelayDist::Bimodal {
            fast: SimDuration::from_millis(1),
            slow_prob: 0.5,
            slow_base: SimDuration::from_secs(1),
            slow_mean: SimDuration::from_millis(100),
        };
        let samples: Vec<_> = (0..200).map(|_| bimodal.sample(&mut rng)).collect();
        let slow = samples.iter().filter(|d| **d >= SimDuration::from_secs(1)).count();
        assert!(slow > 50 && slow < 150, "slow path taken {slow}/200");
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use crate::fault_driver::FaultDriver;
    use conprobe_sim::net::Region;
    use conprobe_sim::{FaultEvent, FaultPlan, LocalClock, LocalTime, SimTime, World, WorldConfig};
    use conprobe_store::AuthorId;

    type Msg = NetMsg<()>;

    /// One crash/recover window as a declarative plan (target index 0).
    fn crash_window(crash_at: SimDuration, recover_at: SimDuration) -> FaultPlan {
        FaultPlan::new(0).with(FaultEvent::CrashCycle {
            target: 0,
            at: SimTime::ZERO + crash_at,
            down_for: recover_at - crash_at,
            up_for: SimDuration::ZERO,
            cycles: 1,
        })
    }

    struct Writer {
        target: NodeId,
    }
    impl Node<Msg> for Writer {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            let post = Post::new(PostId::new(AuthorId(1), 1), "durable?", LocalTime::from_nanos(0));
            ctx.send(self.target, NetMsg::Request { req_id: 0, op: ClientOp::Write(post) });
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
    }

    fn replicated_params() -> ReplicaParams {
        ReplicaParams {
            repl_delay: DelayDist::Fixed(SimDuration::from_millis(50)),
            anti_entropy: Some(SimDuration::from_secs(1)),
            ..ReplicaParams::default()
        }
    }

    #[test]
    fn crashed_replica_ignores_requests_and_loses_state() {
        let mut w = World::new(WorldConfig::default(), 3);
        let replica = w.add_node_with_clock(
            Region::Virginia,
            LocalClock::perfect(),
            Box::new(ReplicaNode::new(ReplicaParams::default())),
        );
        let _writer = w.add_node(Region::Oregon, Box::new(Writer { target: replica }));
        // Recovery at 3600 s: never within the run.
        let plan = crash_window(SimDuration::from_secs(2), SimDuration::from_secs(3600));
        let _faults =
            w.add_node(Region::Virginia, Box::new(FaultDriver::new(&plan, vec![replica])));
        w.run_until(conprobe_sim::SimTime::from_secs(10));
        let node = w.node_as::<ReplicaNode>(replica).unwrap();
        assert!(node.is_crashed());
        assert_eq!(node.applied(), 0, "volatile state lost on crash");
    }

    #[test]
    fn recovered_replica_is_refilled_by_anti_entropy() {
        let mut w = World::new(WorldConfig::default(), 4);
        let r0 = w.add_node_with_clock(
            Region::Virginia,
            LocalClock::perfect(),
            Box::new(ReplicaNode::new(replicated_params())),
        );
        let r1 = w.add_node_with_clock(
            Region::Ireland,
            LocalClock::perfect(),
            Box::new(ReplicaNode::new(replicated_params())),
        );
        w.node_as_mut::<ReplicaNode>(r0).unwrap().set_peers(vec![r1]);
        w.node_as_mut::<ReplicaNode>(r1).unwrap().set_peers(vec![r0]);
        let _writer = w.add_node(Region::Oregon, Box::new(Writer { target: r0 }));
        let plan = crash_window(SimDuration::from_secs(2), SimDuration::from_secs(4));
        let _faults = w.add_node(Region::Virginia, Box::new(FaultDriver::new(&plan, vec![r1])));
        // Let replication, the crash, the recovery and one repair round run.
        w.run_until(conprobe_sim::SimTime::from_secs(8));
        let survivor = w.node_as::<ReplicaNode>(r0).unwrap();
        assert_eq!(survivor.applied(), 1);
        let recovered = w.node_as::<ReplicaNode>(r1).unwrap();
        assert!(!recovered.is_crashed());
        assert_eq!(recovered.applied(), 1, "anti-entropy refilled the recovered node");
        assert_eq!(recovered.snapshot(), survivor.snapshot());
    }

    #[test]
    fn single_replica_crash_means_data_loss() {
        // Blogger-style: no peers, no anti-entropy — a crash is permanent
        // data loss (the durability/consistency trade-off made visible).
        let mut w = World::new(WorldConfig::default(), 5);
        let replica = w.add_node_with_clock(
            Region::Virginia,
            LocalClock::perfect(),
            Box::new(ReplicaNode::new(ReplicaParams::default())),
        );
        let _writer = w.add_node(Region::Oregon, Box::new(Writer { target: replica }));
        let plan = crash_window(SimDuration::from_secs(2), SimDuration::from_secs(3));
        let _faults =
            w.add_node(Region::Virginia, Box::new(FaultDriver::new(&plan, vec![replica])));
        w.run_until(conprobe_sim::SimTime::from_secs(10));
        let node = w.node_as::<ReplicaNode>(replica).unwrap();
        assert!(!node.is_crashed());
        assert_eq!(node.applied(), 0, "no peers to recover from");
    }
}
