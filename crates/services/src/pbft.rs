//! PBFT-style ordered-log replica — the second strong-consistency
//! control arm, where partitions and crashes force **view changes**
//! instead of quorum waits.
//!
//! Every [`PbftReplica`] is both a front door and a log replica. Client
//! operations — writes *and* reads — are forwarded to the current
//! view's leader, sequenced into a single totally-ordered log, and run
//! through the classic three-phase exchange over interned op digests:
//!
//! * **pre-prepare** — the leader assigns the next slot, stamps the
//!   canonical record (server timestamp + arrival index = slot), and
//!   broadcasts the payload with its FNV-64 digest;
//! * **prepare** — backups that accept the leader's binding broadcast a
//!   prepare vote; a slot is *prepared* once a certificate quorum
//!   (`max(2f+1, ⌈n/2⌉+1)`, `f = ⌊(n−1)/3⌋`) has vouched for the digest;
//! * **commit** — prepared replicas broadcast commit votes; at a
//!   certificate quorum the slot is committed into the persistent
//!   consensus backlog and applied strictly in slot order to the
//!   [`ReplicaCore`].
//!
//! Reads are ordered through the same log, so every response is a
//! prefix-consistent snapshot: the arm is linearizable and all six
//! checkers must come back clean under every fault plan.
//!
//! **View changes.** Each front door tracks its pending operations; when
//! one stalls past a seeded suspicion timeout and this replica is not
//! the leader, it votes `ViewChange(v+1)` carrying its *prepared
//! backlog* (every slot it ever prepared, payload included). A replica
//! seeing `f+1` votes for a higher view joins them; the deterministic
//! next leader (`leader = view mod n`) installs the view at a
//! certificate quorum of votes and broadcasts `NewView`, re-issuing the
//! union of all prepared slots (highest view wins per slot) and
//! noop-filling sequence gaps, so nothing committed is ever lost and
//! nothing uncommitted can dodge re-ordering. Clients never see any of
//! this: their front door simply re-forwards pending ops to the new
//! leader.
//!
//! **Crash recovery** is the quorum arm's state-transfer protocol
//! applied to the log: a recovering replica broadcasts
//! [`PbftMsg::StateReq`] and peers stream their committed backlog as
//! `cpj1` length-prefixed checksummed records (one `{slot, op}` entry
//! per frame — the campaign journal's format) plus their apply
//! watermark. The recovering replica verifies each whole stream before
//! applying any of it, and serves **no client operations** until it has
//! heard `n − quorum + 1` peers (every commit quorum misses at most
//! `n − quorum` replicas, so this fence intersects all of them — the
//! same intersection argument as `quorum.rs`) *and* caught up past the
//! highest watermark heard. Committed-but-unapplied slots replay from
//! the backlog the instant their predecessors arrive.
//!
//! The node is [`FaultDriver`](crate::fault_driver::FaultDriver)-aware:
//! it honours the same [`ControlMsg`] crash/recover/brownout protocol as
//! the other arms, so `conprobe chaos` drives it unchanged.

use crate::api::{ClientOp, ControlMsg, NetMsg, OpResult, ReplMsg};
use crate::quorum::{stored_post_from_payload, stored_post_to_payload};
use conprobe_json::{frame, member, FromJson, JsonError, JsonValue, ToJson};
use conprobe_obs::{latency_bounds_nanos, Counter, Gauge, Histogram, ObsSink, Severity};
use conprobe_sim::{BrownoutMode, Context, Node, NodeId, SimDuration, SimTime};
use conprobe_store::{OrderingPolicy, Post, PostId, ReplicaCore, StoredPost};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Fixed timer token: re-broadcast [`PbftMsg::StateReq`] to peers that
/// have not answered yet.
const TOKEN_CATCHUP_RETRY: u64 = 0;
/// Fixed timer token: the periodic pulse (re-forwarding, leader
/// retransmission, suspicion, gap repair). Re-armed while not crashed.
const TOKEN_PULSE: u64 = 1;
/// Timer-token kind: a brownout-held client request.
const TOKEN_KIND_DELAY: u64 = 3 << 62;
const TOKEN_KIND_MASK: u64 = 3 << 62;

/// How long a fenced replica waits before re-asking unanswered peers.
const CATCHUP_RETRY: SimDuration = SimDuration::from_millis(500);
/// Pulse period: the protocol's retry/suspicion heartbeat.
const PULSE: SimDuration = SimDuration::from_millis(200);
/// Re-forward a pending client op to the leader after this long without
/// progress (lost `Propose`, lost votes, or a view change in between).
const FORWARD_RETRY: SimDuration = SimDuration::from_millis(600);
/// Base leader-suspicion timeout; each replica adds seeded jitter drawn
/// in `on_start` so suspicion is staggered, not synchronized.
const SUSPICION_BASE: SimDuration = SimDuration::from_millis(1_200);
/// Ask the leader for the missing committed prefix after a sequence gap
/// has blocked `next_apply` this long.
const GAP_REPAIR: SimDuration = SimDuration::from_millis(600);

/// The view every replica boots in. Starting at 1 (not 0) puts the
/// initial leader at replica index `1 mod n` — the replica the default
/// chaos plans crash — so an unchanged level-3 sweep forces a real view
/// change.
const INITIAL_VIEW: u64 = 1;

/// One consensus message, carried inside [`ReplMsg::Pbft`] so the
/// generic [`NetMsg`] plumbing (agents, fault driver, weak replicas)
/// needs no changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbftMsg {
    /// Front door → leader: please sequence this operation.
    Propose(ProposeOp),
    /// Leader → all: slot assignment with the interned op payload.
    PrePrepare {
        /// The view this assignment belongs to.
        view: u64,
        /// The assigned log slot.
        slot: u64,
        /// FNV-64 digest of `payload`.
        digest: u64,
        /// The op payload (compact JSON, see [`LogOp`]).
        payload: String,
    },
    /// Backup → all: I accept the leader's digest binding for this slot.
    Prepare {
        /// The voter's view.
        view: u64,
        /// The slot voted on.
        slot: u64,
        /// The digest vouched for.
        digest: u64,
    },
    /// Replica → all: this slot is prepared at my quorum; commit it.
    Commit {
        /// The voter's view.
        view: u64,
        /// The slot voted on.
        slot: u64,
        /// The digest vouched for.
        digest: u64,
    },
    /// A leader-suspicion vote, carrying the voter's prepared backlog.
    ViewChange {
        /// The view the voter wants to move to.
        new_view: u64,
        /// Every slot the voter ever prepared, payloads included.
        prepared: Vec<PreparedProof>,
    },
    /// The new leader's installation broadcast: the full re-issued log
    /// prefix (committed history, re-issued prepared slots, noop fills).
    NewView {
        /// The installed view.
        view: u64,
        /// Re-issued pre-prepares, one per slot `0..=max`.
        pre_prepares: Vec<PreparedProof>,
    },
    /// State-transfer request from a recovering (or gap-blocked) replica.
    StateReq {
        /// Correlation token identifying one transfer round.
        token: u64,
    },
    /// State-transfer response: the responder's committed backlog as
    /// `cpj1` checksummed frames, plus its apply watermark and view.
    StateResp {
        /// The echoed correlation token.
        token: u64,
        /// The responder's current view (the recoverer adopts the max).
        view: u64,
        /// The responder's apply watermark (`next_apply`).
        watermark: u64,
        /// Framed `{slot, op}` records (`conprobe_json::frame` encoding).
        frames: Vec<String>,
    },
}

/// A client operation en route to the leader for sequencing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProposeOp {
    /// Sequence this write; `origin` (a replica index) answers the
    /// client when the slot applies.
    Write {
        /// The forwarding front door's replica index.
        origin: usize,
        /// The client's post.
        post: Post,
    },
    /// Sequence this read (reads are log ops — that is what makes the
    /// arm linearizable); `origin` answers from its snapshot at apply.
    Read {
        /// The forwarding front door's replica index.
        origin: usize,
        /// The front door's local read sequence number.
        seq: u64,
    },
}

/// One slot's worth of view-change evidence: enough to re-issue the
/// pre-prepare verbatim in a later view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedProof {
    /// The slot.
    pub slot: u64,
    /// The view the slot was (pre-)prepared in.
    pub view: u64,
    /// FNV-64 digest of `payload`.
    pub digest: u64,
    /// The interned op payload.
    pub payload: String,
}

/// A decoded log-op payload.
enum LogOp {
    Write { origin: usize, stored: StoredPost },
    Read { origin: usize, seq: u64 },
    Noop,
}

/// FNV-64 digest of an interned op payload.
fn digest_of(payload: &str) -> u64 {
    frame::fnv64_fold(frame::FNV64_BASIS, payload.as_bytes())
}

/// Serializes a write op. The leader stamps the [`StoredPost`] once
/// (server timestamp = pre-prepare instant, arrival index = slot), so
/// every replica applies identical bytes and the resulting snapshots are
/// byte-identical across the group.
fn write_payload(origin: usize, stored: &StoredPost) -> String {
    JsonValue::Object(vec![
        ("kind".into(), JsonValue::Str("write".into())),
        ("origin".into(), (origin as u64).to_json()),
        ("post".into(), JsonValue::Str(stored_post_to_payload(stored))),
    ])
    .to_compact()
}

fn read_payload(origin: usize, seq: u64) -> String {
    JsonValue::Object(vec![
        ("kind".into(), JsonValue::Str("read".into())),
        ("origin".into(), (origin as u64).to_json()),
        ("seq".into(), seq.to_json()),
    ])
    .to_compact()
}

/// Serializes a sequence-gap filler (the slot makes the digest unique).
fn noop_payload(slot: u64) -> String {
    JsonValue::Object(vec![
        ("kind".into(), JsonValue::Str("noop".into())),
        ("slot".into(), slot.to_json()),
    ])
    .to_compact()
}

fn parse_log_op(payload: &str) -> Result<LogOp, JsonError> {
    let doc = conprobe_json::parse(payload)?;
    let kind = String::from_json(member(&doc, "kind")?)?;
    match kind.as_str() {
        "write" => {
            let origin = u64::from_json(member(&doc, "origin")?)? as usize;
            let stored = stored_post_from_payload(&String::from_json(member(&doc, "post")?)?)?;
            Ok(LogOp::Write { origin, stored })
        }
        "read" => {
            let origin = u64::from_json(member(&doc, "origin")?)? as usize;
            let seq = u64::from_json(member(&doc, "seq")?)?;
            Ok(LogOp::Read { origin, seq })
        }
        "noop" => Ok(LogOp::Noop),
        other => Err(JsonError::schema(format!("unknown log op kind {other:?}"))),
    }
}

/// One log slot's protocol state.
struct Slot {
    /// The view of the latest accepted pre-prepare for this slot.
    view: u64,
    /// The digest this replica is counting votes for.
    digest: u64,
    /// The interned payload, once a pre-prepare delivered it.
    payload: Option<String>,
    /// Replica indices whose prepare (or pre-prepare) vote arrived.
    prepares: HashSet<usize>,
    /// Replica indices whose commit vote arrived.
    commits: HashSet<usize>,
    prepared: bool,
    committed: bool,
    /// When the leader (re-)broadcast this slot's pre-prepare last —
    /// drives pulse retransmission under message loss.
    retransmitted_at: SimTime,
}

/// A client write waiting for its slot to commit and apply.
struct PendingWrite {
    /// The original client bytes, kept for leader-change re-forwarding.
    post: Post,
    /// `(client, req_id)` pairs to acknowledge (RPC retransmits stack).
    waiters: Vec<(NodeId, u64)>,
    /// When the op first went pending — the suspicion clock and the
    /// commit-latency measurement origin.
    first_at: SimTime,
    /// When the op was last forwarded to a leader.
    last_forward: SimTime,
}

/// A client read waiting for its slot to apply at this front door.
struct PendingRead {
    client: NodeId,
    req_id: u64,
    first_at: SimTime,
    last_forward: SimTime,
}

/// One in-progress state transfer (this replica is the recovering side).
struct Catchup {
    token: u64,
    heard: HashSet<NodeId>,
    /// Highest apply watermark heard from any responder.
    watermark: u64,
    /// Highest view heard from any responder (adopted on completion).
    view: u64,
    frames: u64,
    /// Running FNV-1a over every verified frame, in arrival order.
    stream_hash: u64,
}

/// Observability handles, resolved in `on_start`. Instrumentation only:
/// behaviour is identical without a sink.
struct PbftObs {
    sink: ObsSink,
    applied: Gauge,
    fenced: Gauge,
    writes: Counter,
    reads: Counter,
    throttled: Counter,
    state_transfers: Counter,
    protocol_anomalies: Counter,
    /// Shared across the replica group: completed view installations.
    view_changes: Counter,
    /// Shared: slots committed (counted at each replica).
    commits: Counter,
    /// Shared: the current leader's replica index.
    leader: Gauge,
    /// Shared: client-write commit latency (pending → applied at origin).
    commit_latency: Histogram,
}

impl PbftObs {
    fn new(sink: &ObsSink, node: NodeId) -> Self {
        let prefix = format!("services.replica.{node}");
        let m = &sink.metrics;
        PbftObs {
            applied: m.gauge(&format!("{prefix}.applied")),
            fenced: m.gauge(&format!("{prefix}.fenced")),
            writes: m.counter(&format!("{prefix}.writes")),
            reads: m.counter(&format!("{prefix}.reads")),
            throttled: m.counter(&format!("{prefix}.throttled")),
            state_transfers: m.counter(&format!("{prefix}.state_transfers")),
            protocol_anomalies: m.counter(&format!("{prefix}.protocol_anomalies")),
            view_changes: m.counter("services.pbft.view_changes"),
            commits: m.counter("services.pbft.commits"),
            leader: m.gauge("services.pbft.leader"),
            commit_latency: m
                .histogram("services.pbft.commit_latency_nanos", &latency_bounds_nanos()),
            sink: sink.clone(),
        }
    }

    fn event(&self, now: SimTime, severity: Severity, message: impl FnOnce() -> String) {
        if self.sink.log.enabled(severity, "services") {
            self.sink.log.record(now.as_nanos(), severity, "services", message());
        }
    }
}

/// A PBFT-style ordered-log replica (see the module docs for the
/// protocol).
pub struct PbftReplica {
    core: ReplicaCore,
    /// The full member list (self included), in replica-index order.
    replicas: Vec<NodeId>,
    my_index: usize,
    next_token: u64,
    crashed: bool,
    /// The current view; `leader = view mod n`.
    view: u64,
    /// Per-slot protocol state (never garbage-collected — the retained
    /// history doubles as the view-change proof store; see DESIGN §15).
    slots: HashMap<u64, Slot>,
    /// The persistent consensus backlog: committed payloads by slot.
    committed: BTreeMap<u64, String>,
    /// The leader's next slot to assign.
    next_slot: u64,
    /// The first slot not yet applied to `core`.
    next_apply: u64,
    /// Leader-reign write dedupe: post id → assigned slot.
    proposed_writes: HashMap<PostId, u64>,
    /// Leader-reign read dedupe: `(origin, seq)` → assigned slot.
    proposed_reads: HashMap<(usize, u64), u64>,
    /// Front-door write tracking by post id.
    pending_writes: HashMap<PostId, PendingWrite>,
    /// Front-door read tracking by local read sequence number.
    pending_reads: HashMap<u64, PendingRead>,
    /// RPC-retransmit dedupe: `(client, req_id)` → read seq.
    read_reqs: HashMap<(NodeId, u64), u64>,
    next_read_seq: u64,
    /// View-change votes: target view → voter index → proofs.
    view_votes: HashMap<u64, HashMap<usize, Vec<PreparedProof>>>,
    /// The highest view this replica has voted for (≤ `view` when not
    /// currently suspicious).
    voted_view: u64,
    voted_at: SimTime,
    /// Highest target view seen in any vote — suspicion converges here.
    max_view_heard: u64,
    /// The `NewView` this replica installed as leader (laggard resend).
    last_new_view: Option<(u64, Vec<PreparedProof>)>,
    /// Per-replica seeded suspicion timeout (base + jitter).
    suspicion: SimDuration,
    /// The read fence: `Some` while recovering, cleared on completion.
    catchup: Option<Catchup>,
    /// An outstanding gap-repair round (fetch missing committed prefix).
    gap_token: Option<u64>,
    /// When the current sequence gap was first observed.
    gap_since: Option<SimTime>,
    /// Client ops queued behind the read fence.
    fenced_requests: Vec<(NodeId, u64, ClientOp)>,
    brownout: Option<BrownoutMode>,
    delayed_requests: HashMap<u64, (NodeId, u64, ClientOp)>,
    /// `(writes, reads, throttled)` counters for tests/diagnostics.
    stats: (u64, u64, u64),
    /// Malformed/inconsistent peer messages ignored (never panicked on).
    anomalies: u64,
    /// Completed view installations/adoptions at this replica.
    views_entered: u64,
    /// Completed state transfers: `(frames, watermark, stream_hash)`.
    transfers: Vec<(u64, u64, u64)>,
    obs: Option<PbftObs>,
}

impl std::fmt::Debug for PbftReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PbftReplica")
            .field("index", &self.my_index)
            .field("view", &self.view)
            .field("applied", &self.core.len())
            .field("next_apply", &self.next_apply)
            .field("fenced", &self.is_fenced())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for PbftReplica {
    fn default() -> Self {
        Self::new()
    }
}

impl PbftReplica {
    /// Creates a replica with no members (install them with
    /// [`PbftReplica::set_members`] once ids are known).
    pub fn new() -> Self {
        PbftReplica {
            core: ReplicaCore::new(OrderingPolicy::exact_timestamp()),
            replicas: Vec::new(),
            my_index: 0,
            next_token: 2,
            crashed: false,
            view: INITIAL_VIEW,
            slots: HashMap::new(),
            committed: BTreeMap::new(),
            next_slot: 0,
            next_apply: 0,
            proposed_writes: HashMap::new(),
            proposed_reads: HashMap::new(),
            pending_writes: HashMap::new(),
            pending_reads: HashMap::new(),
            read_reqs: HashMap::new(),
            next_read_seq: 0,
            view_votes: HashMap::new(),
            voted_view: 0,
            voted_at: SimTime::ZERO,
            max_view_heard: 0,
            last_new_view: None,
            suspicion: SUSPICION_BASE,
            catchup: None,
            gap_token: None,
            gap_since: None,
            fenced_requests: Vec::new(),
            brownout: None,
            delayed_requests: HashMap::new(),
            stats: (0, 0, 0),
            anomalies: 0,
            views_entered: 0,
            transfers: Vec::new(),
            obs: None,
        }
    }

    /// Installs the full member list (self included) and this replica's
    /// index into it.
    pub fn set_members(&mut self, replicas: Vec<NodeId>, my_index: usize) {
        assert!(my_index < replicas.len(), "my_index must address the member list");
        self.replicas = replicas;
        self.my_index = my_index;
    }

    /// Number of posts applied at this replica (diagnostics).
    pub fn applied(&self) -> usize {
        self.core.len()
    }

    /// Whether the replica is currently crashed (fault injection).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Whether the recovery fence is up (no client service until caught
    /// up).
    pub fn is_fenced(&self) -> bool {
        self.catchup.is_some()
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Whether this replica leads the current view.
    pub fn is_leader(&self) -> bool {
        self.leader_index(self.view) == self.my_index
    }

    /// Views this replica installed or adopted (initial view excluded).
    pub fn views_entered(&self) -> u64 {
        self.views_entered
    }

    /// `(writes, reads, throttled)` request counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.stats
    }

    /// Malformed or inconsistent peer messages ignored-and-counted.
    pub fn protocol_anomalies(&self) -> u64 {
        self.anomalies
    }

    /// Completed state transfers as `(frames, watermark, stream_hash)`
    /// tuples, in completion order — the byte-determinism witness.
    pub fn state_transfers(&self) -> &[(u64, u64, u64)] {
        &self.transfers
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Certificate quorum: `max(2f+1, ⌈n/2⌉+1)` with `f = ⌊(n−1)/3⌋` —
    /// the PBFT certificate size, floored at a majority so tiny groups
    /// (n < 4, f = 0) still intersect.
    fn cert_quorum(&self) -> usize {
        let f = (self.n().saturating_sub(1)) / 3;
        (2 * f + 1).max(self.n() / 2 + 1)
    }

    /// Suspicion join threshold: `f+1` votes prove at least one correct
    /// replica is suspicious, so joining is safe.
    fn join_quorum(&self) -> usize {
        (self.n().saturating_sub(1)) / 3 + 1
    }

    /// Peers a recovering replica must hear before the fence lifts:
    /// every commit quorum misses at most `n − cert_quorum` replicas, so
    /// `n − cert_quorum + 1` peers intersect all of them.
    fn catchup_quorum(&self) -> usize {
        (self.n() - self.cert_quorum() + 1).max(1)
    }

    fn leader_index(&self, view: u64) -> usize {
        (view % self.n() as u64) as usize
    }

    fn leader_id(&self, view: u64) -> NodeId {
        self.replicas[self.leader_index(view)]
    }

    fn fresh_token(&mut self, kind: u64) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        kind | t
    }

    fn sender_index(&self, from: NodeId) -> Option<usize> {
        self.replicas.iter().position(|r| *r == from)
    }

    fn note_anomaly(&mut self) {
        self.anomalies += 1;
        if let Some(obs) = &self.obs {
            obs.protocol_anomalies.inc();
        }
    }

    /// Client responses use the FIFO link: a read's content is pinned at
    /// its log slot, so two answers to the same client must arrive in
    /// the order the front door sent them (slot order) — an old-content
    /// answer leapfrogging a newer one would read as a monotonic-reads
    /// violation at the probe even though the log itself is linear.
    fn respond<A>(ctx: &mut Context<'_, NetMsg<A>>, client: NodeId, req_id: u64, result: OpResult) {
        ctx.send_ordered(client, NetMsg::Response { req_id, result });
    }

    fn broadcast<A>(&self, ctx: &mut Context<'_, NetMsg<A>>, msg: PbftMsg, ordered: bool) {
        for (i, &peer) in self.replicas.iter().enumerate() {
            if i == self.my_index {
                continue;
            }
            if ordered {
                ctx.send_ordered(peer, NetMsg::Repl(ReplMsg::Pbft(msg.clone())));
            } else {
                ctx.send(peer, NetMsg::Repl(ReplMsg::Pbft(msg.clone())));
            }
        }
    }

    // ------------------------------------------------------------------
    // Client front door
    // ------------------------------------------------------------------

    /// Serves one client request (or queues it behind the recovery
    /// fence). Called on receipt, when a brownout hold expires, and when
    /// the fence lifts.
    fn handle_request<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from: NodeId,
        req_id: u64,
        op: ClientOp,
    ) {
        if matches!(op, ClientOp::Inspect) {
            // White-box instrumentation: authoritative local state,
            // exempt from the fence (it bypasses the ordered-read path).
            let seq = self.core.snapshot().to_vec();
            Self::respond(ctx, from, req_id, OpResult::ReadOk(seq));
            return;
        }
        if self.is_fenced() {
            // No client service until caught up past the rejoin
            // watermark; RPC retransmits collapse onto one queue entry.
            if !self.fenced_requests.iter().any(|(c, r, _)| *c == from && *r == req_id) {
                self.fenced_requests.push((from, req_id, op));
            }
            return;
        }
        let now = ctx.true_now();
        match op {
            ClientOp::Write(post) => {
                self.stats.0 += 1;
                if let Some(obs) = &self.obs {
                    obs.writes.inc();
                }
                let id = post.id;
                if self.core.contains(id) {
                    // Already committed and applied (an RPC retransmit
                    // after a lost response): re-acknowledge, and release
                    // any waiters a lost commit round left behind.
                    if let Some(w) = self.pending_writes.remove(&id) {
                        for (client, req) in w.waiters {
                            Self::respond(ctx, client, req, OpResult::WriteAck(id));
                        }
                    }
                    Self::respond(ctx, from, req_id, OpResult::WriteAck(id));
                    return;
                }
                if let Some(w) = self.pending_writes.get_mut(&id) {
                    if !w.waiters.contains(&(from, req_id)) {
                        w.waiters.push((from, req_id));
                    }
                    return;
                }
                self.pending_writes.insert(
                    id,
                    PendingWrite {
                        post: post.clone(),
                        waiters: vec![(from, req_id)],
                        first_at: now,
                        last_forward: now,
                    },
                );
                let op = ProposeOp::Write { origin: self.my_index, post };
                self.forward_to_leader(ctx, op);
            }
            ClientOp::Read => {
                self.stats.1 += 1;
                if let Some(obs) = &self.obs {
                    obs.reads.inc();
                }
                if self.read_reqs.contains_key(&(from, req_id)) {
                    return; // retransmit of an in-flight ordered read
                }
                let seq = self.next_read_seq;
                self.next_read_seq += 1;
                self.pending_reads.insert(
                    seq,
                    PendingRead { client: from, req_id, first_at: now, last_forward: now },
                );
                self.read_reqs.insert((from, req_id), seq);
                let op = ProposeOp::Read { origin: self.my_index, seq };
                self.forward_to_leader(ctx, op);
            }
            ClientOp::Inspect => unreachable!("handled above"),
        }
    }

    fn forward_to_leader<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, op: ProposeOp) {
        if self.is_leader() {
            self.leader_propose(ctx, op);
        } else {
            let leader = self.leader_id(self.view);
            ctx.send_ordered(leader, NetMsg::Repl(ReplMsg::Pbft(PbftMsg::Propose(op))));
        }
    }

    // ------------------------------------------------------------------
    // Leader: sequencing
    // ------------------------------------------------------------------

    fn leader_propose<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, op: ProposeOp) {
        if !self.is_leader() || self.is_fenced() {
            return; // stale forward; the origin's pulse will retry
        }
        match op {
            ProposeOp::Write { origin, post } => {
                if let Some(&slot) = self.proposed_writes.get(&post.id) {
                    // Already sequenced this reign: a lost vote round is
                    // repaired by re-broadcasting the assignment (peers
                    // re-vote idempotently; committed peers re-affirm).
                    self.rebroadcast_slot(ctx, slot);
                    return;
                }
                let slot = self.next_slot;
                let stored = StoredPost { post, server_ts: ctx.true_now(), arrival_index: slot };
                let payload = write_payload(origin, &stored);
                self.proposed_writes.insert(stored.post.id, slot);
                self.start_slot(ctx, slot, payload);
            }
            ProposeOp::Read { origin, seq } => {
                if let Some(&slot) = self.proposed_reads.get(&(origin, seq)) {
                    self.rebroadcast_slot(ctx, slot);
                    return;
                }
                let slot = self.next_slot;
                let payload = read_payload(origin, seq);
                self.proposed_reads.insert((origin, seq), slot);
                self.start_slot(ctx, slot, payload);
            }
        }
    }

    /// Opens a new slot as leader: record it, count our own implicit
    /// prepare, broadcast the pre-prepare.
    fn start_slot<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, slot: u64, payload: String) {
        debug_assert_eq!(slot, self.next_slot);
        self.next_slot += 1;
        let digest = digest_of(&payload);
        let view = self.view;
        let mut prepares = HashSet::new();
        prepares.insert(self.my_index);
        self.slots.insert(
            slot,
            Slot {
                view,
                digest,
                payload: Some(payload.clone()),
                prepares,
                commits: HashSet::new(),
                prepared: false,
                committed: false,
                retransmitted_at: ctx.true_now(),
            },
        );
        self.broadcast(ctx, PbftMsg::PrePrepare { view, slot, digest, payload }, true);
    }

    /// Re-broadcasts an assigned slot's pre-prepare (vote-loss repair).
    /// Peers that already committed it answer with fresh commit votes,
    /// so even a front door that missed the whole commit round recovers.
    fn rebroadcast_slot<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, slot: u64) {
        let now = ctx.true_now();
        let Some(s) = self.slots.get_mut(&slot) else { return };
        let Some(payload) = s.payload.clone() else { return };
        s.retransmitted_at = now;
        let (view, digest) = (s.view, s.digest);
        self.broadcast(ctx, PbftMsg::PrePrepare { view, slot, digest, payload }, true);
    }

    // ------------------------------------------------------------------
    // Three-phase exchange
    // ------------------------------------------------------------------

    fn on_pre_prepare<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from_idx: usize,
        view: u64,
        slot: u64,
        digest: u64,
        payload: String,
    ) {
        if view < self.view {
            return; // stale reign
        }
        if view > self.view {
            // Evidence of a newer view we missed: petition its leader,
            // who re-sends the NewView to laggards.
            self.note_higher_view(ctx, view);
            return;
        }
        if from_idx != self.leader_index(view) {
            self.note_anomaly(); // only the leader assigns slots
            return;
        }
        if digest_of(&payload) != digest {
            self.note_anomaly(); // digest does not match the bytes
            return;
        }
        if let Some(committed) = self.committed.get(&slot) {
            if digest_of(committed) == digest {
                // Re-affirm so replicas missing the commit round hear it.
                self.broadcast(ctx, PbftMsg::Commit { view, slot, digest }, false);
            } else {
                self.note_anomaly(); // conflicts with committed state
            }
            return;
        }
        let now = ctx.true_now();
        let entry = self.slots.entry(slot).or_insert_with(|| Slot {
            view,
            digest,
            payload: None,
            prepares: HashSet::new(),
            commits: HashSet::new(),
            prepared: false,
            committed: false,
            retransmitted_at: now,
        });
        if entry.digest != digest {
            if entry.committed || entry.prepared {
                self.note_anomaly(); // equivocating assignment
                return;
            }
            // A re-issued binding from the legitimate leader supersedes
            // provisional votes collected for another digest.
            entry.digest = digest;
            entry.payload = None;
            entry.prepares.clear();
            entry.commits.clear();
        }
        entry.view = view;
        entry.payload.get_or_insert(payload);
        entry.prepares.insert(from_idx);
        entry.prepares.insert(self.my_index);
        self.next_slot = self.next_slot.max(slot + 1);
        self.broadcast(ctx, PbftMsg::Prepare { view, slot, digest }, false);
        self.check_slot(ctx, slot);
    }

    fn on_vote<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from_idx: usize,
        view: u64,
        slot: u64,
        digest: u64,
        is_commit: bool,
    ) {
        if view > self.view {
            self.note_higher_view(ctx, view);
            // Still count the vote: in the crash-fault model a vote for
            // this digest is valid evidence regardless of the view tag.
        }
        if self.committed.contains_key(&slot) {
            return; // settled; late votes are expected under loss
        }
        let now = ctx.true_now();
        let entry = self.slots.entry(slot).or_insert_with(|| Slot {
            view,
            digest,
            payload: None,
            prepares: HashSet::new(),
            commits: HashSet::new(),
            prepared: false,
            committed: false,
            retransmitted_at: now,
        });
        if entry.digest != digest {
            self.note_anomaly(); // vote for a conflicting digest
            return;
        }
        entry.prepares.insert(from_idx);
        if is_commit {
            // A commit vote implies the sender prepared the slot.
            entry.commits.insert(from_idx);
        }
        self.check_slot(ctx, slot);
    }

    /// Runs the prepared → committed transitions for one slot.
    fn check_slot<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, slot: u64) {
        let quorum = self.cert_quorum();
        let my_index = self.my_index;
        let Some(s) = self.slots.get_mut(&slot) else { return };
        if s.committed {
            return;
        }
        let mut announce_commit = None;
        if !s.prepared && s.payload.is_some() && s.prepares.len() >= quorum {
            s.prepared = true;
            s.commits.insert(my_index);
            announce_commit = Some((s.view, s.digest));
        }
        let newly_committed = s.prepared && s.payload.is_some() && s.commits.len() >= quorum;
        if newly_committed {
            s.committed = true;
            let payload = s.payload.clone().expect("checked payload.is_some() above");
            self.committed.insert(slot, payload);
            if let Some(obs) = &self.obs {
                obs.commits.inc();
            }
        }
        if let Some((view, digest)) = announce_commit {
            self.broadcast(ctx, PbftMsg::Commit { view, slot, digest }, false);
        }
        if newly_committed {
            self.try_apply(ctx);
        }
    }

    /// Applies the committed prefix in strict slot order, answering this
    /// front door's clients as their ops apply.
    fn try_apply<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>) {
        let now = ctx.true_now();
        while let Some(payload) = self.committed.get(&self.next_apply) {
            let op = match parse_log_op(payload) {
                Ok(op) => op,
                Err(_) => {
                    // A committed payload this replica cannot parse is an
                    // inconsistency, never a panic: skip the slot (it was
                    // interned by digest, so peers apply the same bytes).
                    self.note_anomaly();
                    LogOp::Noop
                }
            };
            self.next_apply += 1;
            match op {
                LogOp::Write { origin, stored } => {
                    let id = stored.post.id;
                    self.core.apply_replicated(stored);
                    if origin == self.my_index {
                        if let Some(w) = self.pending_writes.remove(&id) {
                            if let Some(obs) = &self.obs {
                                obs.commit_latency
                                    .record(now.saturating_since(w.first_at).as_nanos());
                            }
                            for (client, req_id) in w.waiters {
                                Self::respond(ctx, client, req_id, OpResult::WriteAck(id));
                            }
                        }
                    }
                }
                LogOp::Read { origin, seq } => {
                    if origin == self.my_index {
                        if let Some(r) = self.pending_reads.remove(&seq) {
                            self.read_reqs.retain(|_, s| *s != seq);
                            let snapshot = self.core.snapshot().to_vec();
                            Self::respond(ctx, r.client, r.req_id, OpResult::ReadOk(snapshot));
                        }
                    }
                }
                LogOp::Noop => {}
            }
        }
        self.gap_since = None;
        // A merged backlog (state transfer, gap repair) may extend past
        // every locally opened slot; a future leader reign must never
        // re-assign a committed slot number.
        if let Some((&last, _)) = self.committed.iter().next_back() {
            self.next_slot = self.next_slot.max(last + 1);
        }
        if let Some(obs) = &self.obs {
            obs.applied.set(self.core.len() as f64);
        }
    }

    // ------------------------------------------------------------------
    // View changes
    // ------------------------------------------------------------------

    /// This replica's full prepared backlog (committed slots included):
    /// the view-change proof set. Carrying the whole history — not just
    /// committed-but-unapplied slots — is what makes noop-filling safe:
    /// a slot prepared anywhere in the vote quorum is always re-issued,
    /// never overwritten by a noop.
    fn prepared_proofs(&self) -> Vec<PreparedProof> {
        let mut proofs: HashMap<u64, PreparedProof> = HashMap::new();
        for (&slot, s) in &self.slots {
            if s.prepared {
                if let Some(payload) = &s.payload {
                    proofs.insert(
                        slot,
                        PreparedProof {
                            slot,
                            view: s.view,
                            digest: s.digest,
                            payload: payload.clone(),
                        },
                    );
                }
            }
        }
        for (&slot, payload) in &self.committed {
            proofs.entry(slot).or_insert_with(|| PreparedProof {
                slot,
                view: 0,
                digest: digest_of(payload),
                payload: payload.clone(),
            });
        }
        let mut list: Vec<PreparedProof> = proofs.into_values().collect();
        list.sort_by_key(|p| p.slot);
        list
    }

    fn send_view_change<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, new_view: u64) {
        let now = ctx.true_now();
        self.voted_view = new_view;
        self.voted_at = now;
        let proofs = self.prepared_proofs();
        self.view_votes.entry(new_view).or_default().insert(self.my_index, proofs.clone());
        if let Some(obs) = &self.obs {
            let node = ctx.node_id();
            let leader = self.leader_index(new_view);
            obs.event(now, Severity::Warn, || {
                format!("replica {node} suspects leader; voting view change to view {new_view} (leader n{leader})")
            });
        }
        self.broadcast(ctx, PbftMsg::ViewChange { new_view, prepared: proofs }, true);
        self.maybe_install(ctx, new_view);
    }

    fn on_view_change<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from: NodeId,
        from_idx: usize,
        new_view: u64,
        prepared: Vec<PreparedProof>,
    ) {
        self.max_view_heard = self.max_view_heard.max(new_view);
        if new_view <= self.view {
            // Stale vote — from a replica that missed the installation.
            // If we installed the current view, re-send it the NewView.
            if let Some((view, pre_prepares)) = &self.last_new_view {
                if *view == self.view {
                    ctx.send_ordered(
                        from,
                        NetMsg::Repl(ReplMsg::Pbft(PbftMsg::NewView {
                            view: *view,
                            pre_prepares: pre_prepares.clone(),
                        })),
                    );
                }
            }
            return;
        }
        self.view_votes.entry(new_view).or_default().insert(from_idx, prepared);
        let votes = self.view_votes.get(&new_view).map_or(0, HashMap::len);
        if new_view > self.voted_view && votes >= self.join_quorum() {
            // f+1 distinct suspicions prove a correct replica is stuck:
            // join even if our own clients are happy.
            self.send_view_change(ctx, new_view);
            return;
        }
        self.maybe_install(ctx, new_view);
    }

    /// Installs `new_view` if this replica is its leader and holds a
    /// certificate quorum of view-change votes.
    fn maybe_install<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, new_view: u64) {
        if new_view <= self.view || self.leader_index(new_view) != self.my_index {
            return;
        }
        let votes = self.view_votes.get(&new_view).map_or(0, HashMap::len);
        if votes < self.cert_quorum() {
            return;
        }
        let now = ctx.true_now();
        // Union the prepared backlogs (our own included), highest view
        // winning per slot.
        let mut chosen: HashMap<u64, PreparedProof> = HashMap::new();
        let mut vote_proofs: Vec<PreparedProof> = self
            .view_votes
            .get(&new_view)
            .expect("quorum checked")
            .values()
            .flatten()
            .cloned()
            .collect();
        vote_proofs.extend(self.prepared_proofs());
        for proof in vote_proofs {
            match chosen.get(&proof.slot) {
                Some(existing) if existing.view >= proof.view => {}
                _ => {
                    chosen.insert(proof.slot, proof);
                }
            }
        }
        let max_slot = chosen
            .keys()
            .copied()
            .chain(self.committed.keys().copied())
            .chain(self.next_slot.checked_sub(1))
            .max();
        // The full re-issued prefix: committed history verbatim, the
        // chosen proof where one exists, a noop filler otherwise. The
        // complete prefix (not just the backlog) lets a backup that
        // missed earlier commit rounds rebuild without a state transfer.
        let mut pre_prepares = Vec::new();
        if let Some(max_slot) = max_slot {
            for slot in 0..=max_slot {
                let payload = match self.committed.get(&slot) {
                    Some(payload) => payload.clone(),
                    None => match chosen.remove(&slot) {
                        Some(proof) => proof.payload,
                        None => noop_payload(slot),
                    },
                };
                let digest = digest_of(&payload);
                pre_prepares.push(PreparedProof { slot, view: new_view, digest, payload });
            }
            self.next_slot = max_slot + 1;
        }
        self.enter_view(ctx, new_view);
        // Adopt the re-issued bindings locally (committed slots stand).
        for p in &pre_prepares {
            if self.committed.contains_key(&p.slot) {
                continue;
            }
            let now = ctx.true_now();
            let entry = self.slots.entry(p.slot).or_insert_with(|| Slot {
                view: new_view,
                digest: p.digest,
                payload: None,
                prepares: HashSet::new(),
                commits: HashSet::new(),
                prepared: false,
                committed: false,
                retransmitted_at: now,
            });
            if entry.digest != p.digest {
                entry.prepares.clear();
                entry.commits.clear();
                entry.prepared = false;
                entry.digest = p.digest;
                entry.payload = None;
            }
            entry.view = new_view;
            entry.payload.get_or_insert_with(|| p.payload.clone());
            entry.prepares.insert(self.my_index);
            entry.retransmitted_at = now;
        }
        self.last_new_view = Some((new_view, pre_prepares.clone()));
        if let Some(obs) = &self.obs {
            obs.view_changes.inc();
        }
        self.broadcast(ctx, PbftMsg::NewView { view: new_view, pre_prepares }, true);
        if let Some(obs) = &self.obs {
            let node = ctx.node_id();
            obs.event(now, Severity::Info, || {
                format!(
                    "replica {node} view change installed: leading view {new_view} with re-issued log prefix"
                )
            });
        }
        let mut slots: Vec<u64> =
            self.slots.iter().filter(|(_, s)| !s.committed).map(|(slot, _)| *slot).collect();
        slots.sort_unstable(); // deterministic send order
        for slot in slots {
            self.check_slot(ctx, slot);
        }
    }

    fn on_new_view<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from_idx: usize,
        view: u64,
        pre_prepares: Vec<PreparedProof>,
    ) {
        if view <= self.view {
            return; // already there (duplicate or stale)
        }
        if from_idx != self.leader_index(view) {
            self.note_anomaly(); // only the new leader installs
            return;
        }
        self.enter_view(ctx, view);
        for p in pre_prepares {
            if digest_of(&p.payload) != p.digest {
                self.note_anomaly();
                continue;
            }
            if let Some(committed) = self.committed.get(&p.slot) {
                if digest_of(committed) == p.digest {
                    // Re-affirm for peers that missed the commit round.
                    let (slot, digest) = (p.slot, p.digest);
                    self.broadcast(ctx, PbftMsg::Commit { view, slot, digest }, false);
                } else {
                    self.note_anomaly(); // re-issue conflicts with a commit
                }
                continue;
            }
            let now = ctx.true_now();
            let entry = self.slots.entry(p.slot).or_insert_with(|| Slot {
                view,
                digest: p.digest,
                payload: None,
                prepares: HashSet::new(),
                commits: HashSet::new(),
                prepared: false,
                committed: false,
                retransmitted_at: now,
            });
            if entry.digest != p.digest {
                // The new leader re-bound this slot: provisional votes
                // for the superseded digest are void.
                entry.prepares.clear();
                entry.commits.clear();
                entry.prepared = false;
                entry.digest = p.digest;
                entry.payload = None;
            }
            entry.view = view;
            entry.payload.get_or_insert(p.payload);
            entry.prepares.insert(from_idx);
            entry.prepares.insert(self.my_index);
            self.next_slot = self.next_slot.max(p.slot + 1);
            let (slot, digest) = (p.slot, p.digest);
            self.broadcast(ctx, PbftMsg::Prepare { view, slot, digest }, false);
            self.check_slot(ctx, slot);
        }
    }

    /// Common view-adoption bookkeeping for leaders and backups.
    fn enter_view<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, view: u64) {
        let now = ctx.true_now();
        self.view = view;
        self.voted_view = self.voted_view.max(view);
        self.views_entered += 1;
        self.view_votes.retain(|v, _| *v > view);
        self.proposed_writes.clear();
        self.proposed_reads.clear();
        // Restart the suspicion clock against the new leader and make
        // the next pulse re-forward every pending op immediately.
        for w in self.pending_writes.values_mut() {
            w.first_at = now;
            w.last_forward = SimTime::ZERO;
        }
        for r in self.pending_reads.values_mut() {
            r.first_at = now;
            r.last_forward = SimTime::ZERO;
        }
        let leader = self.leader_index(view);
        if let Some(obs) = &self.obs {
            obs.leader.set(leader as f64);
            let node = ctx.node_id();
            obs.event(now, Severity::Info, || {
                format!("replica {node} view change: entering view {view}, leader n{leader}")
            });
        }
    }

    /// Reacts to evidence of a view newer than ours: petition its leader
    /// with our vote so it re-sends us the `NewView`.
    fn note_higher_view<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, view: u64) {
        self.max_view_heard = self.max_view_heard.max(view);
        if view <= self.view || self.voted_view >= view {
            return;
        }
        self.send_view_change(ctx, view);
    }

    // ------------------------------------------------------------------
    // State transfer
    // ------------------------------------------------------------------

    /// Serializes the committed backlog as `cpj1` frames, slot order.
    fn backlog_frames(&self) -> Vec<String> {
        self.committed
            .iter()
            .map(|(slot, payload)| {
                let record = JsonValue::Object(vec![
                    ("slot".into(), (*slot).to_json()),
                    ("op".into(), JsonValue::Str(payload.clone())),
                ])
                .to_compact();
                frame::encode_record(&record)
            })
            .collect()
    }

    fn decode_backlog_frame(line: &str) -> Result<(u64, String), String> {
        let payload = frame::decode_record(line).map_err(|e| e.to_string())?;
        let doc = conprobe_json::parse(payload).map_err(|e| e.to_string())?;
        let slot = u64::from_json(member(&doc, "slot").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let op = String::from_json(member(&doc, "op").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        // The embedded op must itself parse — refuse streams carrying
        // garbage that would only explode later at apply time.
        parse_log_op(&op).map_err(|e| e.to_string())?;
        Ok((slot, op))
    }

    /// Begins (or restarts) recovery: raise the fence and ask every peer
    /// for a checksummed backlog stream.
    fn begin_catchup<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>) {
        let token = self.fresh_token(0);
        self.catchup = Some(Catchup {
            token,
            heard: HashSet::new(),
            watermark: 0,
            view: self.view,
            frames: 0,
            stream_hash: frame::FNV64_BASIS,
        });
        if let Some(obs) = &self.obs {
            obs.fenced.set(1.0);
        }
        for (i, &peer) in self.replicas.iter().enumerate() {
            if i != self.my_index {
                ctx.send(peer, NetMsg::Repl(ReplMsg::Pbft(PbftMsg::StateReq { token })));
            }
        }
        ctx.set_timer(CATCHUP_RETRY, TOKEN_CATCHUP_RETRY);
    }

    fn on_state_resp<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from: NodeId,
        token: u64,
        peer_view: u64,
        watermark: u64,
        frames: Vec<String>,
    ) {
        let now = ctx.true_now();
        if self.catchup.is_none() {
            // Not recovering: this may answer an outstanding gap-repair
            // round (fetching a committed prefix the commit rounds
            // skipped past us).
            if self.gap_token != Some(token) {
                return;
            }
            self.gap_token = None;
            let mut entries = Vec::with_capacity(frames.len());
            for line in &frames {
                match Self::decode_backlog_frame(line) {
                    Ok(entry) => entries.push(entry),
                    Err(_) => {
                        self.note_anomaly();
                        return; // refuse the stream whole
                    }
                }
            }
            for (slot, op) in entries {
                self.committed.entry(slot).or_insert(op);
            }
            if peer_view > self.view {
                self.enter_view(ctx, peer_view);
            }
            self.try_apply(ctx);
            return;
        }
        {
            let catchup = self.catchup.as_mut().expect("checked above");
            if catchup.token != token || catchup.heard.contains(&from) {
                return; // stale round or duplicate responder
            }
            // Verify every frame before applying any of it: a corrupt
            // stream is refused whole, and the retry timer re-requests.
            let mut entries = Vec::with_capacity(frames.len());
            for line in &frames {
                match Self::decode_backlog_frame(line) {
                    Ok(entry) => entries.push(entry),
                    Err(reason) => {
                        if let Some(obs) = &self.obs {
                            let node = ctx.node_id();
                            obs.event(now, Severity::Warn, || {
                                format!(
                                    "replica {node} refused catch-up stream from {from}: {reason}"
                                )
                            });
                        }
                        return;
                    }
                }
            }
            catchup.heard.insert(from);
            catchup.watermark = catchup.watermark.max(watermark);
            catchup.view = catchup.view.max(peer_view);
            catchup.frames += frames.len() as u64;
            for line in &frames {
                catchup.stream_hash = frame::fnv64_fold(catchup.stream_hash, line.as_bytes());
            }
            for (slot, op) in entries {
                self.committed.entry(slot).or_insert(op);
            }
        }
        self.try_apply(ctx);
        let done = {
            let catchup = self.catchup.as_ref().expect("checked above");
            catchup.heard.len() >= self.catchup_quorum() && self.next_apply >= catchup.watermark
        };
        if done {
            let catchup = self.catchup.take().expect("checked above");
            if catchup.view > self.view {
                self.enter_view(ctx, catchup.view);
            }
            self.transfers.push((catchup.frames, catchup.watermark, catchup.stream_hash));
            if let Some(obs) = &self.obs {
                obs.fenced.set(0.0);
                obs.state_transfers.inc();
                let node = ctx.node_id();
                let applied = self.next_apply;
                obs.event(now, Severity::Info, || {
                    format!(
                        "replica {node} state transfer complete: {} frame(s) from {} peer(s), \
                         watermark {}, {applied} slot(s) applied, stream hash {:016x}",
                        catchup.frames,
                        catchup.heard.len(),
                        catchup.watermark,
                        catchup.stream_hash,
                    )
                });
            }
            // The fence is down: serve everything queued behind it.
            for (client, req_id, op) in std::mem::take(&mut self.fenced_requests) {
                self.handle_request(ctx, client, req_id, op);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault-driver control
    // ------------------------------------------------------------------

    fn on_control<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, msg: &ControlMsg) {
        let now = ctx.true_now();
        let node = ctx.node_id();
        // Every transition is an idempotent no-op when the state already
        // holds: the fault driver retransmits controls against loss.
        match msg {
            ControlMsg::Crash => {
                if self.crashed {
                    return;
                }
                self.crashed = true;
                // Volatile state is lost wholesale; the brownout is
                // external overload and survives, like the other arms.
                self.core = ReplicaCore::new(OrderingPolicy::exact_timestamp());
                self.view = INITIAL_VIEW;
                self.slots.clear();
                self.committed.clear();
                self.next_slot = 0;
                self.next_apply = 0;
                self.proposed_writes.clear();
                self.proposed_reads.clear();
                self.pending_writes.clear();
                self.pending_reads.clear();
                self.read_reqs.clear();
                self.view_votes.clear();
                self.voted_view = 0;
                self.max_view_heard = 0;
                self.last_new_view = None;
                self.catchup = None;
                self.gap_token = None;
                self.gap_since = None;
                self.fenced_requests.clear();
                self.delayed_requests.clear();
                if let Some(obs) = &self.obs {
                    obs.applied.set(0.0);
                    obs.fenced.set(0.0);
                    obs.event(now, Severity::Warn, || format!("replica {node} crashed"));
                }
            }
            ControlMsg::Recover => {
                if self.crashed {
                    self.crashed = false;
                    if let Some(obs) = &self.obs {
                        obs.event(now, Severity::Info, || {
                            format!("replica {node} recovered; state transfer begun")
                        });
                    }
                    // The pulse died with the crash; re-arm it.
                    ctx.set_timer(PULSE, TOKEN_PULSE);
                    self.begin_catchup(ctx);
                }
            }
            ControlMsg::BrownoutStart(mode) => {
                if self.brownout == Some(*mode) {
                    return;
                }
                self.brownout = Some(*mode);
                if let Some(obs) = &self.obs {
                    obs.event(now, Severity::Warn, || {
                        format!("replica {node} brownout start: {mode:?}")
                    });
                }
            }
            ControlMsg::BrownoutEnd => {
                if self.brownout.is_none() {
                    return;
                }
                self.brownout = None;
                if let Some(obs) = &self.obs {
                    obs.event(now, Severity::Info, || format!("replica {node} brownout end"));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pulse: retries, suspicion, gap repair
    // ------------------------------------------------------------------

    fn on_pulse<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>) {
        let now = ctx.true_now();
        if self.is_fenced() {
            return; // recovery has its own retry timer
        }
        // Leader: re-broadcast stalled open slots (vote-loss repair).
        if self.is_leader() {
            let mut stalled: Vec<u64> = self
                .slots
                .iter()
                .filter(|(slot, s)| {
                    **slot >= self.next_apply
                        && !s.committed
                        && now.saturating_since(s.retransmitted_at) >= FORWARD_RETRY
                })
                .map(|(slot, _)| *slot)
                .collect();
            stalled.sort_unstable(); // deterministic send order
            for slot in stalled {
                self.rebroadcast_slot(ctx, slot);
            }
        }
        // Front door: resolve writes that committed behind our back,
        // re-forward stalled ops, and clock leader suspicion.
        let mut resolved: Vec<PostId> =
            self.pending_writes.keys().copied().filter(|id| self.core.contains(*id)).collect();
        resolved.sort_unstable(); // deterministic send order
        for id in resolved {
            if let Some(w) = self.pending_writes.remove(&id) {
                for (client, req_id) in w.waiters {
                    Self::respond(ctx, client, req_id, OpResult::WriteAck(id));
                }
            }
        }
        let mut oldest: Option<SimTime> = None;
        for w in self.pending_writes.values() {
            oldest = Some(oldest.map_or(w.first_at, |t| t.min(w.first_at)));
        }
        for r in self.pending_reads.values() {
            oldest = Some(oldest.map_or(r.first_at, |t| t.min(r.first_at)));
        }
        let ops = self.pending_ops_to_forward(now);
        for op in ops {
            self.forward_to_leader(ctx, op);
        }
        // Leader suspicion: a pending op outlived the timeout and we are
        // not the leader ourselves.
        if let Some(first_at) = oldest {
            let stuck = now.saturating_since(first_at) >= self.suspicion;
            if stuck && !self.is_leader() {
                if self.voted_view <= self.view {
                    let target = (self.view + 1).max(self.max_view_heard);
                    self.send_view_change(ctx, target);
                } else if now.saturating_since(self.voted_at) >= self.suspicion {
                    // The vote itself stalled: escalate past it.
                    let target = (self.voted_view + 1).max(self.max_view_heard);
                    self.send_view_change(ctx, target);
                }
            }
        }
        // Gap repair: committed slots exist above a hole the commit
        // rounds skipped past us; fetch the missing prefix.
        let gapped = !self.committed.contains_key(&self.next_apply)
            && self.committed.keys().next_back().is_some_and(|last| *last > self.next_apply);
        if gapped {
            let since = *self.gap_since.get_or_insert(now);
            if now.saturating_since(since) >= GAP_REPAIR {
                self.gap_since = Some(now);
                let token = self.fresh_token(0);
                self.gap_token = Some(token);
                let leader = self.leader_id(self.view);
                if leader != ctx.node_id() {
                    ctx.send(leader, NetMsg::Repl(ReplMsg::Pbft(PbftMsg::StateReq { token })));
                }
            }
        } else {
            self.gap_since = None;
        }
    }

    /// The pending ops due for re-forwarding, with their original bytes.
    fn pending_ops_to_forward(&mut self, now: SimTime) -> Vec<ProposeOp> {
        let mut ops = Vec::new();
        let origin = self.my_index;
        // Id-sorted iteration: the re-forward order (and with it the
        // network schedule) must not depend on hash-map layout.
        let mut write_ids: Vec<PostId> = self.pending_writes.keys().copied().collect();
        write_ids.sort_unstable();
        for id in write_ids {
            let w = self.pending_writes.get_mut(&id).expect("key just listed");
            if now.saturating_since(w.last_forward) >= FORWARD_RETRY {
                w.last_forward = now;
                ops.push(ProposeOp::Write { origin, post: w.post.clone() });
            }
        }
        let mut read_seqs: Vec<u64> = self.pending_reads.keys().copied().collect();
        read_seqs.sort_unstable();
        for seq in read_seqs {
            let r = self.pending_reads.get_mut(&seq).expect("key just listed");
            if now.saturating_since(r.last_forward) >= FORWARD_RETRY {
                r.last_forward = now;
                ops.push(ProposeOp::Read { origin, seq });
            }
        }
        ops
    }

    fn on_pbft<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, from: NodeId, msg: PbftMsg) {
        // Consensus traffic must come from a group member.
        let from_idx = match self.sender_index(from) {
            Some(idx) => idx,
            None => {
                self.note_anomaly();
                return;
            }
        };
        match msg {
            PbftMsg::Propose(op) => self.leader_propose(ctx, op),
            PbftMsg::PrePrepare { view, slot, digest, payload } => {
                self.on_pre_prepare(ctx, from_idx, view, slot, digest, payload);
            }
            PbftMsg::Prepare { view, slot, digest } => {
                self.on_vote(ctx, from_idx, view, slot, digest, false);
            }
            PbftMsg::Commit { view, slot, digest } => {
                self.on_vote(ctx, from_idx, view, slot, digest, true);
            }
            PbftMsg::ViewChange { new_view, prepared } => {
                self.on_view_change(ctx, from, from_idx, new_view, prepared);
            }
            PbftMsg::NewView { view, pre_prepares } => {
                self.on_new_view(ctx, from_idx, view, pre_prepares);
            }
            PbftMsg::StateReq { token } => {
                // Only a caught-up replica streams its backlog; a fenced
                // one stays silent and the requester retries.
                if !self.is_fenced() {
                    let frames = self.backlog_frames();
                    let (view, watermark) = (self.view, self.next_apply);
                    ctx.send_ordered(
                        from,
                        NetMsg::Repl(ReplMsg::Pbft(PbftMsg::StateResp {
                            token,
                            view,
                            watermark,
                            frames,
                        })),
                    );
                }
            }
            PbftMsg::StateResp { token, view, watermark, frames } => {
                self.on_state_resp(ctx, from, token, view, watermark, frames);
            }
        }
    }
}

impl<A: Send + 'static> Node<NetMsg<A>> for PbftReplica {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg<A>>) {
        self.obs = ctx.obs().map(|sink| PbftObs::new(sink, ctx.node_id()));
        // Stagger suspicion deterministically per seed/node so replicas
        // do not stampede the same target view at the same instant.
        let jitter = ctx.rng().gen_range(0..400u64);
        self.suspicion = SUSPICION_BASE + SimDuration::from_millis(jitter);
        if let Some(obs) = &self.obs {
            obs.leader.set(self.leader_index(self.view) as f64);
        }
        ctx.set_timer(PULSE, TOKEN_PULSE);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg<A>>, from: NodeId, msg: NetMsg<A>) {
        // Fault-injection control is handled even while crashed (the
        // recover signal must get through).
        if let NetMsg::Control(control) = &msg {
            self.on_control(ctx, control);
            return;
        }
        if self.crashed {
            return; // a crashed process answers nothing
        }
        match msg {
            NetMsg::Request { req_id, op } => match self.brownout {
                Some(BrownoutMode::ThrottleStorm) if !matches!(op, ClientOp::Inspect) => {
                    self.stats.2 += 1;
                    if let Some(obs) = &self.obs {
                        obs.throttled.inc();
                    }
                    Self::respond(ctx, from, req_id, OpResult::Throttled);
                }
                Some(BrownoutMode::Delay(hold)) if !matches!(op, ClientOp::Inspect) => {
                    let token = self.fresh_token(TOKEN_KIND_DELAY);
                    self.delayed_requests.insert(token, (from, req_id, op));
                    ctx.set_timer(hold, token);
                }
                _ => self.handle_request(ctx, from, req_id, op),
            },
            NetMsg::Repl(ReplMsg::Pbft(pbft)) => self.on_pbft(ctx, from, pbft),
            // The weak arms' replication and the quorum arm's protocols
            // are not addressed to an ordered-log replica.
            NetMsg::Repl(_) | NetMsg::Response { .. } | NetMsg::App(_) | NetMsg::Control(_) => {}
        }
        if let Some(obs) = &self.obs {
            obs.applied.set(self.core.len() as f64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg<A>>, token: u64) {
        if self.crashed {
            return; // timers die with the process (re-armed on recover)
        }
        if token == TOKEN_PULSE {
            self.on_pulse(ctx);
            ctx.set_timer(PULSE, TOKEN_PULSE);
            return;
        }
        if token == TOKEN_CATCHUP_RETRY {
            // Re-ask peers that have not streamed the backlog yet; keep
            // the timer alive while the fence is up.
            let Some(catchup) = self.catchup.as_ref() else { return };
            let round = catchup.token;
            let unanswered: Vec<NodeId> = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(i, peer)| *i != self.my_index && !catchup.heard.contains(peer))
                .map(|(_, peer)| *peer)
                .collect();
            for peer in unanswered {
                ctx.send(peer, NetMsg::Repl(ReplMsg::Pbft(PbftMsg::StateReq { token: round })));
            }
            ctx.set_timer(CATCHUP_RETRY, TOKEN_CATCHUP_RETRY);
            return;
        }
        if token & TOKEN_KIND_MASK == TOKEN_KIND_DELAY {
            if let Some((client, req_id, op)) = self.delayed_requests.remove(&token) {
                self.handle_request(ctx, client, req_id, op);
            }
        }
        if let Some(obs) = &self.obs {
            obs.applied.set(self.core.len() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_sim::net::Region;
    use conprobe_sim::{LocalClock, LocalTime, World, WorldConfig};
    use conprobe_store::AuthorId;

    type Msg = NetMsg<()>;

    /// Scripted driver: sends a fixed schedule of messages (client ops,
    /// fault controls, forged consensus traffic) and records responses.
    /// Requests carry their schedule index as `req_id`.
    struct Script {
        schedule: Vec<(SimDuration, NodeId, Msg)>,
        responses: Vec<(u64, OpResult)>,
    }

    impl Script {
        fn new(schedule: Vec<(SimDuration, NodeId, Msg)>) -> Self {
            Script { schedule, responses: Vec::new() }
        }
    }

    impl Node<Msg> for Script {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for (i, (at, _, _)) in self.schedule.iter().enumerate() {
                ctx.set_timer(*at, i as u64);
            }
        }

        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let NetMsg::Response { req_id, result } = msg {
                self.responses.push((req_id, result));
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
            let (_, target, msg) = self.schedule[token as usize].clone();
            ctx.send(target, msg);
        }
    }

    fn post(author: u32, seq: u32) -> Post {
        let id = PostId::new(AuthorId(author), seq);
        Post::new(id, format!("post {id}"), LocalTime::from_nanos(0))
    }

    fn req(index: usize, op: ClientOp) -> Msg {
        NetMsg::Request { req_id: index as u64, op }
    }

    /// A four-replica group (`n = 3f+1`, `f = 1`): the catalog's regions,
    /// with Virginia as the client-less witness. The initial view is 1,
    /// so replica 1 (Tokyo) leads at boot.
    fn build_cluster(world: &mut World<Msg>) -> Vec<NodeId> {
        let regions = [Region::Oregon, Region::Tokyo, Region::Ireland, Region::Virginia];
        let ids: Vec<NodeId> = regions
            .iter()
            .map(|region| {
                world.add_node_with_clock(
                    *region,
                    LocalClock::perfect(),
                    Box::new(PbftReplica::new()),
                )
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            world.node_as_mut::<PbftReplica>(id).unwrap().set_members(ids.clone(), i);
        }
        ids
    }

    /// Steps the world until `until` (sim time) or the queue drains —
    /// bounded, because the pulse timer re-arms forever and
    /// `run_until_idle` would never return.
    fn run(world: &mut World<Msg>, until: SimDuration) {
        let deadline = SimTime::ZERO + until;
        while world.now() < deadline && world.step() {}
    }

    fn at(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn write_is_ordered_through_the_log_and_read_sees_it() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 31);
        let replicas = build_cluster(&mut world);
        let client = world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                (at(800), replicas[2], req(1, ClientOp::Read)),
            ])),
        );
        run(&mut world, at(2_000));
        let script = world.node_as::<Script>(client).unwrap();
        assert_eq!(script.responses.len(), 2);
        assert_eq!(script.responses[0].1, OpResult::WriteAck(PostId::new(AuthorId(1), 1)));
        match &script.responses[1].1 {
            OpResult::ReadOk(ids) => assert_eq!(ids, &[PostId::new(AuthorId(1), 1)]),
            other => panic!("expected ReadOk, got {other:?}"),
        }
        // The write applied at every replica, not just a quorum — the
        // commit broadcast reaches the whole group.
        for &id in &replicas {
            assert_eq!(world.node_as::<PbftReplica>(id).unwrap().applied(), 1);
        }
    }

    #[test]
    fn duplicate_write_is_idempotent_and_reacked() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 32);
        let replicas = build_cluster(&mut world);
        let client = world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                // A retransmit of the same write (same post id, new
                // req_id) must be re-acknowledged, not sequenced twice.
                (at(600), replicas[0], req(1, ClientOp::Write(post(1, 1)))),
                (at(1_200), replicas[2], req(2, ClientOp::Read)),
            ])),
        );
        run(&mut world, at(3_000));
        let script = world.node_as::<Script>(client).unwrap();
        assert_eq!(script.responses.len(), 3, "both write deliveries are acknowledged");
        assert_eq!(world.node_as::<PbftReplica>(replicas[0]).unwrap().applied(), 1);
        match &script.responses[2].1 {
            OpResult::ReadOk(ids) => assert_eq!(ids, &[PostId::new(AuthorId(1), 1)]),
            other => panic!("expected ReadOk, got {other:?}"),
        }
    }

    #[test]
    fn leader_crash_forces_a_view_change_and_ops_still_complete() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 33);
        let replicas = build_cluster(&mut world);
        // Replica 1 (Tokyo) leads view 1; crash it before any traffic.
        // Two front doors then accumulate pending writes, suspect the
        // dead leader, and the witness joins on f+1 votes — view 2
        // installs at replica 2 and both writes commit there.
        let client = world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[1], NetMsg::Control(ControlMsg::Crash)),
                (at(100), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                (at(120), replicas[2], req(1, ClientOp::Write(post(2, 1)))),
                (at(5_000), replicas[0], req(2, ClientOp::Read)),
            ])),
        );
        run(&mut world, at(7_000));
        let script = world.node_as::<Script>(client).unwrap();
        let acks: Vec<_> =
            script.responses.iter().filter(|(_, r)| matches!(r, OpResult::WriteAck(_))).collect();
        assert_eq!(acks.len(), 2, "both writes survive the leader crash: {:?}", script.responses);
        match &script.responses.iter().find(|(id, _)| *id == 2).expect("read answered").1 {
            OpResult::ReadOk(ids) => assert_eq!(ids.len(), 2),
            other => panic!("expected ReadOk, got {other:?}"),
        }
        for &i in &[0usize, 2, 3] {
            let rep = world.node_as::<PbftReplica>(replicas[i]).unwrap();
            assert!(rep.view() > INITIAL_VIEW, "replica {i} moved past the crashed leader's view");
            assert!(rep.views_entered() >= 1);
            assert!(!rep.is_leader() || i == rep.view() as usize % 4);
        }
    }

    #[test]
    fn crash_wipes_state_and_recovery_transfers_the_log_back() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 34);
        let replicas = build_cluster(&mut world);
        let faulty = replicas[2];
        world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                (at(20), replicas[0], req(1, ClientOp::Write(post(2, 1)))),
                (at(900), faulty, NetMsg::Control(ControlMsg::Crash)),
                (at(1_500), faulty, NetMsg::Control(ControlMsg::Recover)),
            ])),
        );
        run(&mut world, at(1_200));
        assert!(world.node_as::<PbftReplica>(faulty).unwrap().is_crashed());
        assert_eq!(world.node_as::<PbftReplica>(faulty).unwrap().applied(), 0);

        run(&mut world, at(5_000));
        let rep = world.node_as::<PbftReplica>(faulty).unwrap();
        assert!(!rep.is_crashed());
        assert!(!rep.is_fenced(), "catch-up must complete");
        assert_eq!(rep.applied(), 2, "state transfer replays the committed log");
        assert_eq!(rep.state_transfers().len(), 1);
        let (frames, watermark, _) = rep.state_transfers()[0];
        assert_eq!(watermark, 2, "two committed write slots");
        assert!(frames >= 2, "peers stream the full backlog");
    }

    #[test]
    fn state_transfer_stream_hash_is_deterministic() {
        let run_once = || {
            let mut world: World<Msg> = World::new(WorldConfig::default(), 35);
            let replicas = build_cluster(&mut world);
            world.add_node(
                Region::Virginia,
                Box::new(Script::new(vec![
                    (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                    (at(20), replicas[0], req(1, ClientOp::Write(post(2, 1)))),
                    (at(900), replicas[2], NetMsg::Control(ControlMsg::Crash)),
                    (at(1_500), replicas[2], NetMsg::Control(ControlMsg::Recover)),
                ])),
            );
            run(&mut world, at(5_000));
            world.node_as::<PbftReplica>(replicas[2]).unwrap().state_transfers().to_vec()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.len(), 1, "exactly one completed transfer");
        assert_eq!(a, b, "same seed, same backlog stream bytes");
    }

    #[test]
    fn fenced_replica_queues_client_ops_until_caught_up() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 36);
        let replicas = build_cluster(&mut world);
        let faulty = replicas[2];
        let client = world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                (at(20), replicas[0], req(1, ClientOp::Write(post(1, 2)))),
                (at(900), faulty, NetMsg::Control(ControlMsg::Crash)),
                (at(1_000), faulty, NetMsg::Control(ControlMsg::Recover)),
                // Sent right as `faulty` recovers: the answer must carry
                // the complete post set, never the empty post-crash
                // state. Retransmitted like the agent RPC layer would;
                // the fence queue collapses duplicates.
                (at(1_001), faulty, req(4, ClientOp::Read)),
                (at(1_051), faulty, req(4, ClientOp::Read)),
            ])),
        );
        run(&mut world, at(6_000));
        let script = world.node_as::<Script>(client).unwrap();
        let reads: Vec<_> = script.responses.iter().filter(|(id, _)| *id == 4).collect();
        assert!(!reads.is_empty(), "the fenced read must eventually be answered");
        for read in reads {
            match &read.1 {
                OpResult::ReadOk(ids) => assert_eq!(
                    ids,
                    &[PostId::new(AuthorId(1), 1), PostId::new(AuthorId(1), 2)],
                    "a fenced read must wait for full catch-up"
                ),
                other => panic!("expected ReadOk, got {other:?}"),
            }
        }
        assert_eq!(world.node_as::<PbftReplica>(faulty).unwrap().state_transfers().len(), 1);
    }

    #[test]
    fn forged_consensus_traffic_from_a_non_member_is_counted_not_fatal() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 37);
        let replicas = build_cluster(&mut world);
        let client = world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                // A commit vote from outside the member list must be
                // dropped and counted, never panicked on or tallied.
                (
                    at(10),
                    replicas[0],
                    NetMsg::Repl(ReplMsg::Pbft(PbftMsg::Commit { view: 1, slot: 0, digest: 7 })),
                ),
                (at(100), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
            ])),
        );
        run(&mut world, at(2_000));
        let rep = world.node_as::<PbftReplica>(replicas[0]).unwrap();
        assert_eq!(rep.protocol_anomalies(), 1, "the forged frame is counted");
        let script = world.node_as::<Script>(client).unwrap();
        assert_eq!(
            script.responses[0].1,
            OpResult::WriteAck(PostId::new(AuthorId(1), 1)),
            "service continues unharmed"
        );
    }

    #[test]
    fn corrupt_backlog_frame_is_refused() {
        let stored =
            StoredPost { post: post(1, 1), server_ts: SimTime::from_nanos(5), arrival_index: 0 };
        let record = JsonValue::Object(vec![
            ("slot".into(), 0u64.to_json()),
            ("op".into(), JsonValue::Str(write_payload(0, &stored))),
        ])
        .to_compact();
        let good = frame::encode_record(&record);
        assert!(PbftReplica::decode_backlog_frame(&good).is_ok());
        // Flip payload bytes: the cpj1 checksum no longer matches.
        let corrupt = good.replace("post", "pXst");
        assert!(PbftReplica::decode_backlog_frame(&corrupt).is_err());
        // A checksummed frame whose embedded op is garbage is refused
        // at decode time too, never deferred to apply time.
        let junk = frame::encode_record(
            &JsonValue::Object(vec![
                ("slot".into(), 0u64.to_json()),
                ("op".into(), JsonValue::Str("{\"kind\":\"evil\"}".into())),
            ])
            .to_compact(),
        );
        assert!(PbftReplica::decode_backlog_frame(&junk).is_err());
    }

    #[test]
    fn log_op_payloads_round_trip() {
        let stored = StoredPost {
            post: Post::new(
                PostId::new(AuthorId(7), 3),
                "body with spaces and \"quotes\"",
                LocalTime::from_nanos(-42),
            ),
            server_ts: SimTime::from_nanos(123_456_789),
            arrival_index: 9,
        };
        let w = write_payload(2, &stored);
        match parse_log_op(&w).unwrap() {
            LogOp::Write { origin, stored: decoded } => {
                assert_eq!(origin, 2);
                assert_eq!(decoded, stored);
            }
            _ => panic!("expected a write op"),
        }
        let r = read_payload(1, 44);
        match parse_log_op(&r).unwrap() {
            LogOp::Read { origin, seq } => {
                assert_eq!((origin, seq), (1, 44));
            }
            _ => panic!("expected a read op"),
        }
        assert!(matches!(parse_log_op(&noop_payload(3)).unwrap(), LogOp::Noop));
        // Distinct noop slots intern to distinct digests.
        assert_ne!(digest_of(&noop_payload(3)), digest_of(&noop_payload(4)));
    }
}
