//! Service presets and deployment.
//!
//! [`ServiceKind`] enumerates the four services the paper measured;
//! [`deploy`] instantiates the corresponding replica topology inside a
//! [`World`] and returns a [`ServiceCluster`] describing where each client
//! region's front door is.
//!
//! The preset parameters are *calibrated*, not measured: they were tuned so
//! that the full measurement campaign (see `conprobe-harness`) reproduces
//! the qualitative shape of the paper's Figures 3–10 (which anomalies appear
//! where, at roughly which rates, with which convergence-time ordering).
//! EXPERIMENTS.md records the paper-vs-measured comparison.

use crate::api::NetMsg;
use crate::replica_node::{DelayDist, ReadPath, ReplicaNode, ReplicaParams};
use conprobe_sim::net::Region;
use conprobe_sim::{LocalClock, NodeId, SimDuration, World};
use conprobe_store::{AffinityMap, OrderingPolicy, RankingConfig, TieBreak};
use std::fmt;

/// The four services of the measurement study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceKind {
    /// Blogger — strongly consistent blog service.
    Blogger,
    /// Google+ "moments".
    GooglePlus,
    /// Facebook user news feed (Graph API).
    FacebookFeed,
    /// Facebook group feed (Graph API).
    FacebookGroup,
    /// Majority-quorum replication with crash-recovery state transfer —
    /// not one of the paper's measured services, but the repo's
    /// strong-consistency control arm: zero anomalies expected under the
    /// same workloads and fault plans that expose the four above.
    Quorum,
    /// PBFT-style ordered-log replication ([`crate::pbft`]) — the second
    /// strong control arm: a replicated state machine where partitions
    /// and crashes force view changes instead of quorum waits. Zero
    /// anomalies expected; its latency-under-faults profile is the
    /// head-to-head comparison against [`ServiceKind::Quorum`].
    Pbft,
}

impl ServiceKind {
    /// The paper's measured services, in the paper's table order. The
    /// campaign matrix, golden fingerprints and figure reproduction
    /// iterate this set; reference designs like [`ServiceKind::Quorum`]
    /// are deliberately excluded (see [`ServiceKind::CATALOG`]).
    pub const ALL: [ServiceKind; 4] = [
        ServiceKind::GooglePlus,
        ServiceKind::Blogger,
        ServiceKind::FacebookFeed,
        ServiceKind::FacebookGroup,
    ];

    /// Every deployable service: the paper's four plus the two strong
    /// control arms. Existing entries keep their positions — tooling and
    /// golden fingerprints index into this order.
    pub const CATALOG: [ServiceKind; 6] = [
        ServiceKind::GooglePlus,
        ServiceKind::Blogger,
        ServiceKind::FacebookFeed,
        ServiceKind::FacebookGroup,
        ServiceKind::Quorum,
        ServiceKind::Pbft,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceKind::Blogger => "Blogger",
            ServiceKind::GooglePlus => "Google+",
            ServiceKind::FacebookFeed => "FB Feed",
            ServiceKind::FacebookGroup => "FB Group",
            ServiceKind::Quorum => "Quorum",
            ServiceKind::Pbft => "PBFT",
        }
    }
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deployed service: replica node ids plus client routing.
#[derive(Debug, Clone)]
pub struct ServiceCluster {
    /// Which service this is.
    pub kind: ServiceKind,
    /// The replica node ids, indexed as the affinity map references them.
    pub replicas: Vec<NodeId>,
    /// Client-region → replica-index routing.
    pub affinity: AffinityMap,
}

impl ServiceCluster {
    /// The front-door node a client in `region` talks to.
    pub fn entry_for(&self, region: Region) -> NodeId {
        self.replicas[self.affinity.replica_for(region)]
    }
}

/// The replica topology of a service: (region, parameters) per replica,
/// plus the affinity map.
#[derive(Debug, Clone)]
pub struct Topology {
    /// One entry per replica.
    pub replicas: Vec<(Region, ReplicaParams)>,
    /// Client routing into `replicas`.
    pub affinity: AffinityMap,
}

/// The calibrated topology for `kind` (see module docs).
pub fn topology(kind: ServiceKind) -> Topology {
    match kind {
        // Single synchronous replica: linearizable, zero anomalies.
        ServiceKind::Blogger => Topology {
            replicas: vec![(Region::Virginia, ReplicaParams::default())],
            affinity: AffinityMap::with_fallback(0),
        },
        // Two DCs (Oregon+Tokyo share DC-West), slow asynchronous
        // propagation, occasional slow write-apply, a stale secondary read
        // path, coarse timestamps broken by per-replica arrival, and
        // anti-entropy every few seconds with canonical re-sequencing.
        //
        // Mechanism → finding map:
        //  * slow write-applies + stale reads → RYW ≈ 22 %, MR ≈ 25 %;
        //  * a slow-applied first write surfaces after its successor →
        //    MW ≈ 6 %, observed repeatedly until re-sequencing;
        //  * near-simultaneous cross-DC writes collide in a timestamp
        //    bucket and tie-break by *local arrival* → order divergence
        //    between cross-DC pairs (OR–JP share a replica → < 1 %);
        //  * seconds-scale propagation → content divergence with
        //    seconds-scale windows, fast for OR–JP.
        ServiceKind::GooglePlus => {
            let base = ReplicaParams {
                ordering: OrderingPolicy::Timestamp {
                    precision: SimDuration::from_millis(6),
                    tie: TieBreak::Arrival,
                },
                read_path: ReadPath::SecondaryIndex {
                    stale_prob: 0.10,
                    lag: DelayDist::Bimodal {
                        fast: SimDuration::from_millis(220),
                        slow_prob: 0.04,
                        slow_base: SimDuration::from_millis(1500),
                        slow_mean: SimDuration::from_millis(2500),
                    },
                },
                apply_delay: DelayDist::Bimodal {
                    fast: SimDuration::from_millis(25),
                    slow_prob: 0.02,
                    slow_base: SimDuration::from_millis(600),
                    slow_mean: SimDuration::from_millis(1200),
                },
                repl_delay: DelayDist::Exp {
                    base: SimDuration::from_millis(350),
                    mean: SimDuration::from_millis(1400),
                },
                anti_entropy: Some(SimDuration::from_secs(6)),
                canonicalize_on_anti_entropy: true,
                canonicalize_on_push: false,
                rate_limit: None,
                write_mode: Default::default(),
            };
            // DC-West (serving Oregon and Tokyo) runs hotter: its slow
            // write path fires more often, matching the paper's higher
            // RYW/MW incidence at those two locations.
            let west = ReplicaParams {
                apply_delay: DelayDist::Bimodal {
                    fast: SimDuration::from_millis(25),
                    slow_prob: 0.045,
                    slow_base: SimDuration::from_millis(600),
                    slow_mean: SimDuration::from_millis(1200),
                },
                // DC-West acts as the order authority: remote posts land in
                // canonical position instantly, so its two agents (Oregon,
                // Tokyo) essentially never observe order divergence between
                // themselves — the paper's "< 1 %".
                canonicalize_on_push: true,
                ..base.clone()
            };
            Topology {
                replicas: vec![(Region::Oregon, west), (Region::Ireland, base)],
                affinity: AffinityMap::gplus_paper(),
            }
        }
        // One replica per agent region, fast propagation, interest-ranked
        // reads.
        ServiceKind::FacebookFeed => {
            let params = ReplicaParams {
                ordering: OrderingPolicy::exact_timestamp(),
                read_path: ReadPath::Ranked(RankingConfig {
                    noise_std_secs: 1.6,
                    top_k: 25,
                    omit_prob: 0.012,
                    index_delay: SimDuration::from_millis(500),
                }),
                apply_delay: DelayDist::Zero,
                repl_delay: DelayDist::Exp {
                    base: SimDuration::from_millis(60),
                    mean: SimDuration::from_millis(120),
                },
                anti_entropy: Some(SimDuration::from_secs(2)),
                canonicalize_on_anti_entropy: false,
                canonicalize_on_push: false,
                rate_limit: None,
                write_mode: Default::default(),
            };
            Topology {
                replicas: vec![
                    (Region::Oregon, params.clone()),
                    (Region::Tokyo, params.clone()),
                    (Region::Ireland, params),
                ],
                affinity: AffinityMap::one_per_agent(),
            }
        }
        // A single consistent main store (everyone normally routes to it —
        // hence zero RYW and near-zero divergence), with second-granularity
        // timestamps and reversed tie-break (the MW ≈ 93 % quirk). A Tokyo
        // replica exists but serves the Tokyo agent only during transient
        // fault episodes (see `conprobe-harness`'s partition plan), which
        // reproduces the paper's 15 content-divergence occurrences.
        ServiceKind::FacebookGroup => {
            let params = ReplicaParams {
                ordering: OrderingPolicy::facebook_group(),
                read_path: ReadPath::Snapshot,
                apply_delay: DelayDist::Zero,
                repl_delay: DelayDist::Exp {
                    base: SimDuration::from_millis(20),
                    mean: SimDuration::from_millis(20),
                },
                anti_entropy: Some(SimDuration::from_secs(2)),
                canonicalize_on_anti_entropy: false,
                canonicalize_on_push: false,
                rate_limit: None,
                write_mode: Default::default(),
            };
            Topology {
                replicas: vec![(Region::Virginia, params.clone()), (Region::Tokyo, params)],
                affinity: AffinityMap::with_fallback(0),
            }
        }
        // The strong control arms. The parameter presets describe the
        // regions, routing and write/read modes; [`deploy`] instantiates
        // them with dedicated node types (which add the crash-recovery
        // state-transfer and consensus protocols `ReplicaNode` lacks).
        ServiceKind::Quorum => topology_quorum(false),
        ServiceKind::Pbft => topology_pbft(),
    }
}

/// A reference topology beyond the paper's four services: three replicas
/// (one per agent region) with majority-synchronous writes and quorum
/// reads. Overlapping quorums give read-your-writes and a single canonical
/// order without any master; without read repair, quorum reads are *not*
/// monotonic (different majorities can answer successive reads).
pub fn topology_quorum(read_repair: bool) -> Topology {
    let params = ReplicaParams {
        ordering: OrderingPolicy::exact_timestamp(),
        read_path: ReadPath::Quorum { read_repair },
        write_mode: crate::replica_node::WriteMode::SyncMajority,
        apply_delay: DelayDist::Zero,
        repl_delay: DelayDist::Zero,
        anti_entropy: Some(SimDuration::from_secs(2)),
        canonicalize_on_anti_entropy: false,
        canonicalize_on_push: false,
        rate_limit: None,
    };
    Topology {
        replicas: vec![
            (Region::Oregon, params.clone()),
            (Region::Tokyo, params.clone()),
            (Region::Ireland, params),
        ],
        affinity: AffinityMap::one_per_agent(),
    }
}

/// The PBFT-style ordered-log arm's topology: four replicas (`n = 3f+1`
/// with `f = 1`) — one per agent region plus a North Virginia witness
/// that never fronts clients. Writes and reads are both sequenced
/// through the leader's log (ordered reads are what make the arm
/// linearizable), so the preset's `SyncMajority` write mode and snapshot
/// read path describe the observable contract, not the mechanism.
pub fn topology_pbft() -> Topology {
    let params = ReplicaParams {
        ordering: OrderingPolicy::exact_timestamp(),
        read_path: ReadPath::Snapshot,
        write_mode: crate::replica_node::WriteMode::SyncMajority,
        apply_delay: DelayDist::Zero,
        repl_delay: DelayDist::Zero,
        anti_entropy: None,
        canonicalize_on_anti_entropy: false,
        canonicalize_on_push: false,
        rate_limit: None,
    };
    Topology {
        replicas: vec![
            (Region::Oregon, params.clone()),
            (Region::Tokyo, params.clone()),
            (Region::Ireland, params.clone()),
            (Region::Virginia, params),
        ],
        affinity: AffinityMap::one_per_agent(),
    }
}

/// A reference topology beyond the paper's four services: one primary
/// (North Virginia) with a read-only backup in every agent region. Writes
/// are forwarded to the primary and replicated back asynchronously; reads
/// are served by the local backup. The only anomaly this design admits is
/// read-your-writes staleness (plus its monotonic-writes shadow while a
/// client's second write outruns the first's replication): a single writer
/// order means no order divergence, and backups apply the primary's FIFO
/// stream, so views never mutually diverge.
pub fn topology_primary_backup(repl_delay_ms: u64) -> Topology {
    let primary = ReplicaParams {
        ordering: OrderingPolicy::Arrival,
        read_path: ReadPath::Snapshot,
        write_mode: crate::replica_node::WriteMode::LocalAck,
        apply_delay: DelayDist::Zero,
        repl_delay: DelayDist::Exp {
            base: SimDuration::from_millis(repl_delay_ms),
            mean: SimDuration::from_millis(repl_delay_ms / 2 + 1),
        },
        anti_entropy: Some(SimDuration::from_secs(2)),
        canonicalize_on_anti_entropy: false,
        canonicalize_on_push: false,
        rate_limit: None,
    };
    let backup = ReplicaParams {
        write_mode: crate::replica_node::WriteMode::ForwardToPrimary,
        // Backups never originate posts; replication flows from the
        // primary. Their own repl/anti-entropy stays quiet but harmless.
        ..primary.clone()
    };
    let mut affinity = AffinityMap::with_fallback(1);
    affinity.assign(Region::Oregon, 1).assign(Region::Tokyo, 2).assign(Region::Ireland, 3);
    Topology {
        replicas: vec![
            (Region::Virginia, primary),
            (Region::Oregon, backup.clone()),
            (Region::Tokyo, backup.clone()),
            (Region::Ireland, backup),
        ],
        affinity,
    }
}

/// Deploys the calibrated topology for `kind` into `world`.
///
/// Replica nodes get perfect clocks (service infrastructure is internally
/// time-synchronized; only measurement agents have drifting clocks).
pub fn deploy<A: Send + 'static>(
    world: &mut World<NetMsg<A>>,
    kind: ServiceKind,
) -> ServiceCluster {
    if kind == ServiceKind::Quorum {
        return deploy_quorum(world);
    }
    if kind == ServiceKind::Pbft {
        return deploy_pbft(world);
    }
    deploy_topology(world, kind, topology(kind))
}

/// Deploys the majority-quorum reference service: one
/// [`QuorumReplica`](crate::quorum::QuorumReplica) per agent region,
/// fully meshed, using [`topology_quorum`]'s regions and routing.
///
/// This is separate from [`deploy_topology`] because the quorum service
/// runs a dedicated node type (majority writes, quorum reads, and the
/// crash-recovery state-transfer protocol) rather than a parameterized
/// [`ReplicaNode`].
pub fn deploy_quorum<A: Send + 'static>(world: &mut World<NetMsg<A>>) -> ServiceCluster {
    use crate::quorum::QuorumReplica;
    let topo = topology_quorum(false);
    let mut ids = Vec::with_capacity(topo.replicas.len());
    for (region, _) in &topo.replicas {
        let id = world.add_node_with_clock(
            *region,
            LocalClock::perfect(),
            Box::new(QuorumReplica::new()),
        );
        ids.push(id);
    }
    for (i, id) in ids.iter().enumerate() {
        let peers: Vec<NodeId> =
            ids.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, p)| *p).collect();
        world
            .node_as_mut::<QuorumReplica>(*id)
            .expect("just added a QuorumReplica")
            .set_peers(peers);
    }
    ServiceCluster { kind: ServiceKind::Quorum, replicas: ids, affinity: topo.affinity }
}

/// Deploys the PBFT-style ordered-log service: one
/// [`PbftReplica`](crate::pbft::PbftReplica) per [`topology_pbft`]
/// region, each knowing the full ordered member list (leader rotation
/// indexes into it), using the preset's routing.
pub fn deploy_pbft<A: Send + 'static>(world: &mut World<NetMsg<A>>) -> ServiceCluster {
    use crate::pbft::PbftReplica;
    let topo = topology_pbft();
    let mut ids = Vec::with_capacity(topo.replicas.len());
    for (region, _) in &topo.replicas {
        let id =
            world.add_node_with_clock(*region, LocalClock::perfect(), Box::new(PbftReplica::new()));
        ids.push(id);
    }
    for (i, id) in ids.iter().enumerate() {
        world
            .node_as_mut::<PbftReplica>(*id)
            .expect("just added a PbftReplica")
            .set_members(ids.clone(), i);
    }
    ServiceCluster { kind: ServiceKind::Pbft, replicas: ids, affinity: topo.affinity }
}

/// Deploys an explicit topology (for ablations and custom services).
pub fn deploy_topology<A: Send + 'static>(
    world: &mut World<NetMsg<A>>,
    kind: ServiceKind,
    topo: Topology,
) -> ServiceCluster {
    let mut ids = Vec::with_capacity(topo.replicas.len());
    for (region, params) in &topo.replicas {
        let id = world.add_node_with_clock(
            *region,
            LocalClock::perfect(),
            Box::new(ReplicaNode::new(params.clone())),
        );
        ids.push(id);
    }
    for (i, id) in ids.iter().enumerate() {
        let peers: Vec<NodeId> =
            ids.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, p)| *p).collect();
        world.node_as_mut::<ReplicaNode>(*id).expect("just added a ReplicaNode").set_peers(peers);
    }
    ServiceCluster { kind, replicas: ids, affinity: topo.affinity }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_sim::WorldConfig;

    fn world() -> World<NetMsg<()>> {
        World::new(WorldConfig::default(), 5)
    }

    #[test]
    fn blogger_is_a_single_replica() {
        let mut w = world();
        let cluster = deploy(&mut w, ServiceKind::Blogger);
        assert_eq!(cluster.replicas.len(), 1);
        for region in Region::AGENTS {
            assert_eq!(cluster.entry_for(region), cluster.replicas[0]);
        }
    }

    #[test]
    fn gplus_routing_matches_paper_inference() {
        let mut w = world();
        let cluster = deploy(&mut w, ServiceKind::GooglePlus);
        assert_eq!(cluster.replicas.len(), 2);
        assert_eq!(cluster.entry_for(Region::Oregon), cluster.entry_for(Region::Tokyo));
        assert_ne!(cluster.entry_for(Region::Oregon), cluster.entry_for(Region::Ireland));
    }

    #[test]
    fn fbfeed_has_one_replica_per_agent() {
        let mut w = world();
        let cluster = deploy(&mut w, ServiceKind::FacebookFeed);
        assert_eq!(cluster.replicas.len(), 3);
        let entries: std::collections::HashSet<_> =
            Region::AGENTS.iter().map(|r| cluster.entry_for(*r)).collect();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn fbgroup_normally_routes_everyone_to_main() {
        let mut w = world();
        let cluster = deploy(&mut w, ServiceKind::FacebookGroup);
        assert_eq!(cluster.replicas.len(), 2, "a Tokyo replica exists for fault episodes");
        for region in Region::AGENTS {
            assert_eq!(cluster.entry_for(region), cluster.replicas[0]);
        }
    }

    #[test]
    fn peers_are_fully_meshed() {
        let mut w = world();
        let cluster = deploy(&mut w, ServiceKind::FacebookFeed);
        for id in &cluster.replicas {
            let node = w.node_as::<ReplicaNode>(*id).unwrap();
            let peers = node.peers();
            assert_eq!(peers.len(), 2);
            assert!(!peers.contains(id), "a replica must not peer with itself");
            for p in peers {
                assert!(cluster.replicas.contains(p));
            }
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(ServiceKind::GooglePlus.name(), "Google+");
        assert_eq!(ServiceKind::FacebookGroup.to_string(), "FB Group");
        assert_eq!(ServiceKind::ALL.len(), 4, "the campaign matrix covers the paper's services");
    }

    #[test]
    fn catalog_is_the_paper_services_plus_control_arms() {
        assert_eq!(ServiceKind::CATALOG.len(), 6);
        for kind in ServiceKind::ALL {
            assert!(ServiceKind::CATALOG.contains(&kind));
        }
        assert!(ServiceKind::CATALOG.contains(&ServiceKind::Quorum));
        assert!(ServiceKind::CATALOG.contains(&ServiceKind::Pbft));
        assert!(!ServiceKind::ALL.contains(&ServiceKind::Quorum));
        assert!(!ServiceKind::ALL.contains(&ServiceKind::Pbft));
        assert_eq!(ServiceKind::Quorum.name(), "Quorum");
        assert_eq!(ServiceKind::Pbft.name(), "PBFT");
    }

    #[test]
    fn pbft_deploys_dedicated_replicas_with_a_witness() {
        let mut w = world();
        let cluster = deploy(&mut w, ServiceKind::Pbft);
        assert_eq!(cluster.kind, ServiceKind::Pbft);
        assert_eq!(cluster.replicas.len(), 4, "n = 3f+1 with f = 1");
        let entries: std::collections::HashSet<_> =
            Region::AGENTS.iter().map(|r| cluster.entry_for(*r)).collect();
        assert_eq!(entries.len(), 3, "each agent region has its own front door");
        assert!(
            !entries.contains(&cluster.replicas[3]),
            "the Virginia witness never fronts clients"
        );
        for id in &cluster.replicas {
            assert!(
                w.node_as::<crate::pbft::PbftReplica>(*id).is_some(),
                "the pbft service runs dedicated PbftReplica nodes"
            );
        }
    }

    #[test]
    fn quorum_deploys_dedicated_replicas_one_per_agent() {
        let mut w = world();
        let cluster = deploy(&mut w, ServiceKind::Quorum);
        assert_eq!(cluster.kind, ServiceKind::Quorum);
        assert_eq!(cluster.replicas.len(), 3);
        let entries: std::collections::HashSet<_> =
            Region::AGENTS.iter().map(|r| cluster.entry_for(*r)).collect();
        assert_eq!(entries.len(), 3, "each agent region has its own front door");
        for id in &cluster.replicas {
            assert!(
                w.node_as::<crate::quorum::QuorumReplica>(*id).is_some(),
                "the quorum service runs dedicated QuorumReplica nodes"
            );
        }
    }
}
