//! # conprobe-services — simulated stand-ins for the paper's four services
//!
//! The measurement study probed **Google+** (moments), **Blogger**,
//! **Facebook Feed** and **Facebook Group** through their public web APIs.
//! Those APIs no longer exist (Google+ retired moments and Facebook removed
//! news-feed reads from the Graph API — as the paper itself notes), so this
//! crate builds behavioural models of the four back-ends on top of
//! `conprobe-sim` + `conprobe-store`, exposing the same black-box surface
//! the paper's agents saw: opaque `write(content)` / `read() → sequence`
//! requests over the (simulated) network.
//!
//! Each model is a configuration of one generic [`replica_node::ReplicaNode`]:
//!
//! | Service | Model (mechanism → paper finding) |
//! |---|---|
//! | **Blogger** | Single synchronous replica, reads hit it directly → zero anomalies ("appears to be offering a form of strong consistency"). |
//! | **Google+** | Two multi-master replicas (Oregon+Tokyo share one, per the paper's inference), asynchronous apply + slow inter-DC propagation, arrival-order reads through per-DC front-end caches, periodic anti-entropy with canonical re-sequencing → RYW/MR/MW at moderate rates, content divergence up to ~85 %, multi-second windows, OR–JP pair converging much faster. |
//! | **Facebook Feed** | One replica per agent region, fast propagation, **interest-ranked** reads (noise + top-K + omissions + index lag) → RYW ≈ 99 %, MW ≈ 89 %, MR ≈ 46 %, order divergence ≈ 100 % with most tests never converging. |
//! | **Facebook Group** | Main replica + Tokyo replica, synchronous local apply, fast replication, **1-second timestamp ordering with reversed tie-break** → MW ≈ 93 % observed identically by everyone, RYW = 0, divergence only under (injected) transient Tokyo partitions. |
//!
//! See [`catalog`] for the tuned parameter presets and [`catalog::deploy`]
//! for wiring a service into a [`conprobe_sim::World`].

//! ## Example: deploying a service into a world
//!
//! ```
//! use conprobe_services::{deploy, NetMsg, ServiceKind};
//! use conprobe_sim::net::Region;
//! use conprobe_sim::{World, WorldConfig};
//!
//! let mut world: World<NetMsg<()>> = World::new(WorldConfig::default(), 1);
//! let cluster = deploy(&mut world, ServiceKind::GooglePlus);
//! // Oregon and Tokyo share a front door (the paper's inference);
//! // Ireland gets the other datacenter.
//! assert_eq!(cluster.entry_for(Region::Oregon), cluster.entry_for(Region::Tokyo));
//! assert_ne!(cluster.entry_for(Region::Oregon), cluster.entry_for(Region::Ireland));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod catalog;
pub mod fault_driver;
pub mod live;
pub mod pbft;
pub mod quorum;
pub mod replica_node;
pub mod shard;

pub use api::{ClientOp, ControlMsg, NetMsg, OpResult, ReplMsg};
pub use catalog::{deploy, ServiceCluster, ServiceKind};
pub use fault_driver::{ExecutedAction, FaultDriver};
pub use live::{LiveCluster, LiveConfig, StaleWindow};
pub use pbft::{PbftMsg, PbftReplica};
pub use quorum::QuorumReplica;
pub use replica_node::{DelayDist, ReadPath, ReplicaNode, ReplicaParams};
pub use shard::ShardRing;
