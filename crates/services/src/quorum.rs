//! Majority-quorum replica with crash-recovery state transfer — the
//! strong-consistency control arm the measured services lack.
//!
//! Every [`QuorumReplica`] is both a front door and a storage replica:
//!
//! * **writes** apply locally and replicate synchronously
//!   ([`ReplMsg::SyncPush`]); the client is acknowledged only once a
//!   majority of replicas (this one included) holds the post.
//! * **reads** collect snapshots from a majority
//!   ([`ReplMsg::SnapshotReq`]) and present the merged set in canonical
//!   timestamp order, so overlapping quorums guarantee read-your-writes
//!   and no two front doors ever disagree on order.
//! * **crash recovery** is an explicit state-transfer protocol: a
//!   recovering replica broadcasts [`ReplMsg::CatchupReq`] and peers
//!   stream their state back as `cpj1` length-prefixed, checksummed
//!   records ([`conprobe_json::frame`] — the campaign journal's format),
//!   each carrying one stored post, plus a *commit watermark* (the
//!   responder's applied-post count).
//!
//! **Read-fencing invariant.** From the instant a replica recovers until
//! it has (a) verified and applied catch-up streams from enough peers
//! that any write quorum is intersected (`⌈n/2⌉` of its peers) and (b)
//! reached a local state at or past the highest watermark heard, it
//! serves **no reads**: client reads are queued behind the fence and
//! answered after catch-up, and the replica ignores peer
//! [`ReplMsg::SnapshotReq`]s so its incomplete state can never count
//! toward someone else's read quorum. Writes keep flowing (a fresh write
//! needs no history), as do inbound [`ReplMsg::SyncPush`]es — they only
//! make the fence lift sooner.
//!
//! The node is [`FaultDriver`](crate::fault_driver::FaultDriver)-aware:
//! it honours the same [`ControlMsg`] crash/recover/brownout protocol as
//! [`ReplicaNode`](crate::replica_node::ReplicaNode), so `conprobe
//! chaos` drives it unchanged.

use crate::api::{ClientOp, ControlMsg, NetMsg, OpResult, ReplMsg};
use crate::replica_node::quorum_order;
use conprobe_json::{frame, member, FromJson, JsonError, JsonValue, ToJson};
use conprobe_obs::{Counter, Gauge, ObsSink, Severity};
use conprobe_sim::{BrownoutMode, Context, LocalTime, Node, NodeId, SimDuration, SimTime};
use conprobe_store::{OrderingPolicy, Post, PostId, ReplicaCore, StoredPost};
use std::collections::{HashMap, HashSet};

/// Fixed timer token: re-broadcast [`ReplMsg::CatchupReq`] to peers that
/// have not answered yet (requests or responses may be lost to fault
/// injection).
const TOKEN_CATCHUP_RETRY: u64 = 0;
/// Timer-token kind: a brownout-held client request.
const TOKEN_KIND_DELAY: u64 = 3 << 62;
const TOKEN_KIND_MASK: u64 = 3 << 62;

/// How long a fenced replica waits before re-asking unanswered peers.
const CATCHUP_RETRY: SimDuration = SimDuration::from_millis(500);

/// Serializes one stored post as the compact-JSON payload of a catch-up
/// frame. Field order is fixed, so the encoding — and therefore the
/// framed stream and its hash — is byte-deterministic. Shared with the
/// live cluster's wire-side rejoin path (`live.rs`), which speaks the
/// same `cpj1` record format.
pub(crate) fn stored_post_to_payload(p: &StoredPost) -> String {
    JsonValue::Object(vec![
        ("author".into(), p.post.id.author.0.to_json()),
        ("seq".into(), p.post.id.seq.to_json()),
        ("content".into(), JsonValue::Str(p.post.content.clone())),
        ("client_ts".into(), p.post.client_ts.as_nanos().to_json()),
        ("server_ts".into(), p.server_ts.as_nanos().to_json()),
        ("arrival".into(), p.arrival_index.to_json()),
    ])
    .to_compact()
}

/// Parses a catch-up frame payload back into a stored post.
pub(crate) fn stored_post_from_payload(payload: &str) -> Result<StoredPost, JsonError> {
    let doc = conprobe_json::parse(payload)?;
    let id = PostId::new(
        conprobe_store::AuthorId(u32::from_json(member(&doc, "author")?)?),
        u32::from_json(member(&doc, "seq")?)?,
    );
    let content = String::from_json(member(&doc, "content")?)?;
    let client_ts = LocalTime::from_nanos(i64::from_json(member(&doc, "client_ts")?)?);
    let server_ts = SimTime::from_nanos(u64::from_json(member(&doc, "server_ts")?)?);
    let arrival_index = u64::from_json(member(&doc, "arrival")?)?;
    Ok(StoredPost { post: Post::new(id, content, client_ts), server_ts, arrival_index })
}

/// A client write waiting for majority acknowledgement.
struct PendingWrite {
    client: NodeId,
    req_id: u64,
    post_id: PostId,
    acks_remaining: usize,
}

/// A client read waiting for a majority of snapshots.
struct PendingRead {
    client: NodeId,
    req_id: u64,
    responses_remaining: usize,
    merged: Vec<StoredPost>,
}

/// One in-progress state transfer (this replica is the recovering side).
struct Catchup {
    /// Correlation token; responses carrying any other token are stale.
    token: u64,
    /// Peers whose stream has been verified and applied.
    heard: HashSet<NodeId>,
    /// Highest commit watermark heard from any responder.
    watermark: u64,
    /// Total frames verified across responders.
    frames: u64,
    /// Running FNV-1a over every verified frame, in arrival order — the
    /// byte-determinism witness logged on completion.
    stream_hash: u64,
}

/// Observability handles, resolved in `on_start`. Instrumentation only:
/// no randomness, no messages — behaviour is identical without a sink.
struct QuorumObs {
    sink: ObsSink,
    applied: Gauge,
    fenced: Gauge,
    writes: Counter,
    reads: Counter,
    throttled: Counter,
    state_transfers: Counter,
    protocol_anomalies: Counter,
}

impl QuorumObs {
    fn new(sink: &ObsSink, node: NodeId) -> Self {
        let prefix = format!("services.replica.{node}");
        let m = &sink.metrics;
        QuorumObs {
            applied: m.gauge(&format!("{prefix}.applied")),
            fenced: m.gauge(&format!("{prefix}.fenced")),
            writes: m.counter(&format!("{prefix}.writes")),
            reads: m.counter(&format!("{prefix}.reads")),
            throttled: m.counter(&format!("{prefix}.throttled")),
            state_transfers: m.counter(&format!("{prefix}.state_transfers")),
            protocol_anomalies: m.counter(&format!("{prefix}.protocol_anomalies")),
            sink: sink.clone(),
        }
    }

    fn event(&self, now: SimTime, severity: Severity, message: impl FnOnce() -> String) {
        if self.sink.log.enabled(severity, "services") {
            self.sink.log.record(now.as_nanos(), severity, "services", message());
        }
    }
}

/// A majority-quorum replica (see the module docs for the protocol).
pub struct QuorumReplica {
    core: ReplicaCore,
    peers: Vec<NodeId>,
    next_token: u64,
    /// True while crashed: every message except [`ControlMsg`] is ignored.
    crashed: bool,
    /// The read fence: `Some` while recovering, cleared on completion.
    catchup: Option<Catchup>,
    /// Client reads queued behind the read fence: `(client, req_id)`.
    fenced_reads: Vec<(NodeId, u64)>,
    pending_writes: HashMap<u64, PendingWrite>,
    pending_reads: HashMap<u64, PendingRead>,
    /// Active front-door brownout. Survives a crash (external overload,
    /// not volatile process state), like `ReplicaNode`.
    brownout: Option<BrownoutMode>,
    delayed_requests: HashMap<u64, (NodeId, u64, ClientOp)>,
    /// `(writes, reads, throttled)` counters for tests/diagnostics.
    stats: (u64, u64, u64),
    /// Malformed or replayed peer frames ignored-and-counted instead of
    /// panicking (`services.*.protocol_anomalies`).
    anomalies: u64,
    /// Completed state transfers: `(frames, watermark, stream_hash)`.
    transfers: Vec<(u64, u64, u64)>,
    obs: Option<QuorumObs>,
}

impl std::fmt::Debug for QuorumReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuorumReplica")
            .field("posts", &self.core.len())
            .field("peers", &self.peers)
            .field("fenced", &self.is_fenced())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for QuorumReplica {
    fn default() -> Self {
        Self::new()
    }
}

impl QuorumReplica {
    /// Creates a replica with no peers (install them with
    /// [`QuorumReplica::set_peers`] once ids are known).
    pub fn new() -> Self {
        QuorumReplica {
            core: ReplicaCore::new(OrderingPolicy::exact_timestamp()),
            peers: Vec::new(),
            next_token: 1,
            crashed: false,
            catchup: None,
            fenced_reads: Vec::new(),
            pending_writes: HashMap::new(),
            pending_reads: HashMap::new(),
            brownout: None,
            delayed_requests: HashMap::new(),
            stats: (0, 0, 0),
            anomalies: 0,
            transfers: Vec::new(),
            obs: None,
        }
    }

    /// Installs the peer replica set.
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    /// Number of posts applied at this replica (diagnostics).
    pub fn applied(&self) -> usize {
        self.core.len()
    }

    /// Whether the replica is currently crashed (fault injection).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Whether the read fence is up (recovering, not yet caught up).
    pub fn is_fenced(&self) -> bool {
        self.catchup.is_some()
    }

    /// `(writes, reads, throttled)` request counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.stats
    }

    /// Malformed or replayed peer frames ignored-and-counted.
    pub fn protocol_anomalies(&self) -> u64 {
        self.anomalies
    }

    /// Counts one inconsistent peer frame instead of panicking on it.
    fn note_anomaly(&mut self) {
        self.anomalies += 1;
        if let Some(obs) = &self.obs {
            obs.protocol_anomalies.inc();
        }
    }

    /// Completed state transfers as `(frames, watermark, stream_hash)`
    /// tuples, in completion order — the byte-determinism witness.
    pub fn state_transfers(&self) -> &[(u64, u64, u64)] {
        &self.transfers
    }

    /// Majority size over peers + self (write/read quorum).
    fn majority(&self) -> usize {
        self.peers.len().div_ceil(2) + 1
    }

    /// Catch-up quorum: how many *peers* must stream state before the
    /// fence lifts. A crashed replica restarts empty, so its recovered
    /// state must cover every write quorum that committed without it:
    /// with `n = peers + 1` replicas and writes at `majority(n)`, any
    /// `⌈n/2⌉` peers intersect every write quorum.
    fn catchup_quorum(&self) -> usize {
        (self.peers.len() + 1).div_ceil(2)
    }

    /// This replica's commit watermark: how many posts it has applied.
    fn watermark(&self) -> u64 {
        self.core.len() as u64
    }

    fn fresh_token(&mut self, kind: u64) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        kind | t
    }

    fn respond<A>(ctx: &mut Context<'_, NetMsg<A>>, client: NodeId, req_id: u64, result: OpResult) {
        ctx.send(client, NetMsg::Response { req_id, result });
    }

    /// Majority write: apply locally, sync-push to every peer, ack the
    /// client once `majority - 1` peers acked. Duplicate deliveries (the
    /// agent RPC layer retransmits lost requests) re-run the whole
    /// protocol so a lost `PushAck` or response can always be recovered.
    fn quorum_write<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        client: NodeId,
        req_id: u64,
        post: Post,
    ) {
        let server_ts = ctx.true_now();
        let post_id = post.id;
        let stored = match self.core.apply_new(post, server_ts).cloned() {
            Some(stored) => stored,
            None => {
                // Duplicate: find the original record so the re-push
                // carries identical bytes. A dedupe hit whose record is
                // missing from the store is an inconsistency a peer
                // frame must never turn into a panic: count it and ack
                // the duplicate (the id is committed either way).
                match self.core.snapshot_posts().iter().find(|p| p.id() == post_id).cloned() {
                    Some(stored) => stored,
                    None => {
                        self.note_anomaly();
                        Self::respond(ctx, client, req_id, OpResult::WriteAck(post_id));
                        return;
                    }
                }
            }
        };
        let acks_remaining = self.majority().saturating_sub(1);
        if acks_remaining == 0 {
            Self::respond(ctx, client, req_id, OpResult::WriteAck(post_id));
            return;
        }
        let token = self.fresh_token(0);
        self.pending_writes.insert(token, PendingWrite { client, req_id, post_id, acks_remaining });
        for &peer in &self.peers {
            ctx.send_ordered(
                peer,
                NetMsg::Repl(ReplMsg::SyncPush { token, posts: vec![stored.clone()] }),
            );
        }
    }

    /// Quorum read: merge this replica's snapshot with `majority - 1`
    /// peer snapshots, answer in canonical timestamp order.
    fn quorum_read<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, client: NodeId, req_id: u64) {
        let responses_remaining = self.majority().saturating_sub(1);
        let merged = self.core.snapshot_posts().to_vec();
        if responses_remaining == 0 {
            Self::respond(ctx, client, req_id, OpResult::ReadOk(quorum_order(merged)));
            return;
        }
        let token = self.fresh_token(0);
        self.pending_reads
            .insert(token, PendingRead { client, req_id, responses_remaining, merged });
        for &peer in &self.peers {
            ctx.send(peer, NetMsg::Repl(ReplMsg::SnapshotReq { token }));
        }
    }

    fn on_snapshot_resp<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        token: u64,
        posts: Vec<StoredPost>,
    ) {
        let done = {
            let Some(pending) = self.pending_reads.get_mut(&token) else {
                return; // answered with an earlier majority
            };
            for p in posts {
                if !pending.merged.iter().any(|q| q.id() == p.id()) {
                    pending.merged.push(p);
                }
            }
            pending.responses_remaining = pending.responses_remaining.saturating_sub(1);
            pending.responses_remaining == 0
        };
        if done {
            let Some(p) = self.pending_reads.remove(&token) else {
                // The entry vanished between the borrow above and here —
                // a replayed token, not a reason to die.
                self.note_anomaly();
                return;
            };
            Self::respond(ctx, p.client, p.req_id, OpResult::ReadOk(quorum_order(p.merged)));
        }
    }

    /// Begins (or restarts) recovery: raise the read fence and ask every
    /// peer for a checksummed state stream.
    fn begin_catchup<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>) {
        let token = self.fresh_token(0);
        self.catchup = Some(Catchup {
            token,
            heard: HashSet::new(),
            watermark: 0,
            frames: 0,
            stream_hash: frame::FNV64_BASIS,
        });
        if let Some(obs) = &self.obs {
            obs.fenced.set(1.0);
        }
        for &peer in &self.peers {
            ctx.send(peer, NetMsg::Repl(ReplMsg::CatchupReq { token }));
        }
        ctx.set_timer(CATCHUP_RETRY, TOKEN_CATCHUP_RETRY);
    }

    /// Applies one verified catch-up stream; lifts the fence when the
    /// catch-up quorum has reported and the watermark is reached.
    fn on_catchup_resp<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from: NodeId,
        token: u64,
        watermark: u64,
        frames: Vec<String>,
    ) {
        let now = ctx.true_now();
        {
            let Some(catchup) = self.catchup.as_mut() else { return };
            if catchup.token != token || catchup.heard.contains(&from) {
                return; // stale round or duplicate responder
            }
            // Verify every frame before applying any of it: a corrupt
            // stream is refused whole, and the retry timer re-requests.
            let mut posts = Vec::with_capacity(frames.len());
            for line in &frames {
                match frame::decode_record(line).map_err(|e| e.to_string()).and_then(|payload| {
                    stored_post_from_payload(payload).map_err(|e| e.to_string())
                }) {
                    Ok(post) => posts.push(post),
                    Err(reason) => {
                        if let Some(obs) = &self.obs {
                            let node = ctx.node_id();
                            obs.event(now, Severity::Warn, || {
                                format!(
                                    "replica {node} refused catch-up stream from {from}: {reason}"
                                )
                            });
                        }
                        return;
                    }
                }
            }
            catchup.heard.insert(from);
            catchup.watermark = catchup.watermark.max(watermark);
            catchup.frames += frames.len() as u64;
            for line in &frames {
                catchup.stream_hash = frame::fnv64_fold(catchup.stream_hash, line.as_bytes());
            }
            for post in posts {
                self.core.apply_replicated(post);
            }
        }
        let done = {
            let catchup = self.catchup.as_ref().expect("checked above");
            catchup.heard.len() >= self.catchup_quorum() && self.watermark() >= catchup.watermark
        };
        if done {
            let catchup = self.catchup.take().expect("checked above");
            self.transfers.push((catchup.frames, catchup.watermark, catchup.stream_hash));
            if let Some(obs) = &self.obs {
                obs.fenced.set(0.0);
                obs.state_transfers.inc();
                let node = ctx.node_id();
                let applied = self.core.len();
                obs.event(now, Severity::Info, || {
                    format!(
                        "replica {node} state transfer complete: {} frame(s) from {} peer(s), \
                         watermark {}, {applied} post(s), stream hash {:016x}",
                        catchup.frames,
                        catchup.heard.len(),
                        catchup.watermark,
                        catchup.stream_hash,
                    )
                });
            }
            // The fence is down: serve every read queued behind it.
            for (client, req_id) in std::mem::take(&mut self.fenced_reads) {
                self.quorum_read(ctx, client, req_id);
            }
        }
    }

    /// Serves one client request (or queues a read behind the fence).
    /// Called on receipt and when a brownout hold expires.
    fn handle_request<A>(
        &mut self,
        ctx: &mut Context<'_, NetMsg<A>>,
        from: NodeId,
        req_id: u64,
        op: ClientOp,
    ) {
        match op {
            ClientOp::Write(post) => {
                self.stats.0 += 1;
                if let Some(obs) = &self.obs {
                    obs.writes.inc();
                }
                self.quorum_write(ctx, from, req_id, post);
            }
            ClientOp::Read => {
                self.stats.1 += 1;
                if let Some(obs) = &self.obs {
                    obs.reads.inc();
                }
                if self.is_fenced() {
                    // Read fence: no reads until caught up past the
                    // rejoin watermark. Duplicate queue entries (RPC
                    // retransmits) are collapsed.
                    if !self.fenced_reads.contains(&(from, req_id)) {
                        self.fenced_reads.push((from, req_id));
                    }
                } else {
                    self.quorum_read(ctx, from, req_id);
                }
            }
            ClientOp::Inspect => {
                // White-box instrumentation: authoritative local state,
                // exempt from the fence (it bypasses the read protocol).
                let seq = self.core.snapshot().to_vec();
                Self::respond(ctx, from, req_id, OpResult::ReadOk(seq));
            }
        }
    }

    fn on_control<A>(&mut self, ctx: &mut Context<'_, NetMsg<A>>, msg: &ControlMsg) {
        let now = ctx.true_now();
        let node = ctx.node_id();
        // Like `ReplicaNode`, every transition is an idempotent no-op
        // when the state already holds: the fault driver retransmits
        // controls against message loss.
        match msg {
            ControlMsg::Crash => {
                if self.crashed {
                    return;
                }
                self.crashed = true;
                // Volatile state is lost wholesale.
                self.core = ReplicaCore::new(OrderingPolicy::exact_timestamp());
                self.catchup = None;
                self.fenced_reads.clear();
                self.pending_writes.clear();
                self.pending_reads.clear();
                self.delayed_requests.clear();
                if let Some(obs) = &self.obs {
                    obs.applied.set(0.0);
                    obs.fenced.set(0.0);
                    obs.event(now, Severity::Warn, || format!("replica {node} crashed"));
                }
            }
            ControlMsg::Recover => {
                if self.crashed {
                    self.crashed = false;
                    if let Some(obs) = &self.obs {
                        obs.event(now, Severity::Info, || {
                            format!("replica {node} recovered; state transfer begun")
                        });
                    }
                    self.begin_catchup(ctx);
                }
            }
            ControlMsg::BrownoutStart(mode) => {
                if self.brownout == Some(*mode) {
                    return;
                }
                self.brownout = Some(*mode);
                if let Some(obs) = &self.obs {
                    obs.event(now, Severity::Warn, || {
                        format!("replica {node} brownout start: {mode:?}")
                    });
                }
            }
            ControlMsg::BrownoutEnd => {
                if self.brownout.is_none() {
                    return;
                }
                self.brownout = None;
                if let Some(obs) = &self.obs {
                    obs.event(now, Severity::Info, || format!("replica {node} brownout end"));
                }
            }
        }
    }
}

impl<A: Send + 'static> Node<NetMsg<A>> for QuorumReplica {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg<A>>) {
        self.obs = ctx.obs().map(|sink| QuorumObs::new(sink, ctx.node_id()));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg<A>>, from: NodeId, msg: NetMsg<A>) {
        // Fault-injection control is handled even while crashed (the
        // recover signal must get through).
        if let NetMsg::Control(control) = &msg {
            self.on_control(ctx, control);
            return;
        }
        if self.crashed {
            return; // a crashed process answers nothing
        }
        match msg {
            NetMsg::Request { req_id, op } => {
                // Front-door brownouts mistreat client requests exactly
                // like the weak replicas: throttle storm rejects,
                // delayed service holds.
                match self.brownout {
                    Some(BrownoutMode::ThrottleStorm) if !matches!(op, ClientOp::Inspect) => {
                        self.stats.2 += 1;
                        if let Some(obs) = &self.obs {
                            obs.throttled.inc();
                        }
                        Self::respond(ctx, from, req_id, OpResult::Throttled);
                    }
                    Some(BrownoutMode::Delay(hold)) if !matches!(op, ClientOp::Inspect) => {
                        let token = self.fresh_token(TOKEN_KIND_DELAY);
                        self.delayed_requests.insert(token, (from, req_id, op));
                        ctx.set_timer(hold, token);
                    }
                    _ => self.handle_request(ctx, from, req_id, op),
                }
            }
            NetMsg::Repl(repl) => match repl {
                ReplMsg::SyncPush { token, posts } => {
                    // Applied even behind the fence: inbound committed
                    // writes only bring the replica closer to caught-up.
                    for stored in posts {
                        self.core.apply_replicated(stored);
                    }
                    ctx.send_ordered(from, NetMsg::Repl(ReplMsg::PushAck { token }));
                }
                ReplMsg::PushAck { token } => {
                    let done = {
                        let Some(w) = self.pending_writes.get_mut(&token) else { return };
                        w.acks_remaining = w.acks_remaining.saturating_sub(1);
                        w.acks_remaining == 0
                    };
                    if done {
                        let Some(w) = self.pending_writes.remove(&token) else {
                            // Replayed ack for a token already answered.
                            self.note_anomaly();
                            return;
                        };
                        Self::respond(ctx, w.client, w.req_id, OpResult::WriteAck(w.post_id));
                    }
                }
                ReplMsg::SnapshotReq { token } => {
                    // Read-fencing, peer side: a fenced replica's state
                    // must never count toward a read quorum.
                    if !self.is_fenced() {
                        let posts = self.core.snapshot_posts().to_vec();
                        ctx.send(from, NetMsg::Repl(ReplMsg::SnapshotResp { token, posts }));
                    }
                }
                ReplMsg::SnapshotResp { token, posts } => {
                    self.on_snapshot_resp(ctx, token, posts);
                }
                ReplMsg::CatchupReq { token } => {
                    // Only a caught-up replica streams state; a fenced
                    // one stays silent and the requester retries.
                    if !self.is_fenced() {
                        let frames = self
                            .core
                            .snapshot_posts()
                            .iter()
                            .map(|p| frame::encode_record(&stored_post_to_payload(p)))
                            .collect();
                        let watermark = self.watermark();
                        ctx.send_ordered(
                            from,
                            NetMsg::Repl(ReplMsg::CatchupResp { token, watermark, frames }),
                        );
                    }
                }
                ReplMsg::CatchupResp { token, watermark, frames } => {
                    self.on_catchup_resp(ctx, from, token, watermark, frames);
                }
                // Anti-entropy is the weak replicas' repair channel and
                // the ordered-log traffic belongs to the pbft arm; the
                // quorum family repairs via state transfer instead.
                ReplMsg::Push(_)
                | ReplMsg::DigestReq(_)
                | ReplMsg::DigestResp(_)
                | ReplMsg::Pbft(_) => {}
            },
            // Responses and harness traffic are not addressed to a
            // storage replica.
            NetMsg::Response { .. } | NetMsg::App(_) | NetMsg::Control(_) => {}
        }
        if let Some(obs) = &self.obs {
            obs.applied.set(self.core.len() as f64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg<A>>, token: u64) {
        if self.crashed {
            return;
        }
        if token == TOKEN_CATCHUP_RETRY {
            // Re-ask peers that have not streamed state yet; keep the
            // timer alive while the fence is up.
            let Some(catchup) = self.catchup.as_ref() else { return };
            let round = catchup.token;
            let unanswered: Vec<NodeId> =
                self.peers.iter().copied().filter(|p| !catchup.heard.contains(p)).collect();
            for peer in unanswered {
                ctx.send(peer, NetMsg::Repl(ReplMsg::CatchupReq { token: round }));
            }
            ctx.set_timer(CATCHUP_RETRY, TOKEN_CATCHUP_RETRY);
            return;
        }
        if token & TOKEN_KIND_MASK == TOKEN_KIND_DELAY {
            if let Some((client, req_id, op)) = self.delayed_requests.remove(&token) {
                self.handle_request(ctx, client, req_id, op);
            }
        }
        if let Some(obs) = &self.obs {
            obs.applied.set(self.core.len() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_sim::net::Region;
    use conprobe_sim::{LocalClock, World, WorldConfig};
    use conprobe_store::AuthorId;

    type Msg = NetMsg<()>;

    /// Scripted driver: sends a fixed schedule of messages (client ops,
    /// fault controls, forged replication traffic) and records responses.
    /// Requests carry their schedule index as `req_id`.
    struct Script {
        schedule: Vec<(SimDuration, NodeId, Msg)>,
        responses: Vec<(u64, OpResult)>,
    }

    impl Script {
        fn new(schedule: Vec<(SimDuration, NodeId, Msg)>) -> Self {
            Script { schedule, responses: Vec::new() }
        }
    }

    impl Node<Msg> for Script {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for (i, (at, _, _)) in self.schedule.iter().enumerate() {
                ctx.set_timer(*at, i as u64);
            }
        }

        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let NetMsg::Response { req_id, result } = msg {
                self.responses.push((req_id, result));
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
            let (_, target, msg) = self.schedule[token as usize].clone();
            ctx.send(target, msg);
        }
    }

    fn post(author: u32, seq: u32) -> Post {
        let id = PostId::new(AuthorId(author), seq);
        Post::new(id, format!("post {id}"), LocalTime::from_nanos(0))
    }

    fn req(index: usize, op: ClientOp) -> Msg {
        NetMsg::Request { req_id: index as u64, op }
    }

    fn build_cluster(world: &mut World<Msg>, n: usize) -> Vec<NodeId> {
        let regions = [Region::Oregon, Region::Tokyo, Region::Ireland];
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                world.add_node_with_clock(
                    regions[i % regions.len()],
                    LocalClock::perfect(),
                    Box::new(QuorumReplica::new()),
                )
            })
            .collect();
        for &id in &ids {
            let peers: Vec<NodeId> = ids.iter().copied().filter(|p| *p != id).collect();
            world.node_as_mut::<QuorumReplica>(id).unwrap().set_peers(peers);
        }
        ids
    }

    /// Steps the world until `until` (sim time) or the queue drains —
    /// bounded, because a permanently fenced replica re-arms its retry
    /// timer forever and `run_until_idle` would never return.
    fn run(world: &mut World<Msg>, until: SimDuration) {
        let deadline = SimTime::ZERO + until;
        while world.now() < deadline && world.step() {}
    }

    fn at(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn write_commits_through_majority_and_read_sees_it() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 11);
        let replicas = build_cluster(&mut world, 3);
        let client = world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                (at(800), replicas[1], req(1, ClientOp::Read)),
            ])),
        );
        run(&mut world, at(2_000));
        let script = world.node_as::<Script>(client).unwrap();
        assert_eq!(script.responses.len(), 2);
        assert_eq!(script.responses[0].1, OpResult::WriteAck(PostId::new(AuthorId(1), 1)));
        match &script.responses[1].1 {
            OpResult::ReadOk(ids) => assert_eq!(ids, &[PostId::new(AuthorId(1), 1)]),
            other => panic!("expected ReadOk, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_write_is_idempotent_and_reacked() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 12);
        let replicas = build_cluster(&mut world, 3);
        let client = world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                // A retransmit of the same write (same post id, new
                // req_id) must be re-acknowledged, not applied twice.
                (at(300), replicas[0], req(1, ClientOp::Write(post(1, 1)))),
                (at(900), replicas[2], req(2, ClientOp::Read)),
            ])),
        );
        run(&mut world, at(2_000));
        let script = world.node_as::<Script>(client).unwrap();
        assert_eq!(script.responses.len(), 3, "both write deliveries are acknowledged");
        assert_eq!(world.node_as::<QuorumReplica>(replicas[0]).unwrap().applied(), 1);
        match &script.responses[2].1 {
            OpResult::ReadOk(ids) => assert_eq!(ids, &[PostId::new(AuthorId(1), 1)]),
            other => panic!("expected ReadOk, got {other:?}"),
        }
    }

    #[test]
    fn crash_wipes_state_and_recovery_transfers_it_back() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 13);
        let replicas = build_cluster(&mut world, 3);
        let faulty = replicas[2];
        world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                (at(20), replicas[1], req(1, ClientOp::Write(post(2, 1)))),
                (at(900), faulty, NetMsg::Control(ControlMsg::Crash)),
                (at(1_500), faulty, NetMsg::Control(ControlMsg::Recover)),
            ])),
        );
        run(&mut world, at(1_200));
        // Crashed: state gone.
        assert!(world.node_as::<QuorumReplica>(faulty).unwrap().is_crashed());
        assert_eq!(world.node_as::<QuorumReplica>(faulty).unwrap().applied(), 0);

        // Recover: explicit catch-up stream restores both posts.
        run(&mut world, at(4_000));
        let rep = world.node_as::<QuorumReplica>(faulty).unwrap();
        assert!(!rep.is_crashed());
        assert!(!rep.is_fenced(), "catch-up must complete");
        assert_eq!(rep.applied(), 2, "state transfer restores the full set");
        assert_eq!(rep.state_transfers().len(), 1);
        let (frames, watermark, _) = rep.state_transfers()[0];
        assert_eq!(watermark, 2);
        assert!(frames >= 2, "both peers stream both posts");
    }

    #[test]
    fn state_transfer_stream_hash_is_deterministic() {
        let run_once = || {
            let mut world: World<Msg> = World::new(WorldConfig::default(), 21);
            let replicas = build_cluster(&mut world, 3);
            world.add_node(
                Region::Virginia,
                Box::new(Script::new(vec![
                    (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                    (at(20), replicas[1], req(1, ClientOp::Write(post(2, 1)))),
                    (at(900), replicas[2], NetMsg::Control(ControlMsg::Crash)),
                    (at(1_500), replicas[2], NetMsg::Control(ControlMsg::Recover)),
                ])),
            );
            run(&mut world, at(4_000));
            world.node_as::<QuorumReplica>(replicas[2]).unwrap().state_transfers().to_vec()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.len(), 1, "exactly one completed transfer");
        assert_eq!(a, b, "same seed, same catch-up stream bytes");
    }

    #[test]
    fn fenced_replica_queues_reads_until_caught_up() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 14);
        let replicas = build_cluster(&mut world, 3);
        let faulty = replicas[2];
        let client = world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], req(0, ClientOp::Write(post(1, 1)))),
                (at(20), replicas[0], req(1, ClientOp::Write(post(1, 2)))),
                (at(900), faulty, NetMsg::Control(ControlMsg::Crash)),
                (at(1_000), faulty, NetMsg::Control(ControlMsg::Recover)),
                // Sent right as `faulty` recovers (fenced — catch-up
                // needs at least one WAN round trip): the response must
                // carry the *complete* post set, never the empty
                // post-crash state. The unordered network can deliver a
                // copy before the recover signal (dropped by the crashed
                // process), so the client retransmits like the agent RPC
                // layer does; the fence queue collapses duplicates.
                (at(1_001), faulty, req(4, ClientOp::Read)),
                (at(1_051), faulty, req(4, ClientOp::Read)),
                (at(1_101), faulty, req(4, ClientOp::Read)),
            ])),
        );
        run(&mut world, at(5_000));
        let script = world.node_as::<Script>(client).unwrap();
        let reads: Vec<_> = script.responses.iter().filter(|(id, _)| *id == 4).collect();
        assert!(!reads.is_empty(), "the read must be answered");
        for read in reads {
            match &read.1 {
                OpResult::ReadOk(ids) => assert_eq!(
                    ids,
                    &[PostId::new(AuthorId(1), 1), PostId::new(AuthorId(1), 2)],
                    "a fenced read must wait for full catch-up"
                ),
                other => panic!("expected ReadOk, got {other:?}"),
            }
        }
        assert_eq!(world.node_as::<QuorumReplica>(faulty).unwrap().state_transfers().len(), 1);
    }

    #[test]
    fn fenced_replica_does_not_serve_peer_read_quorums() {
        let mut world: World<Msg> = World::new(WorldConfig::default(), 15);
        let replicas = build_cluster(&mut world, 3);
        // Crash replica 2, recover it with both peers also crashed —
        // the fence can never lift, and a SnapshotReq against the
        // fenced replica must go unanswered.
        world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[2], NetMsg::Control(ControlMsg::Crash)),
                (at(20), replicas[0], NetMsg::Control(ControlMsg::Crash)),
                (at(30), replicas[1], NetMsg::Control(ControlMsg::Crash)),
                (at(40), replicas[2], NetMsg::Control(ControlMsg::Recover)),
                (at(1_000), replicas[2], NetMsg::Repl(ReplMsg::SnapshotReq { token: 9 })),
            ])),
        );
        run(&mut world, at(3_000));
        let rep = world.node_as::<QuorumReplica>(replicas[2]).unwrap();
        assert!(rep.is_fenced(), "no live peer can stream state; the fence stays up");
    }

    #[test]
    fn corrupt_catchup_frame_is_refused() {
        let good = frame::encode_record(&stored_post_to_payload(&StoredPost {
            post: post(1, 1),
            server_ts: SimTime::from_nanos(5),
            arrival_index: 0,
        }));
        let corrupt = good.replace("post", "pXst"); // checksum now wrong
        let mut world: World<Msg> = World::new(WorldConfig::default(), 16);
        let replicas = build_cluster(&mut world, 3);
        // Crash every replica, recover replica 2 with no live peer, then
        // forge a corrupt catch-up response. The round token is
        // deterministic: the replica issued no tokens before recovery,
        // so `begin_catchup` draws token 1.
        world.add_node(
            Region::Virginia,
            Box::new(Script::new(vec![
                (at(10), replicas[0], NetMsg::Control(ControlMsg::Crash)),
                (at(10), replicas[1], NetMsg::Control(ControlMsg::Crash)),
                (at(10), replicas[2], NetMsg::Control(ControlMsg::Crash)),
                (at(20), replicas[2], NetMsg::Control(ControlMsg::Recover)),
                (
                    at(200),
                    replicas[2],
                    NetMsg::Repl(ReplMsg::CatchupResp {
                        token: 1,
                        watermark: 1,
                        frames: vec![corrupt],
                    }),
                ),
            ])),
        );
        run(&mut world, at(2_000));
        let rep = world.node_as::<QuorumReplica>(replicas[2]).unwrap();
        assert_eq!(rep.applied(), 0, "a corrupt stream must not be applied");
        assert!(rep.is_fenced(), "a refused stream does not count toward the catch-up quorum");
    }

    #[test]
    fn stored_post_payload_round_trips() {
        let original = StoredPost {
            post: Post::new(
                PostId::new(AuthorId(7), 3),
                "body with spaces and \"quotes\"",
                LocalTime::from_nanos(-42),
            ),
            server_ts: SimTime::from_nanos(123_456_789),
            arrival_index: 9,
        };
        let payload = stored_post_to_payload(&original);
        let decoded = stored_post_from_payload(&payload).unwrap();
        assert_eq!(decoded, original);
        // And the framed record decodes through the journal's codec.
        let line = frame::encode_record(&payload);
        assert_eq!(frame::decode_record(&line).unwrap(), payload);
    }
}
