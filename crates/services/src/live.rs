//! Wall-clock driver around the deterministic replica cores.
//!
//! The simulator advances [`ReplicaCore`]s with virtual time; the wire
//! subsystem (`conprobe-wire`) needs the *same* storage semantics on real
//! time, serving concurrent TCP clients. [`LiveCluster`] is that bridge:
//! a thread-safe, I/O-free replica group whose notion of "now" is
//! whatever nanosecond count the caller passes in. The TCP server feeds
//! it wall-clock nanoseconds (and runs a ticker thread for anti-entropy);
//! unit tests feed it hand-picked instants and get fully deterministic
//! behaviour — the same trick the sim plays, inverted.
//!
//! Fidelity note: the live driver reuses the catalog's per-replica
//! [`OrderingPolicy`](conprobe_store::OrderingPolicy), replication-delay
//! distribution, anti-entropy period, and canonicalization flags, but
//! serves every read from the policy-ordered snapshot (the sim's
//! front-end caches, secondary indexes and ranking pipelines stay
//! sim-only). For live experiments that must *exhibit* staleness on
//! demand, [`LiveConfig::stale_window`] pins one replica behind a
//! bounded-lag read cache — a deliberately seeded anomaly window the
//! probe pipeline is expected to detect.

use crate::catalog::{topology, ServiceKind};
use crate::replica_node::{DelayDist, WriteMode};
use conprobe_sim::net::Region;
use conprobe_sim::{SimRng, SimTime};
use conprobe_store::{AffinityMap, Post, PostId, ReplicaCore, StoredPost};
use std::sync::Mutex;

/// A deliberately seeded staleness window: the chosen replica serves
/// reads from a snapshot refreshed at most once per `lag_nanos`, so a
/// quick read-after-write against it misses the write — a bounded,
/// reproducible read-your-writes/monotonic-reads anomaly source.
#[derive(Debug, Clone, Copy)]
pub struct StaleWindow {
    /// Index of the replica to pin (into the catalog topology's order).
    pub replica: usize,
    /// Maximum snapshot age before a read refreshes it.
    pub lag_nanos: u64,
}

/// Configuration for a live (wall-clock) service deployment.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Which catalog service to host.
    pub kind: ServiceKind,
    /// Seed for the replication-delay sampling stream.
    pub seed: u64,
    /// Optional seeded staleness window (see [`StaleWindow`]).
    pub stale_window: Option<StaleWindow>,
}

/// One replication push in flight between replicas, due at `deliver_at`
/// nanoseconds on the caller's clock.
struct PendingRepl {
    deliver_at: u64,
    target: usize,
    posts: Vec<StoredPost>,
}

struct LiveReplica {
    core: ReplicaCore,
    repl_delay: DelayDist,
    anti_entropy_nanos: Option<u64>,
    canonicalize_on_anti_entropy: bool,
    next_anti_entropy: u64,
    /// `(snapshot, taken_at)` for a stale-pinned replica.
    stale_cache: Option<(Vec<PostId>, u64)>,
}

/// A thread-safe wall-clock replica group hosting one catalog service.
///
/// All methods take `now_nanos` — nanoseconds on the caller's clock
/// (monotonic since server start, or fabricated in tests). Methods are
/// safe to call from many threads; internal locks are held only for the
/// duration of one storage operation.
pub struct LiveCluster {
    kind: ServiceKind,
    regions: Vec<Region>,
    affinity: AffinityMap,
    replicas: Vec<Mutex<LiveReplica>>,
    /// Replication pushes waiting out their sampled WAN delay.
    in_flight: Mutex<Vec<PendingRepl>>,
    rng: Mutex<SimRng>,
    stale: Option<StaleWindow>,
    /// Majority-synchronous writes (the quorum control arm): a write is
    /// applied at every replica before it is acknowledged, so the live
    /// group is linearizable — no replication queue, no anomaly windows.
    sync_writes: bool,
}

impl LiveCluster {
    /// Deploys `config.kind`'s catalog topology onto wall-clock time.
    pub fn new(config: &LiveConfig) -> Self {
        let topo = topology(config.kind);
        let replicas = topo
            .replicas
            .iter()
            .enumerate()
            .map(|(i, (_, params))| {
                let pinned = config.stale_window.is_some_and(|w| w.replica == i);
                Mutex::new(LiveReplica {
                    core: ReplicaCore::new(params.ordering),
                    repl_delay: params.repl_delay.clone(),
                    anti_entropy_nanos: params.anti_entropy.map(|d| d.as_nanos()),
                    canonicalize_on_anti_entropy: params.canonicalize_on_anti_entropy,
                    next_anti_entropy: params.anti_entropy.map(|d| d.as_nanos()).unwrap_or(0),
                    stale_cache: pinned.then(|| (Vec::new(), 0)),
                })
            })
            .collect();
        let sync_writes =
            topo.replicas.iter().all(|(_, p)| p.write_mode == WriteMode::SyncMajority);
        LiveCluster {
            kind: config.kind,
            regions: topo.replicas.iter().map(|(r, _)| *r).collect(),
            affinity: topo.affinity,
            replicas,
            in_flight: Mutex::new(Vec::new()),
            rng: Mutex::new(SimRng::new(config.seed).split("live.repl")),
            stale: config.stale_window,
            sync_writes,
        }
    }

    /// Which service this cluster hosts.
    pub fn kind(&self) -> ServiceKind {
        self.kind
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The region hosting replica `idx`.
    pub fn replica_region(&self, idx: usize) -> Region {
        self.regions[idx]
    }

    /// The replica index a client in `region` is routed to — the same
    /// affinity the sim's front doors use.
    pub fn replica_for(&self, region: Region) -> usize {
        self.affinity.replica_for(region)
    }

    /// Accepts a write at `region`'s replica. Local-ack services (all
    /// four measured ones) schedule asynchronous replication pushes to
    /// every peer with per-peer sampled delays; the majority-synchronous
    /// quorum service instead applies the write at every replica before
    /// returning, so the acknowledgement implies global visibility.
    pub fn write(&self, region: Region, post: Post, now_nanos: u64) -> PostId {
        self.tick(now_nanos);
        let origin = self.replica_for(region);
        let id = post.id;
        let stored = {
            let mut rep = self.replicas[origin].lock().unwrap();
            rep.core.apply_new(post, SimTime::from_nanos(now_nanos)).cloned()
        };
        if self.sync_writes {
            if let Some(stored) = stored {
                // Lock in index order (the anti-entropy discipline) so a
                // concurrent writer at another front door cannot deadlock.
                for target in 0..self.replicas.len() {
                    if target != origin {
                        let mut rep = self.replicas[target].lock().unwrap();
                        rep.core.apply_replicated(stored.clone());
                    }
                }
            }
            return id;
        }
        if let Some(stored) = stored {
            let repl_delay = self.replicas[origin].lock().unwrap().repl_delay.clone();
            let mut rng = self.rng.lock().unwrap();
            let mut pushes = Vec::new();
            for target in 0..self.replicas.len() {
                if target != origin {
                    let delay = repl_delay.sample(&mut rng).as_nanos();
                    pushes.push(PendingRepl {
                        deliver_at: now_nanos.saturating_add(delay),
                        target,
                        posts: vec![stored.clone()],
                    });
                }
            }
            self.in_flight.lock().unwrap().extend(pushes);
        }
        id
    }

    /// Serves a read at `region`'s replica from the policy-ordered
    /// snapshot — or, for a stale-pinned replica, from its bounded-age
    /// cached snapshot.
    pub fn read(&self, region: Region, now_nanos: u64) -> Vec<PostId> {
        self.tick(now_nanos);
        let idx = self.replica_for(region);
        let mut guard = self.replicas[idx].lock().unwrap();
        let rep = &mut *guard;
        match (&mut rep.stale_cache, self.stale) {
            (Some((cache, taken_at)), Some(w)) => {
                if now_nanos.saturating_sub(*taken_at) >= w.lag_nanos {
                    *cache = rep.core.snapshot().to_vec();
                    *taken_at = now_nanos;
                }
                cache.clone()
            }
            _ => rep.core.snapshot().to_vec(),
        }
    }

    /// Delivers due replication pushes and runs due anti-entropy rounds.
    /// Idempotent; safe to call from a ticker thread *and* inline from
    /// reads/writes (each operation calls it so single-threaded tests
    /// never need a ticker).
    pub fn tick(&self, now_nanos: u64) {
        // Deliver replication pushes whose sampled delay has elapsed.
        let due: Vec<PendingRepl> = {
            let mut inflight = self.in_flight.lock().unwrap();
            let mut due = Vec::new();
            let mut i = 0;
            while i < inflight.len() {
                if inflight[i].deliver_at <= now_nanos {
                    due.push(inflight.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for push in due {
            let mut rep = self.replicas[push.target].lock().unwrap();
            for post in push.posts {
                rep.core.apply_replicated(post);
            }
        }
        // Anti-entropy: pairwise digest exchange, exactly the sim's
        // protocol but executed synchronously at the due instant.
        for idx in 0..self.replicas.len() {
            let due = {
                let rep = self.replicas[idx].lock().unwrap();
                match rep.anti_entropy_nanos {
                    Some(_) => rep.next_anti_entropy <= now_nanos,
                    None => false,
                }
            };
            if due {
                self.anti_entropy_round(idx, now_nanos);
            }
        }
    }

    /// One anti-entropy round initiated by replica `idx`: exchange
    /// digests with every peer, pull what's missing locally and push
    /// what the peer lacks.
    fn anti_entropy_round(&self, idx: usize, now_nanos: u64) {
        for peer in 0..self.replicas.len() {
            if peer == idx {
                continue;
            }
            // Lock in index order to rule out deadlock between
            // concurrent rounds.
            let (lo, hi) = if idx < peer { (idx, peer) } else { (peer, idx) };
            let mut first = self.replicas[lo].lock().unwrap();
            let mut second = self.replicas[hi].lock().unwrap();
            let (me, other) =
                if lo == idx { (&mut *first, &mut *second) } else { (&mut *second, &mut *first) };
            let my_digest = me.core.digest();
            let peer_digest = other.core.digest();
            for post in other.core.missing_from(&my_digest) {
                me.core.apply_replicated(post);
            }
            for post in me.core.missing_from(&peer_digest) {
                other.core.apply_replicated(post);
            }
        }
        let mut rep = self.replicas[idx].lock().unwrap();
        if rep.canonicalize_on_anti_entropy {
            rep.core.resequence_canonical();
        }
        if let Some(period) = rep.anti_entropy_nanos {
            // Schedule from "now" so missed rounds (sparse traffic, no
            // ticker) don't replay in a burst.
            rep.next_anti_entropy = now_nanos.saturating_add(period);
        }
    }

    /// Total posts held by replica `idx` (diagnostics).
    pub fn replica_len(&self, idx: usize) -> usize {
        self.replicas[idx].lock().unwrap().core.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conprobe_sim::LocalTime;
    use conprobe_store::AuthorId;

    fn post(author: u32, seq: u32) -> Post {
        let id = PostId::new(AuthorId(author), seq);
        Post::new(id, format!("post {id}"), LocalTime::from_nanos(0))
    }

    const MS: u64 = 1_000_000;
    const SEC: u64 = 1_000_000_000;

    fn cluster(kind: ServiceKind, stale: Option<StaleWindow>) -> LiveCluster {
        LiveCluster::new(&LiveConfig { kind, seed: 7, stale_window: stale })
    }

    #[test]
    fn blogger_is_read_your_writes_clean() {
        let c = cluster(ServiceKind::Blogger, None);
        for (i, region) in Region::AGENTS.iter().enumerate() {
            let id = c.write(*region, post(i as u32, 1), (i as u64 + 1) * MS);
            let seen = c.read(*region, (i as u64 + 1) * MS + 1);
            assert!(seen.contains(&id), "write must be immediately visible on one replica");
        }
    }

    #[test]
    fn replication_is_delayed_then_delivered() {
        // FB Feed has one replica per agent region (Tokyo is replica 1),
        // with a ≥ 60 ms replication delay floor.
        let c = cluster(ServiceKind::FacebookFeed, None);
        assert_eq!(c.replica_count(), 3);
        let id = c.write(Region::Oregon, post(0, 1), MS);
        let tokyo_now = c.read(Region::Tokyo, 2 * MS);
        assert!(!tokyo_now.contains(&id), "replication should not be instantaneous");
        // Far in the future every sampled delay has elapsed.
        let tokyo_later = c.read(Region::Tokyo, 60 * SEC);
        assert!(tokyo_later.contains(&id), "replication push must eventually deliver");
    }

    #[test]
    fn anti_entropy_reconciles_even_without_pushes() {
        let c = cluster(ServiceKind::GooglePlus, None);
        let id = c.write(Region::Oregon, post(1, 1), MS);
        // Google+ anti-entropy period is 6 s; by 20 s both the delayed
        // push and at least one anti-entropy round have run.
        let ireland = c.read(Region::Ireland, 20 * SEC);
        assert!(ireland.contains(&id));
    }

    #[test]
    fn stale_window_hides_a_fresh_write_then_reveals_it() {
        let c =
            cluster(ServiceKind::Blogger, Some(StaleWindow { replica: 0, lag_nanos: 500 * MS }));
        // Prime the cache at t=1ms (empty snapshot).
        assert!(c.read(Region::Oregon, MS).is_empty());
        let id = c.write(Region::Oregon, post(0, 1), 2 * MS);
        // Within the lag window the cached (empty) snapshot is served:
        // a read-your-writes violation by construction.
        assert!(!c.read(Region::Oregon, 3 * MS).contains(&id));
        // Once the window passes, the refreshed snapshot shows the write.
        assert!(c.read(Region::Oregon, 600 * MS).contains(&id));
    }

    #[test]
    fn quorum_writes_are_synchronously_visible_everywhere() {
        let c = cluster(ServiceKind::Quorum, None);
        assert_eq!(c.replica_count(), 3);
        let id = c.write(Region::Oregon, post(0, 1), MS);
        // No replication window: the ack implies global visibility, so a
        // cross-region read-after-write can never miss (the control-arm
        // property the four measured services lack — compare
        // `replication_is_delayed_then_delivered`).
        assert!(c.read(Region::Tokyo, MS + 1).contains(&id));
        assert!(c.read(Region::Ireland, MS + 2).contains(&id));
    }

    #[test]
    fn same_seed_same_replication_schedule() {
        let run = |seed| {
            let c = LiveCluster::new(&LiveConfig {
                kind: ServiceKind::FacebookFeed,
                seed,
                stale_window: None,
            });
            c.write(Region::Oregon, post(0, 1), MS);
            // Probe Tokyo visibility on a 1 ms grid; the delivery instant
            // is a pure function of the seed.
            (0..1_000).map(|i| c.read(Region::Tokyo, MS * i).len()).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should move the delivery instant");
    }
}
